//! Runtime threshold adaptation via sampled audits.
//!
//! The calibrated distance threshold is only as good as the warm-up data
//! it came from; deployments drift (new environments, different lighting,
//! new object classes). This controller keeps the threshold honest at
//! run time with a classic audit loop: a small random fraction of cache
//! hits are *audited* — the DNN runs anyway and its label is compared
//! against the cache's. A disagreement is evidence the threshold accepts
//! keys it should not, so it is tightened multiplicatively; an agreement
//! nudges it wider (additive-ish widen, multiplicative tighten — the
//! asymmetry that makes the loop stable). Audited frames pay full
//! inference cost, so the audit probability is the overhead knob.

use serde::{Deserialize, Serialize};

/// Parameters of the audit loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Probability that a local cache hit is audited with a full
    /// inference.
    pub audit_prob: f64,
    /// Multiplier applied on a disagreeing audit (`< 1`).
    pub tighten: f64,
    /// Multiplier applied on an agreeing audit (`> 1`, close to 1).
    pub widen: f64,
    /// Lower bound the threshold never crosses.
    pub min_threshold: f64,
    /// Upper bound the threshold never crosses.
    pub max_threshold: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            audit_prob: 0.05,
            tighten: 0.80,
            widen: 1.01,
            min_threshold: 0.05,
            max_threshold: 1e3,
        }
    }
}

impl AdaptiveConfig {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics unless `audit_prob ∈ [0, 1]`, `0 < tighten < 1 <= widen`,
    /// and `0 < min_threshold <= max_threshold`.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.audit_prob),
            "AdaptiveConfig: audit_prob must be in [0, 1]"
        );
        assert!(
            self.tighten > 0.0 && self.tighten < 1.0,
            "AdaptiveConfig: tighten must be in (0, 1)"
        );
        assert!(self.widen >= 1.0, "AdaptiveConfig: widen must be >= 1");
        assert!(
            self.min_threshold > 0.0 && self.min_threshold <= self.max_threshold,
            "AdaptiveConfig: need 0 < min_threshold <= max_threshold"
        );
    }
}

/// The controller state: counts audits and applies the update rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveController {
    config: AdaptiveConfig,
    /// Total audits performed.
    pub audits: u64,
    /// Audits where the cache's label disagreed with the DNN's.
    pub false_hits: u64,
}

impl AdaptiveController {
    /// A controller with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: AdaptiveConfig) -> AdaptiveController {
        config.validate();
        AdaptiveController {
            config,
            audits: 0,
            false_hits: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> AdaptiveConfig {
        self.config
    }

    /// Records an audit outcome and returns the new threshold given the
    /// `current` one.
    pub fn on_audit(&mut self, cache_agreed_with_dnn: bool, current: f64) -> f64 {
        self.audits += 1;
        let updated = if cache_agreed_with_dnn {
            current * self.config.widen
        } else {
            self.false_hits += 1;
            current * self.config.tighten
        };
        updated.clamp(self.config.min_threshold, self.config.max_threshold)
    }

    /// Observed false-hit fraction over all audits (0.0 before the first
    /// audit).
    pub fn false_hit_rate(&self) -> f64 {
        if self.audits == 0 {
            0.0
        } else {
            self.false_hits as f64 / self.audits as f64
        }
    }

    /// Mines free evidence from a cache *miss* that fell through to
    /// inference: if the nearest cached entry sat just beyond the
    /// threshold (within `2×`) and carried the label the DNN produced,
    /// the miss was spurious and the threshold widens. (A disagreeing
    /// near neighbour is no evidence either way — different objects are
    /// legitimately close to the boundary.)
    ///
    /// Returns the possibly-updated threshold.
    pub fn on_near_miss(&mut self, nearest_distance: f64, labels_agree: bool, current: f64) -> f64 {
        if labels_agree && nearest_distance > current && nearest_distance <= current * 2.0 {
            (current * self.config.widen)
                .clamp(self.config.min_threshold, self.config.max_threshold)
        } else {
            current
        }
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn disagreement_tightens_agreement_widens() {
        let mut c = AdaptiveController::new(AdaptiveConfig::default());
        let tightened = c.on_audit(false, 10.0);
        assert!((tightened - 8.0).abs() < 1e-12);
        let widened = c.on_audit(true, 10.0);
        assert!((widened - 10.1).abs() < 1e-12);
        assert_eq!(c.audits, 2);
        assert_eq!(c.false_hits, 1);
        assert!((c.false_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bounds_are_enforced() {
        let config = AdaptiveConfig {
            min_threshold: 5.0,
            max_threshold: 20.0,
            ..AdaptiveConfig::default()
        };
        let mut c = AdaptiveController::new(config);
        assert_eq!(c.on_audit(false, 5.5), 5.0);
        assert_eq!(c.on_audit(true, 19.9), 20.0);
    }

    #[test]
    fn loop_converges_under_persistent_false_hits() {
        // If every audit disagrees, the threshold decays geometrically to
        // the floor — the loop cannot oscillate upward.
        let mut c = AdaptiveController::new(AdaptiveConfig::default());
        let mut threshold = 100.0;
        for _ in 0..100 {
            threshold = c.on_audit(false, threshold);
        }
        assert_eq!(threshold, AdaptiveConfig::default().min_threshold);
    }

    #[test]
    fn equilibrium_balances_tighten_and_widen() {
        // With tighten 0.8 and widen 1.01, the threshold is stationary
        // when p_false · ln(0.8) + (1-p_false) · ln(1.01) = 0, i.e.
        // p_false ≈ 4.3%. Simulate a threshold-dependent false-hit
        // process and check it settles near that rate.
        let mut c = AdaptiveController::new(AdaptiveConfig::default());
        let mut threshold = 50.0f64;
        let mut rng = simcore::SimRng::seed(5);
        for _ in 0..20_000 {
            // Model: false-hit probability grows with threshold.
            let p_false = (threshold / 100.0).clamp(0.0, 1.0);
            let agreed = !rng.chance(p_false);
            threshold = c.on_audit(agreed, threshold);
        }
        let expected_p = (1.01f64.ln()) / (1.01f64.ln() - 0.8f64.ln());
        let settled_p = threshold / 100.0;
        assert!(
            (settled_p - expected_p).abs() < 0.03,
            "settled at p_false {settled_p}, expected ≈ {expected_p}"
        );
    }

    #[test]
    fn near_miss_widens_only_on_agreeing_boundary_neighbour() {
        let mut c = AdaptiveController::new(AdaptiveConfig::default());
        // Agreeing entry just beyond the threshold: widen.
        let widened = c.on_near_miss(12.0, true, 10.0);
        assert!((widened - 10.1).abs() < 1e-12);
        // Agreeing but far beyond 2×: no evidence (different sighting).
        assert_eq!(c.on_near_miss(25.0, true, 10.0), 10.0);
        // Disagreeing neighbour: no change.
        assert_eq!(c.on_near_miss(12.0, false, 10.0), 10.0);
        // Within the threshold (was a hit context): no change.
        assert_eq!(c.on_near_miss(5.0, true, 10.0), 10.0);
        // Near-miss evidence does not count as an audit.
        assert_eq!(c.audits, 0);
    }

    #[test]
    #[should_panic(expected = "tighten must be in (0, 1)")]
    fn validates_tighten() {
        AdaptiveController::new(AdaptiveConfig {
            tighten: 1.5,
            ..AdaptiveConfig::default()
        });
    }

    #[test]
    fn zero_audit_rate_is_valid() {
        let c = AdaptiveController::new(AdaptiveConfig {
            audit_prob: 0.0,
            ..AdaptiveConfig::default()
        });
        assert_eq!(c.false_hit_rate(), 0.0);
    }
}
