//! The multi-device collaborative simulation driver.
//!
//! A scenario fixes the world, the devices' motion and the stream
//! parameters; [`run`] plays it out frame by frame:
//!
//! 1. every device renders its frame from its own pose (all devices share
//!    one [`World`], so nearby devices see the same objects);
//! 2. each device runs the pipeline, querying in-range neighbours'
//!    caches (nearest first) on local misses;
//! 3. advertisement pushes are delivered with sampled link delay;
//! 4. optional churn replaces world objects at fixed intervals;
//! 5. optional deterministic fault injection (radio outages, partitions,
//!    degraded links, crashes, advertisement poisoning — see
//!    [`p2pnet::faults`]) gates every radio interaction above.

use serde::{Deserialize, Serialize};

use imu::{ImuSample, ImuSynthesizer, MotionProfile, MotionTrace};
use p2pnet::{
    FaultConfig, FaultSchedule, P2pMessage, ProximityModel, ResilienceCounters, WireEntry,
};
use scene::{ClassUniverse, FrameRenderer, SceneConfig, World};
use simcore::{EventQueue, SimDuration, SimRng, SimTime};

use crate::baseline::SystemVariant;
use crate::config::{device_traces, PipelineConfig};
use crate::device::{Device, DeviceBuilder, DeviceId, FrameOutcome};
use crate::error::ConfigError;
use crate::report::RunReport;

/// Periodic world churn: every `interval`, replace `fraction` of objects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Time between churn events.
    pub interval: SimDuration,
    /// Fraction of objects replaced per event, `[0, 1]`.
    pub fraction: f64,
}

/// A complete experiment scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Name used in reports.
    pub name: String,
    /// Device motion regime (all devices share the profile; their traces
    /// are independent).
    pub profile: MotionProfile,
    /// Number of collaborating devices.
    pub devices: usize,
    /// Simulated stream length.
    pub duration: SimDuration,
    /// Camera frame rate, frames per second.
    pub fps: f64,
    /// IMU sample rate, Hz.
    pub imu_rate_hz: f64,
    /// The synthetic world.
    pub scene: SceneConfig,
    /// Optional object churn.
    pub churn: Option<ChurnSpec>,
    /// Metres between device spawn points.
    pub spawn_spacing: f64,
    /// Per-device phone classes for heterogeneous fleets. `None` gives
    /// every device the pipeline config's class; a non-empty vector is
    /// cycled over devices (`device i` gets `classes[i % len]`).
    pub device_classes: Option<Vec<dnnsim::DeviceClass>>,
    /// Deterministic fault injection (radio outages, partitions, degraded
    /// links, crashes, advertisement poisoning). The default injects
    /// nothing, and an idle config is provably zero-impact: it is skipped
    /// from serialized scenarios and consumes no randomness.
    #[serde(default, skip_serializing_if = "FaultConfig::is_idle")]
    pub faults: FaultConfig,
}

impl Scenario {
    /// A one-device scenario with default world and stream parameters
    /// (30 s at 10 fps, 100 Hz IMU).
    pub fn single_device(profile: MotionProfile) -> Scenario {
        Scenario {
            name: profile.name().to_owned(),
            profile,
            devices: 1,
            duration: SimDuration::from_secs(30),
            fps: 10.0,
            imu_rate_hz: 100.0,
            scene: SceneConfig::default(),
            churn: None,
            spawn_spacing: 4.0,
            device_classes: None,
            faults: FaultConfig::default(),
        }
    }

    /// A multi-device scenario in one shared world.
    pub fn multi_device(profile: MotionProfile, devices: usize) -> Scenario {
        Scenario {
            name: format!("{}-x{}", profile.name(), devices),
            devices,
            ..Scenario::single_device(profile)
        }
    }

    /// Overrides the name.
    pub fn with_name(mut self, name: &str) -> Scenario {
        self.name = name.to_owned();
        self
    }

    /// Overrides the duration.
    pub fn with_duration(mut self, duration: SimDuration) -> Scenario {
        self.duration = duration;
        self
    }

    /// Overrides the frame rate.
    pub fn with_fps(mut self, fps: f64) -> Scenario {
        self.fps = fps;
        self
    }

    /// Adds churn.
    pub fn with_churn(mut self, churn: ChurnSpec) -> Scenario {
        self.churn = Some(churn);
        self
    }

    /// Overrides the scene.
    pub fn with_scene(mut self, scene: SceneConfig) -> Scenario {
        self.scene = scene;
        self
    }

    /// Makes the fleet heterogeneous: device `i` runs on
    /// `classes[i % classes.len()]`.
    pub fn with_device_classes(mut self, classes: Vec<dnnsim::DeviceClass>) -> Scenario {
        self.device_classes = Some(classes);
        self
    }

    /// Adds fault injection.
    pub fn with_faults(mut self, faults: FaultConfig) -> Scenario {
        self.faults = faults;
        self
    }

    /// Validates the scenario's ranges: zero devices, non-positive rates,
    /// invalid churn and invalid fault configs are all rejected with a
    /// typed error naming the field.
    ///
    /// # Panics
    ///
    /// Panics on an invalid *scene* config ([`SceneConfig::validate`] is
    /// owned by the `scene` crate and still asserts).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.devices == 0 {
            return Err(ConfigError::NotPositive {
                context: "Scenario",
                field: "devices",
            });
        }
        if self.fps <= 0.0 || self.fps.is_nan() {
            return Err(ConfigError::NotPositive {
                context: "Scenario",
                field: "fps",
            });
        }
        if self.imu_rate_hz <= 0.0 || self.imu_rate_hz.is_nan() {
            return Err(ConfigError::NotPositive {
                context: "Scenario",
                field: "imu_rate_hz",
            });
        }
        if self.duration.is_zero() {
            return Err(ConfigError::NotPositive {
                context: "Scenario",
                field: "duration",
            });
        }
        if let Some(churn) = &self.churn {
            if !(0.0..=1.0).contains(&churn.fraction) {
                return Err(ConfigError::OutOfRange {
                    context: "Scenario",
                    field: "churn fraction",
                    min: 0.0,
                    max: 1.0,
                });
            }
            if churn.interval.is_zero() {
                return Err(ConfigError::NotPositive {
                    context: "Scenario",
                    field: "churn interval",
                });
            }
        }
        if let Some(classes) = &self.device_classes {
            if classes.is_empty() {
                return Err(ConfigError::Inconsistent {
                    context: "Scenario",
                    message: "device_classes must be non-empty",
                });
            }
        }
        self.faults.validate()?;
        self.scene.validate();
        Ok(())
    }
}

/// The detailed result of a run: the aggregate report plus per-device
/// outcome logs (for per-device analyses).
#[derive(Debug)]
pub struct SimResult {
    /// Aggregate over all devices.
    pub report: RunReport,
    /// Each device's per-frame log.
    pub per_device: Vec<Vec<FrameOutcome>>,
    /// Each device's decision trace (empty unless the pipeline config
    /// sets a `trace_capacity`).
    pub traces: Vec<Vec<simcore::FrameTrace>>,
}

/// How much per-frame detail [`run`] retains.
///
/// `Summary` drops the per-device outcome and trace logs (the aggregate
/// [`RunReport`] is always produced); `Full` keeps both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detail {
    /// Aggregate report only; `per_device` and `traces` come back empty.
    Summary,
    /// Keep every device's outcome log and decision trace.
    Full,
}

/// Plays `scenario` out frame by frame under `variant` and returns the
/// result, rejecting invalid scenario or network configuration up front
/// instead of panicking mid-run.
///
/// `detail` picks how much per-frame data survives: [`Detail::Summary`]
/// keeps only the aggregate report, [`Detail::Full`] also the per-device
/// outcome logs and decision traces.
pub fn run(
    scenario: &Scenario,
    config: &PipelineConfig,
    variant: SystemVariant,
    seed: u64,
    detail: Detail,
) -> Result<SimResult, ConfigError> {
    scenario.validate()?;
    if let Some(peer) = &config.peer {
        peer.link.validate()?;
        if let Some(discovery) = &peer.discovery {
            discovery.validate()?;
        }
        if let Some(resilience) = &peer.resilience {
            resilience.validate()?;
        }
    }
    // One edge cache is shared by the whole fleet; its hit test reuses
    // the pipeline's (possibly calibrated) distance threshold so edge
    // and local answers agree about what counts as "the same scene".
    let edge_cache = match &config.edge {
        None => None,
        Some(edge_config) => {
            edge_config.link.validate()?;
            if !edge_config.query_budget_fraction.is_finite()
                || edge_config.query_budget_fraction < 0.0
            {
                return Err(ConfigError::Inconsistent {
                    context: "EdgeConfig",
                    message: "query_budget_fraction must be finite and non-negative",
                });
            }
            let cache_config = edge::EdgeCacheConfig {
                capacity: edge_config.capacity,
                distance_threshold: config.cache.aknn.distance_threshold,
                queue_limit: edge_config.queue_limit,
            };
            match edge::EdgeCache::new(cache_config) {
                Ok(cache) => Some(cache),
                Err(message) => {
                    return Err(ConfigError::Inconsistent {
                        context: "EdgeConfig",
                        message,
                    })
                }
            }
        }
    };
    let root = SimRng::seed(seed);
    // Fault timeline: materialized only when the scenario injects
    // anything; splits are non-consuming, so an idle scenario draws the
    // exact same random stream as before this layer existed.
    let faults_rng = root.split("faults");
    let schedule = if scenario.faults.is_idle() {
        FaultSchedule::idle()
    } else {
        FaultSchedule::generate(
            &scenario.faults,
            scenario.devices,
            scenario.duration,
            &faults_rng,
        )
    };
    let mut poison_rng = faults_rng.split("poison");
    let mut fault_totals = ResilienceCounters::default();
    let mut world_rng = root.split("world");
    let universe = ClassUniverse::generate(&scenario.scene, &mut world_rng);
    let mut world = World::generate(&universe, &scenario.scene, &mut world_rng);
    let renderer = FrameRenderer::new(&scenario.scene);

    // Motion: ground truth + per-device noisy IMU streams.
    let traces: Vec<MotionTrace> = device_traces(
        scenario.profile,
        scenario.devices,
        scenario.duration,
        scenario.imu_rate_hz,
        scenario.spawn_spacing,
        &root,
    );
    let synthesizer = ImuSynthesizer::default();
    let imu_streams: Vec<Vec<ImuSample>> = traces
        .iter()
        .enumerate()
        .map(|(d, trace)| {
            let mut imu_rng = root.split_index("imu", d as u64);
            synthesizer.synthesize(trace, &mut imu_rng)
        })
        .collect();

    let mut devices: Vec<Device> = (0..scenario.devices)
        .map(|d| {
            let mut builder = DeviceBuilder::new(
                DeviceId(d),
                config,
                &universe,
                scenario.scene.descriptor_dim,
                seed,
            )
            .variant(variant);
            if let Some(classes) = &scenario.device_classes {
                if let Some(&class) = classes.get(d % classes.len()) {
                    builder = builder.device_class(class);
                }
            }
            if let Some(shared) = &edge_cache {
                builder = builder.edge_cache(shared.clone());
            }
            builder.build()
        })
        .collect();

    let proximity = config
        .peer
        .as_ref()
        .map(|p| ProximityModel::new(p.link.range_m.min(1e6)));
    let fanout = config.peer.as_ref().map_or(0, |p| p.advertise_fanout);

    // Optional beacon-based discovery (instead of oracle proximity),
    // breaker-armed when the resilience config asks for it.
    let breaker_config = config
        .peer
        .as_ref()
        .and_then(|p| p.resilience)
        .and_then(|r| r.breaker);
    let mut discoveries: Option<Vec<p2pnet::Discovery>> = config
        .peer
        .as_ref()
        .and_then(|p| p.discovery)
        .filter(|_| variant.peers_enabled() && scenario.devices > 1)
        .map(|d| {
            (0..scenario.devices)
                .map(|_| match breaker_config {
                    Some(breaker) => p2pnet::Discovery::with_breaker(d, breaker),
                    None => p2pnet::Discovery::new(d),
                })
                .collect()
        });
    let mut beacon_rng = root.split("beacons");

    let frame_interval = SimDuration::from_secs_f64(1.0 / scenario.fps);
    let total_frames = (scenario.duration.as_secs_f64() * scenario.fps).floor() as usize;

    // Pending advertisement deliveries: (target device, entry).
    let mut ad_queue: EventQueue<(usize, WireEntry)> = EventQueue::new();
    let mut frame_rng = root.split("frames");
    let mut churn_rng = root.split("churn");
    let mut next_churn = scenario.churn.map(|c| SimTime::ZERO + c.interval);

    let mut prev_frame_time = SimTime::ZERO;
    for frame_index in 1..=total_frames {
        let now = SimTime::ZERO + frame_interval * frame_index as u64;

        // Fault bookkeeping: crash devices whose crash instant fell inside
        // this frame window (the discovery table dies with the process),
        // and propagate the degraded-link factor to every transport.
        if !schedule.is_idle() {
            for (d, device) in devices.iter_mut().enumerate() {
                if schedule.crash_between(d, prev_frame_time, now) {
                    device.crash();
                    if let Some(discoveries) = &mut discoveries {
                        if let Some(disc) = discoveries.get_mut(d) {
                            disc.reset();
                        }
                    }
                }
            }
            let degradation = schedule.degradation(now);
            for device in devices.iter_mut() {
                device.set_link_degradation(degradation);
            }
        }

        // Deliver due advertisements.
        while ad_queue.peek_time().is_some_and(|at| at <= now) {
            let Some((at, (target, entry))) = ad_queue.pop() else {
                break;
            };
            if let Some(device) = devices.get_mut(target) {
                device.receive_advertisement(&entry, at);
            }
        }

        // Churn the world on schedule.
        if let (Some(churn), Some(due)) = (scenario.churn, next_churn) {
            if now >= due {
                world.churn(churn.fraction, &mut churn_rng);
                next_churn = Some(due + churn.interval);
            }
        }

        // Positions of every device at this instant (for proximity).
        let positions: Vec<(f64, f64)> = traces
            .iter()
            .map(|t| {
                let pose = t.pose_at(now);
                (pose.x, pose.y)
            })
            .collect();

        // Beacon exchange: every due transmitter reaches every device
        // currently in physical range; reception applies the configured
        // delivery probability.
        if let (Some(discoveries), Some(model)) = (&mut discoveries, &proximity) {
            for sender in 0..scenario.devices {
                if schedule.radio_dark(sender, now) {
                    continue;
                }
                let due = discoveries
                    .get_mut(sender)
                    .is_some_and(|d| d.should_beacon(now));
                if due {
                    for receiver in model.neighbors(&positions, sender) {
                        if !schedule.reachable(sender, receiver, now) {
                            continue;
                        }
                        if let Some(d) = discoveries.get_mut(receiver) {
                            d.receive_beacon(sender as u64, now, &mut beacon_rng);
                        }
                    }
                }
            }
        }

        for d in 0..devices.len() {
            let pose = traces[d].pose_at(now);
            let frame = renderer.render(&world, &pose, now, &mut frame_rng);
            let window = window_of(&imu_streams[d], prev_frame_time, now, scenario.imu_rate_hz);

            let dark = schedule.radio_dark(d, now);

            // Neighbour caches: from the discovery table when configured
            // (freshest beacon first, filtered to devices actually still
            // in range), otherwise from the proximity oracle (nearest
            // first). A dark radio reaches nobody, and partitioned
            // neighbours drop out.
            let mut neighbor_indices: Vec<usize> = match (&mut discoveries, &proximity) {
                _ if dark => Vec::new(),
                (Some(discoveries), Some(model)) => {
                    let in_range = model.neighbors(&positions, d);
                    discoveries[d]
                        .neighbors(now)
                        .into_iter()
                        .map(|id| id as usize)
                        .filter(|n| in_range.contains(n))
                        .collect()
                }
                (None, Some(model)) if variant.peers_enabled() => model.neighbors(&positions, d),
                _ => Vec::new(),
            };
            if !schedule.is_idle() {
                neighbor_indices.retain(|&n| schedule.reachable(d, n, now));
            }
            let neighbor_caches: Vec<reuse::SharedCache<scene::ClassId>> = neighbor_indices
                .iter()
                .map(|&n| devices[n].cache().clone())
                .collect();
            let cache_refs: Vec<&reuse::SharedCache<scene::ClassId>> =
                neighbor_caches.iter().collect();

            let device = &mut devices[d];
            device.set_radio_dark(dark);
            device.process_frame(&frame, window, &cache_refs, now);

            // Feed this frame's per-peer delivery outcomes to the
            // device's breaker (slots map back through neighbor_indices).
            let peer_outcomes = device.take_peer_outcomes();
            if let Some(discoveries) = &mut discoveries {
                for (slot, delivered) in peer_outcomes {
                    if let Some(&peer) = neighbor_indices.get(slot) {
                        discoveries[d].record_query_outcome(peer as u64, delivered, now);
                    }
                }
            }

            // Advertise fresh inference results to the nearest neighbours.
            if let Some(entry) = device.take_advertisement() {
                let compress = config
                    .peer
                    .as_ref()
                    .is_some_and(|p| p.compress_advertisements);
                // With compression, receivers get the *dequantized* key —
                // the fidelity loss of the wire format is modelled, not
                // just its byte count.
                let (message, delivered_entry) = if compress {
                    let quantized = features::QuantizedVector::quantize(&entry.key);
                    let delivered = WireEntry {
                        key: quantized.dequantize(),
                        ..entry.clone()
                    };
                    (
                        P2pMessage::AdvertiseCompact {
                            entries: vec![p2pnet::protocol::CompactEntry {
                                key: quantized,
                                label: entry.label,
                                confidence: entry.confidence,
                            }],
                        },
                        delivered,
                    )
                } else {
                    (
                        P2pMessage::Advertise {
                            entries: vec![entry.clone()],
                        },
                        entry.clone(),
                    )
                };
                for &target in neighbor_indices.iter().take(fanout) {
                    if let Some(delay) = device.charge_advertisement(&message) {
                        let mut entry = delivered_entry.clone();
                        // Adversarial ad poisoning: corrupt the label so
                        // the receiver caches a wrong answer.
                        if schedule.poison_prob() > 0.0 && poison_rng.chance(schedule.poison_prob())
                        {
                            entry.label = entry.label.wrapping_add(1);
                            fault_totals.record_poisoned_ad();
                        }
                        ad_queue.schedule(now + delay, (target, entry));
                    }
                }
            }
        }
        prev_frame_time = now;
    }

    let all_outcomes: Vec<FrameOutcome> = devices
        .iter()
        .flat_map(|d| d.outcomes().iter().copied())
        .collect();
    let mut cache = reuse::CacheStats::default();
    let mut network = p2pnet::TransportCounters::default();
    let mut edge_totals = edge::EdgeCounters::default();
    for d in &devices {
        cache.merge(&d.cache().stats());
        network.merge(&d.transport_counters());
        fault_totals.merge(d.resilience_counters());
        if let Some(device_edge) = d.edge_counters() {
            edge_totals.merge(device_edge);
        }
    }
    // The server's books join the devices' query-side tallies: one
    // registry, reconcilable (`hits_adopted ≤ hits ≤ lookups ≤
    // queries_sent`).
    if let Some(shared) = &edge_cache {
        edge_totals.merge(&shared.counters());
    }
    // Beacon traffic is network cost too.
    if let Some(discoveries) = &discoveries {
        for disc in discoveries {
            network.record_beacons(disc.beacons_sent(), disc.beacon_bytes_sent());
            if let Some(breaker) = disc.breaker() {
                fault_totals.record_breaker(breaker);
            }
        }
    }
    let mut report = RunReport::from_outcomes(
        &scenario.name,
        variant.name(),
        scenario.devices,
        &all_outcomes,
        cache,
        network,
    );
    report.faults = fault_totals;
    report.edge = edge_totals;
    let (per_device, traces) = match detail {
        Detail::Summary => (Vec::new(), Vec::new()),
        Detail::Full => (
            devices.iter().map(|d| d.outcomes().to_vec()).collect(),
            devices.iter().map(|d| d.trace().to_vec()).collect(),
        ),
    };
    Ok(SimResult {
        report,
        per_device,
        traces,
    })
}

/// The IMU samples strictly after `from` and at or before `to`.
pub(crate) fn window_of(
    stream: &[ImuSample],
    from: SimTime,
    to: SimTime,
    rate_hz: f64,
) -> &[ImuSample] {
    let start = ((from.as_secs_f64() * rate_hz).floor() as usize + 1).min(stream.len());
    let end = ((to.as_secs_f64() * rate_hz).floor() as usize + 1).min(stream.len());
    stream.get(start.min(end)..end).unwrap_or(&[])
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::device::ResolutionPath;

    fn quick(profile: MotionProfile) -> Scenario {
        Scenario::single_device(profile).with_duration(SimDuration::from_secs(8))
    }

    fn summary(
        scenario: &Scenario,
        config: &PipelineConfig,
        variant: SystemVariant,
        seed: u64,
    ) -> RunReport {
        run(scenario, config, variant, seed, Detail::Summary)
            .expect("valid scenario")
            .report
    }

    fn detailed(
        scenario: &Scenario,
        config: &PipelineConfig,
        variant: SystemVariant,
        seed: u64,
    ) -> SimResult {
        run(scenario, config, variant, seed, Detail::Full).expect("valid scenario")
    }

    #[test]
    fn stationary_full_system_reuses_heavily() {
        let scenario = quick(MotionProfile::Stationary);
        let config = PipelineConfig::calibrated(&scenario, 1);
        let report = summary(&scenario, &config, SystemVariant::Full, 1);
        assert_eq!(report.frames, 80);
        assert!(report.reuse_rate() > 0.85, "reuse {}", report.reuse_rate());
        assert!(
            report.path_fraction(ResolutionPath::ImuReuse) > 0.5,
            "imu fast path should dominate a stationary stream: {report}"
        );
    }

    #[test]
    fn edge_tier_counters_reconcile_and_assist() {
        let scenario = Scenario::multi_device(MotionProfile::SlowPan { deg_per_sec: 15.0 }, 6)
            .with_duration(SimDuration::from_secs(6));
        let config = PipelineConfig::calibrated(&scenario, 11);

        // Edge off (the default): the report carries no edge section.
        let baseline = summary(&scenario, &config, SystemVariant::NoPeer, 11);
        assert!(baseline.edge.is_idle());
        assert!(!baseline.to_json().contains("\"edge\""));

        // Edge on, same peerless fleet: devices query the shared cache
        // and the merged books reconcile (adopted ≤ hits ≤ lookups ≤
        // queries sent).
        let edge_config = config
            .clone()
            .with_edge(Some(crate::config::EdgeConfig::default()));
        let assisted = summary(&scenario, &edge_config, SystemVariant::NoPeer, 11);
        assert!(!assisted.edge.is_idle());
        assert!(assisted.edge.queries_sent > 0, "{}", assisted.edge);
        assert!(assisted.edge.inserts > 0, "{}", assisted.edge);
        assert!(assisted.edge.reconciles(), "{}", assisted.edge);
        assert!(assisted.to_json().contains("\"edge\""));
        // The tier can only add reuse opportunities, never remove them.
        assert!(
            assisted.reuse_rate() >= baseline.reuse_rate(),
            "edge-assisted {} vs local-only {}",
            assisted.reuse_rate(),
            baseline.reuse_rate()
        );
    }

    #[test]
    fn invalid_edge_config_is_rejected_up_front() {
        let scenario = quick(MotionProfile::Stationary);
        let edge = crate::config::EdgeConfig {
            capacity: 0,
            ..crate::config::EdgeConfig::default()
        };
        let config = PipelineConfig::new().with_edge(Some(edge));
        let err = run(&scenario, &config, SystemVariant::Full, 1, Detail::Summary)
            .expect_err("zero-capacity edge cache");
        assert!(err.to_string().contains("EdgeConfig"), "{err}");
    }

    #[test]
    fn no_cache_baseline_always_infers() {
        let scenario = quick(MotionProfile::Stationary);
        let config = PipelineConfig::calibrated(&scenario, 2);
        let report = summary(&scenario, &config, SystemVariant::NoCache, 2);
        assert_eq!(report.reuse_rate(), 0.0);
        assert!(report.latency_ms.mean > 50.0);
    }

    #[test]
    fn full_system_is_much_faster_than_no_cache() {
        let scenario = quick(MotionProfile::SlowPan { deg_per_sec: 10.0 });
        let config = PipelineConfig::calibrated(&scenario, 3);
        let base = summary(&scenario, &config, SystemVariant::NoCache, 3);
        let full = summary(&scenario, &config, SystemVariant::Full, 3);
        let reduction = full.latency_reduction_vs(&base);
        assert!(reduction > 0.5, "latency reduction {reduction}");
        // And accuracy stays close.
        assert!(
            full.accuracy_delta_vs(&base) > -0.12,
            "{}",
            full.accuracy_delta_vs(&base)
        );
    }

    #[test]
    fn peers_help_a_cold_device() {
        let scenario = Scenario::multi_device(MotionProfile::SlowPan { deg_per_sec: 15.0 }, 4)
            .with_duration(SimDuration::from_secs(8));
        let config = PipelineConfig::calibrated(&scenario, 4);
        let full = summary(&scenario, &config, SystemVariant::Full, 4);
        let solo = summary(&scenario, &config, SystemVariant::NoPeer, 4);
        let peer_frac = full.path_fraction(ResolutionPath::PeerCache);
        assert!(peer_frac > 0.0, "some frames must be answered by peers");
        assert!(
            full.reuse_rate() >= solo.reuse_rate() - 0.02,
            "collaboration must not hurt reuse: full {} vs solo {}",
            full.reuse_rate(),
            solo.reuse_rate()
        );
        assert!(full.network.bytes_sent > 0);
    }

    #[test]
    fn churn_lowers_reuse() {
        let calm = quick(MotionProfile::SlowPan { deg_per_sec: 10.0 });
        let config = PipelineConfig::calibrated(&calm, 5);
        let churny = calm
            .clone()
            .with_churn(ChurnSpec {
                interval: SimDuration::from_secs(2),
                fraction: 0.5,
            })
            .with_name("churn");
        let calm_report = summary(&calm, &config, SystemVariant::Full, 5);
        let churn_report = summary(&churny, &config, SystemVariant::Full, 5);
        assert!(
            churn_report.reuse_rate() < calm_report.reuse_rate(),
            "churn {} !< calm {}",
            churn_report.reuse_rate(),
            calm_report.reuse_rate()
        );
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let scenario = quick(MotionProfile::Walking { speed_mps: 1.4 });
        let config = PipelineConfig::calibrated(&scenario, 6);
        let a = summary(&scenario, &config, SystemVariant::Full, 6);
        let b = summary(&scenario, &config, SystemVariant::Full, 6);
        assert_eq!(a.latencies_ms, b.latencies_ms);
        assert_eq!(a.path_counts, b.path_counts);
        assert_eq!(a.accuracy, b.accuracy);
    }

    #[test]
    fn detailed_result_splits_devices() {
        let scenario = Scenario::multi_device(MotionProfile::Stationary, 3)
            .with_duration(SimDuration::from_secs(4));
        let config = PipelineConfig::calibrated(&scenario, 7);
        let result = detailed(&scenario, &config, SystemVariant::Full, 7);
        assert_eq!(result.per_device.len(), 3);
        let per_device_total: usize = result.per_device.iter().map(|d| d.len()).sum();
        assert_eq!(per_device_total, result.report.frames);
    }

    #[test]
    fn zero_devices_rejected() {
        let mut scenario = quick(MotionProfile::Stationary);
        scenario.devices = 0;
        let err = scenario.validate().expect_err("zero devices");
        assert_eq!(err.to_string(), "Scenario: devices must be positive");
    }

    #[test]
    fn invalid_faults_rejected_before_running() {
        let mut scenario = quick(MotionProfile::Stationary);
        scenario.faults.outage_fraction = 1.5;
        let config = PipelineConfig::calibrated(&scenario, 40);
        let err = run(&scenario, &config, SystemVariant::Full, 40, Detail::Summary)
            .expect_err("invalid fault config");
        assert!(
            err.to_string().contains("outage_fraction"),
            "error must name the field: {err}"
        );
    }

    #[test]
    fn idle_faults_leave_no_counter_residue() {
        let scenario = quick(MotionProfile::Stationary);
        let config = PipelineConfig::calibrated(&scenario, 41);
        let report = summary(&scenario, &config, SystemVariant::Full, 41);
        assert!(report.faults.is_idle(), "idle run recorded faults");
        assert!(
            !report.to_json().contains("\"faults\""),
            "idle runs must serialize without a faults section"
        );
    }

    #[test]
    fn fault_runs_are_deterministic_in_seed() {
        let scenario = Scenario::multi_device(MotionProfile::Stationary, 4)
            .with_duration(SimDuration::from_secs(8))
            .with_faults(FaultConfig {
                outage_fraction: 0.3,
                outage_mean: SimDuration::from_secs(2),
                crashes_per_device_minute: 2.0,
                poison_prob: 0.1,
                ..FaultConfig::default()
            });
        let mut config = PipelineConfig::calibrated(&scenario, 42);
        if let Some(peer) = config.peer.as_mut() {
            peer.resilience = Some(p2pnet::ResilienceConfig::recommended());
        }
        let a = summary(&scenario, &config, SystemVariant::Full, 42);
        let b = summary(&scenario, &config, SystemVariant::Full, 42);
        assert_eq!(a.to_json(), b.to_json(), "fault runs must be reproducible");
        assert!(
            !a.faults.is_idle(),
            "a 30% outage run must record fault activity"
        );
        assert!(a.faults.outage_frames > 0, "outage frames must be counted");
    }

    #[test]
    fn summary_detail_drops_per_device_logs() {
        let scenario = quick(MotionProfile::Stationary);
        let config = PipelineConfig::calibrated(&scenario, 43).with_trace_capacity(Some(4096));
        let lean = run(&scenario, &config, SystemVariant::Full, 43, Detail::Summary)
            .expect("valid scenario");
        assert!(lean.per_device.is_empty());
        assert!(lean.traces.is_empty());
        let full = detailed(&scenario, &config, SystemVariant::Full, 43);
        assert_eq!(full.per_device.len(), 1);
        assert_eq!(full.traces[0].len(), full.report.frames);
        // The retained detail level must not perturb the run.
        assert_eq!(lean.report.to_json(), full.report.to_json());
    }

    #[test]
    fn cascade_backend_cheapens_misses() {
        // Cache + cascade composition inside the full pipeline: the
        // walking tour's misses become cheaper with a little model in
        // front of the big one, at comparable accuracy.
        let scenario = Scenario::single_device(MotionProfile::Walking { speed_mps: 1.4 })
            .with_duration(SimDuration::from_secs(10));
        let big_only =
            PipelineConfig::calibrated(&scenario, 15).with_model(dnnsim::zoo::inception_v3());
        let cascaded = big_only
            .clone()
            .with_cascade(dnnsim::zoo::squeezenet(), 0.8);
        let single = summary(&scenario, &big_only, SystemVariant::Full, 15);
        let cascade = summary(&scenario, &cascaded, SystemVariant::Full, 15);
        // Miss-path latency must drop materially.
        let single_miss = single.path_mean_latency(ResolutionPath::FullInference);
        let cascade_miss = cascade.path_mean_latency(ResolutionPath::FullInference);
        assert!(
            cascade_miss < single_miss * 0.8,
            "cascade miss {cascade_miss} !< 0.8 × {single_miss}"
        );
        assert!(cascade.accuracy > single.accuracy - 0.1);
    }

    #[test]
    fn compressed_advertisements_save_bytes_without_losing_reuse() {
        let scenario = Scenario::multi_device(
            MotionProfile::TurnAndLook {
                dwell_secs: 3.0,
                turn_deg: 45.0,
            },
            6,
        )
        .with_duration(SimDuration::from_secs(8));
        let config = PipelineConfig::calibrated(&scenario, 14);
        let float_run = summary(&scenario, &config, SystemVariant::Full, 14);
        let mut compressed_config = config.clone();
        compressed_config
            .peer
            .as_mut()
            .expect("peers enabled")
            .compress_advertisements = true;
        let compact_run = summary(&scenario, &compressed_config, SystemVariant::Full, 14);
        assert!(
            (compact_run.network.bytes_sent as f64) < float_run.network.bytes_sent as f64 * 0.8,
            "compact {} !< 0.8 × float {}",
            compact_run.network.bytes_sent,
            float_run.network.bytes_sent
        );
        assert!(
            (compact_run.reuse_rate() - float_run.reuse_rate()).abs() < 0.03,
            "compact reuse {} vs float {}",
            compact_run.reuse_rate(),
            float_run.reuse_rate()
        );
    }

    #[test]
    fn heterogeneous_fleet_helps_slow_devices_most() {
        // Museum of alternating budget and flagship phones: peers mean a
        // budget phone's misses are often answered by someone else's
        // (cheap) inference instead of its own (expensive) one.
        use dnnsim::DeviceClass;
        let scenario = Scenario::multi_device(
            MotionProfile::TurnAndLook {
                dwell_secs: 3.0,
                turn_deg: 45.0,
            },
            6,
        )
        .with_duration(SimDuration::from_secs(8))
        .with_device_classes(vec![DeviceClass::Budget, DeviceClass::Flagship]);
        let config = PipelineConfig::calibrated(&scenario, 13);
        let full = detailed(&scenario, &config, SystemVariant::Full, 13);
        let solo = detailed(&scenario, &config, SystemVariant::NoPeer, 13);
        let budget_mean = |result: &SimResult| {
            let frames: Vec<f64> = result
                .per_device
                .iter()
                .step_by(2) // devices 0, 2, 4 are Budget
                .flatten()
                .map(|o| o.latency.as_millis_f64())
                .collect();
            frames.iter().sum::<f64>() / frames.len() as f64
        };
        let with_peers = budget_mean(&full);
        let without = budget_mean(&solo);
        assert!(
            with_peers < without,
            "budget devices with peers {with_peers} !< solo {without}"
        );
    }

    #[test]
    fn activity_adaptive_gate_reuses_more_while_walking() {
        // Walking gait defeats a static still-threshold of 1.0 (every
        // window scores above it); the walking preset (3.0) lets the
        // fast path fire between strides without losing accuracy.
        let scenario = Scenario::single_device(MotionProfile::Walking { speed_mps: 1.4 })
            .with_duration(SimDuration::from_secs(10));
        let config = PipelineConfig::calibrated(&scenario, 12);
        let static_gate = summary(&scenario, &config, SystemVariant::Full, 12);
        let adaptive_config = config.clone().with_activity_adaptive_gate(true);
        let adaptive = summary(&scenario, &adaptive_config, SystemVariant::Full, 12);
        assert!(
            adaptive.path_fraction(ResolutionPath::ImuReuse)
                > static_gate.path_fraction(ResolutionPath::ImuReuse),
            "adaptive {} !> static {}",
            adaptive.path_fraction(ResolutionPath::ImuReuse),
            static_gate.path_fraction(ResolutionPath::ImuReuse)
        );
        assert!(
            adaptive.accuracy > static_gate.accuracy - 0.1,
            "adaptive accuracy {} collapsed vs {}",
            adaptive.accuracy,
            static_gate.accuracy
        );
    }

    #[test]
    fn beacon_discovery_finds_peers_and_costs_bytes() {
        let scenario = Scenario::multi_device(
            MotionProfile::TurnAndLook {
                dwell_secs: 3.0,
                turn_deg: 45.0,
            },
            4,
        )
        .with_duration(SimDuration::from_secs(8));
        let mut config = PipelineConfig::calibrated(&scenario, 8);
        let peer = config.peer.as_mut().expect("peers enabled");
        peer.discovery = Some(p2pnet::DiscoveryConfig::default());
        let report = summary(&scenario, &config, SystemVariant::Full, 8);
        // Discovery still enables collaboration…
        assert!(
            report.path_fraction(ResolutionPath::PeerCache) > 0.0,
            "discovered peers must serve hits: {report}"
        );
        // …and the beacon traffic is visible in the network counters: at
        // 500 ms intervals over 8 s, 4 devices send ≥ 60 beacons.
        assert!(
            report.network.messages_sent >= 60,
            "beacons must be accounted ({} messages)",
            report.network.messages_sent
        );
    }

    #[test]
    fn oracle_and_discovery_agree_when_beacons_are_perfect() {
        // With instant, lossless beacons, discovery converges to the
        // oracle neighbour set after one interval; reuse totals must be
        // close (initial invisibility window aside).
        let scenario = Scenario::multi_device(MotionProfile::Stationary, 4)
            .with_duration(SimDuration::from_secs(8));
        let mut config = PipelineConfig::calibrated(&scenario, 9);
        let oracle = summary(&scenario, &config, SystemVariant::Full, 9);
        config.peer.as_mut().expect("peers").discovery = Some(p2pnet::DiscoveryConfig {
            beacon_delivery_prob: 1.0,
            ..p2pnet::DiscoveryConfig::default()
        });
        let discovered = summary(&scenario, &config, SystemVariant::Full, 9);
        assert!(
            (oracle.reuse_rate() - discovered.reuse_rate()).abs() < 0.05,
            "oracle {} vs discovered {}",
            oracle.reuse_rate(),
            discovered.reuse_rate()
        );
    }

    #[test]
    fn traces_are_empty_unless_enabled() {
        let scenario = quick(MotionProfile::Stationary);
        let config = PipelineConfig::calibrated(&scenario, 30);
        let plain = detailed(&scenario, &config, SystemVariant::Full, 30);
        assert_eq!(plain.traces.len(), 1);
        assert!(plain.traces[0].is_empty());

        let traced_config = config.with_trace_capacity(Some(4096));
        let traced = detailed(&scenario, &traced_config, SystemVariant::Full, 30);
        assert_eq!(traced.traces[0].len(), traced.report.frames);
        // Tracing must not perturb the run itself.
        assert_eq!(traced.report.path_counts, plain.report.path_counts);
        assert_eq!(traced.report.latencies_ms, plain.report.latencies_ms);
    }

    #[test]
    fn window_of_selects_interval() {
        let stream: Vec<ImuSample> = (0..100)
            .map(|i| ImuSample {
                at: SimTime::from_millis(i * 10),
                gyro: [0.0; 3],
                accel: [0.0; 3],
            })
            .collect();
        let w = window_of(&stream, SimTime::ZERO, SimTime::from_millis(100), 100.0);
        assert_eq!(w.len(), 10);
        let w2 = window_of(
            &stream,
            SimTime::from_millis(100),
            SimTime::from_millis(200),
            100.0,
        );
        assert_eq!(w2.len(), 10);
        assert!(w2[0].at > SimTime::from_millis(100));
    }
}
