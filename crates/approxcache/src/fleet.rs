//! Fleet-scale simulation: sharded device populations, deterministic
//! parallel execution.
//!
//! The legacy driver ([`sim::run`](crate::sim::run)) threads shared RNG
//! streams through a sequential device loop, so its results depend on
//! processing order — correct, reproducible, and impossible to
//! parallelize. This engine re-derives the same scenario semantics in a
//! *shard-count-invariant* form:
//!
//! - **Per-device randomness is keyed by global device id.** Frame
//!   rendering, beacon reception and ad poisoning draw from
//!   `split_index` streams owned by the device (or its sender), never
//!   from a stream shared across devices, so no device's draw depends
//!   on when another device ran.
//! - **Rounds alternate a sequential barrier with a parallel phase.**
//!   At the barrier the coordinator churns the single shared world,
//!   recomputes positions, rebuilds the proximity grid and drains due
//!   gossip. In the parallel phase each shard processes its device
//!   range; devices mutate only themselves and read only frozen shared
//!   state.
//! - **Peer queries hit frozen per-round views.** Each device exposes a
//!   [`frozen_view`](reuse::SharedCache::frozen_view) of its cache,
//!   rebuilt only when its
//!   [`contents_version`](reuse::SharedCache::contents_version) moved.
//!   A peer's lookup side-effects land on the discarded view — fleet
//!   semantics: being queried does not disturb the owner.
//! - **All gossip crosses the round barrier.** Beacons and
//!   advertisements — in-shard and out — are collected into per-shard
//!   outboxes, posted to a [`BoundaryExchange`], and applied at a later
//!   barrier in canonical `(deliver_at, receiver, sender, seq)` order.
//!
//! Consequently an N-shard run on any worker count produces a
//! [`RunReport`] byte-for-byte identical to the 1-shard run on the same
//! population (pinned by test), and per-shard results merge by plain
//! concatenation in device order. Each shard also owns a
//! `seed.split_index("shard", s)` stream used to *shuffle* its intra-
//! round processing order — a built-in adversary: any hidden order
//! dependence would break the invariance tests immediately.

use std::num::NonZeroUsize;

use imu::{ImuSample, ImuSynthesizer, MotionTrace};
use p2pnet::{
    BoundaryExchange, Discovery, Envelope, FaultSchedule, P2pMessage, ProximityGrid,
    ProximityModel, ResilienceCounters, WireEntry,
};
use reuse::SharedCache;
use scene::{ClassId, ClassUniverse, FrameRenderer, World};
use simcore::parallel::{default_threads, run_labeled_jobs_on};
use simcore::{SimDuration, SimRng, SimTime};

use crate::baseline::SystemVariant;
use crate::config::{device_traces, PipelineConfig};
use crate::device::{Device, DeviceBuilder, DeviceId, FrameOutcome};
use crate::error::ConfigError;
use crate::report::RunReport;
use crate::sim::{window_of, Scenario};

/// How to partition and schedule a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetOptions {
    /// Number of population shards (clamped to `1..=devices`). Shards
    /// are contiguous device-index ranges; since spawn positions are
    /// row-major in device index, contiguous ranges are also spatially
    /// coherent.
    pub shards: usize,
    /// Worker threads for the parallel phases. The report is identical
    /// for every value; only wall-clock changes.
    pub threads: NonZeroUsize,
}

impl FleetOptions {
    /// One shard on one thread — the reference execution every other
    /// configuration must reproduce byte-for-byte.
    pub fn single() -> FleetOptions {
        FleetOptions {
            shards: 1,
            threads: NonZeroUsize::MIN,
        }
    }

    /// `shards` shards on up to one worker per available core.
    pub fn sharded(shards: usize) -> FleetOptions {
        FleetOptions {
            shards,
            threads: default_threads(),
        }
    }

    /// Same sharding, explicit worker count.
    pub fn with_threads(mut self, threads: NonZeroUsize) -> FleetOptions {
        self.threads = threads;
        self
    }
}

/// Everything one device owns across the whole run.
struct Slot {
    device: Device,
    discovery: Option<Discovery>,
    /// Per-device frame-noise stream (`split_index("fleet-frame", d)`).
    frame_rng: SimRng,
    /// Receiver-side beacon-delivery stream
    /// (`split_index("fleet-beacon-rx", d)`).
    beacon_rng: SimRng,
    /// Sender-side ad-poisoning stream
    /// (`split_index("fleet-poison-tx", d)`).
    poison_rng: SimRng,
    ad_seq: u64,
    beacon_seq: u64,
}

/// Per-shard scratch that persists across rounds.
struct Lane {
    /// The shard's own RNG stream (`split_index("shard", s)`): shuffles
    /// the intra-round processing order, which the engine's invariants
    /// say cannot affect results.
    rng: SimRng,
    /// Reused neighbour buffer.
    scratch: Vec<usize>,
}

/// What one shard's round hands back to the coordinator.
#[derive(Default)]
struct Outbox {
    ads: Vec<Envelope<WireEntry>>,
    beacons: Vec<Envelope<()>>,
    poisoned: u64,
}

/// Read-only state shared by every shard during one round.
struct RoundCtx<'a> {
    scenario: &'a Scenario,
    variant: SystemVariant,
    schedule: &'a FaultSchedule,
    renderer: &'a FrameRenderer,
    world: &'a World,
    traces: &'a [MotionTrace],
    imu_streams: &'a [Vec<ImuSample>],
    views: &'a [SharedCache<ClassId>],
    grid: Option<&'a ProximityGrid>,
    fanout: usize,
    compress: bool,
    now: SimTime,
    prev: SimTime,
}

/// Contiguous `[floor(s·n/S), floor((s+1)·n/S))` device ranges.
fn shard_bounds(devices: usize, shards: usize) -> Vec<(usize, usize)> {
    (0..shards)
        .map(|s| (s * devices / shards, (s + 1) * devices / shards))
        .collect()
}

/// Plays `scenario` out on a sharded population and returns the merged
/// report. For any `(shards, threads)` the report is byte-for-byte the
/// report of `FleetOptions::single()` on the same arguments; see the
/// [module docs](self) for why.
///
/// # Errors
///
/// Rejects invalid scenario or network configuration, like
/// [`sim::run`](crate::sim::run).
pub fn run_fleet(
    scenario: &Scenario,
    config: &PipelineConfig,
    variant: SystemVariant,
    seed: u64,
    options: &FleetOptions,
) -> Result<RunReport, ConfigError> {
    scenario.validate()?;
    if let Some(peer) = &config.peer {
        peer.link.validate()?;
        if let Some(discovery) = &peer.discovery {
            discovery.validate()?;
        }
        if let Some(resilience) = &peer.resilience {
            resilience.validate()?;
        }
    }
    // The edge tier is one *shared mutable* cache: sharding the fleet
    // would split it into per-shard caches and break the byte-identity
    // contract above. Run edge experiments through `sim::run`.
    if config.edge.is_some() {
        return Err(ConfigError::Inconsistent {
            context: "FleetOptions",
            message: "the edge tier shares one cache across devices; run_fleet cannot shard it — use sim::run",
        });
    }
    let devices = scenario.devices;
    let shards = options.shards.clamp(1, devices.max(1));
    let threads = options.threads;
    let bounds = shard_bounds(devices, shards);

    let root = SimRng::seed(seed);
    let faults_rng = root.split("fleet-faults");
    let schedule = if scenario.faults.is_idle() {
        FaultSchedule::idle()
    } else {
        FaultSchedule::generate(&scenario.faults, devices, scenario.duration, &faults_rng)
    };
    let mut fault_totals = ResilienceCounters::default();
    let mut world_rng = root.split("fleet-world");
    let universe = ClassUniverse::generate(&scenario.scene, &mut world_rng);
    let mut world = World::generate(&universe, &scenario.scene, &mut world_rng);
    let renderer = FrameRenderer::new(&scenario.scene);

    // Ground-truth motion (already per-device-seeded inside).
    let traces: Vec<MotionTrace> = device_traces(
        scenario.profile,
        devices,
        scenario.duration,
        scenario.imu_rate_hz,
        scenario.spawn_spacing,
        &root,
    );

    let proximity = config
        .peer
        .as_ref()
        .map(|p| ProximityModel::new(p.link.range_m.min(1e6)));
    let fanout = config.peer.as_ref().map_or(0, |p| p.advertise_fanout);
    let compress = config
        .peer
        .as_ref()
        .is_some_and(|p| p.compress_advertisements);
    let breaker_config = config
        .peer
        .as_ref()
        .and_then(|p| p.resilience)
        .and_then(|r| r.breaker);
    let discovery_config = config
        .peer
        .as_ref()
        .and_then(|p| p.discovery)
        .filter(|_| variant.peers_enabled() && devices > 1);
    let peer_tier = proximity.is_some() && variant.peers_enabled() && devices > 1;

    // Build every shard's slots (devices, IMU streams, per-device RNG
    // streams) in parallel — all derivations are keyed by global device
    // id, so the result is independent of which worker built what.
    let built: Vec<(Vec<Slot>, Vec<Vec<ImuSample>>)> = run_labeled_jobs_on(
        threads,
        bounds
            .iter()
            .enumerate()
            .map(|(s, &(lo, hi))| {
                let root = &root;
                let universe = &universe;
                let traces = &traces;
                let job = move || {
                    let synthesizer = ImuSynthesizer::default();
                    let mut slots = Vec::with_capacity(hi - lo);
                    let mut streams = Vec::with_capacity(hi - lo);
                    for d in lo..hi {
                        let mut builder = DeviceBuilder::new(
                            DeviceId(d),
                            config,
                            universe,
                            scenario.scene.descriptor_dim,
                            seed,
                        )
                        .variant(variant);
                        if let Some(classes) = &scenario.device_classes {
                            if let Some(&class) = classes.get(d % classes.len()) {
                                builder = builder.device_class(class);
                            }
                        }
                        let discovery = discovery_config.map(|dc| match breaker_config {
                            Some(breaker) => Discovery::with_breaker(dc, breaker),
                            None => Discovery::new(dc),
                        });
                        slots.push(Slot {
                            device: builder.build(),
                            discovery,
                            frame_rng: root.split_index("fleet-frame", d as u64),
                            beacon_rng: root.split_index("fleet-beacon-rx", d as u64),
                            poison_rng: root.split_index("fleet-poison-tx", d as u64),
                            ad_seq: 0,
                            beacon_seq: 0,
                        });
                        let mut imu_rng = root.split_index("fleet-imu", d as u64);
                        streams.push(match traces.get(d) {
                            Some(trace) => synthesizer.synthesize(trace, &mut imu_rng),
                            None => Vec::new(),
                        });
                    }
                    (slots, streams)
                };
                (format!("fleet-setup-shard-{s}"), job)
            })
            .collect(),
    );
    let mut slots: Vec<Slot> = Vec::with_capacity(devices);
    let mut imu_streams: Vec<Vec<ImuSample>> = Vec::with_capacity(devices);
    for (shard_slots, shard_streams) in built {
        slots.extend(shard_slots);
        imu_streams.extend(shard_streams);
    }

    // Frozen peer views, one per device, rebuilt lazily when a cache's
    // contents version moves. The placeholder is never queried: the
    // sentinel version forces a real build in round 1's view phase.
    let placeholder: SharedCache<ClassId> = SharedCache::new(reuse::CacheConfig::new(1));
    let mut views: Vec<SharedCache<ClassId>> = (0..devices).map(|_| placeholder.clone()).collect();
    let mut view_versions: Vec<u64> = vec![u64::MAX; devices];

    let mut lanes: Vec<Lane> = (0..shards)
        .map(|s| Lane {
            rng: root.split_index("shard", s as u64),
            scratch: Vec::new(),
        })
        .collect();

    let frame_interval = SimDuration::from_secs_f64(1.0 / scenario.fps);
    let total_frames = (scenario.duration.as_secs_f64() * scenario.fps).floor() as usize;
    let mut ad_exchange: BoundaryExchange<WireEntry> = BoundaryExchange::new();
    let mut beacon_exchange: BoundaryExchange<()> = BoundaryExchange::new();
    let mut churn_rng = root.split("fleet-churn");
    let mut next_churn = scenario.churn.map(|c| SimTime::ZERO + c.interval);

    let mut prev_frame_time = SimTime::ZERO;
    for frame_index in 1..=total_frames {
        let now = SimTime::ZERO + frame_interval * frame_index as u64;

        // ---- Barrier: coordinator-owned shared state. ----
        if let (Some(churn), Some(due)) = (scenario.churn, next_churn) {
            if now >= due {
                world.churn(churn.fraction, &mut churn_rng);
                next_churn = Some(due + churn.interval);
            }
        }
        let positions: Vec<(f64, f64)> = traces
            .iter()
            .map(|t| {
                let pose = t.pose_at(now);
                (pose.x, pose.y)
            })
            .collect();
        let grid = match (&proximity, peer_tier || variant.peers_enabled()) {
            (Some(model), true) => Some(ProximityGrid::build(*model, &positions)),
            _ => None,
        };

        // Due gossip, in canonical order, bucketed per shard.
        let mut ad_batches: Vec<Vec<Envelope<WireEntry>>> =
            (0..shards).map(|_| Vec::new()).collect();
        for envelope in ad_exchange.drain_due(now) {
            let shard = shard_of(&bounds, envelope.receiver as usize);
            if let Some(batch) = ad_batches.get_mut(shard) {
                batch.push(envelope);
            }
        }
        let mut beacon_batches: Vec<Vec<Envelope<()>>> = (0..shards).map(|_| Vec::new()).collect();
        for envelope in beacon_exchange.drain_due(now) {
            let shard = shard_of(&bounds, envelope.receiver as usize);
            if let Some(batch) = beacon_batches.get_mut(shard) {
                batch.push(envelope);
            }
        }

        // ---- Parallel phase V: refresh dirty frozen views. ----
        // Views snapshot each cache as of the *previous* round's end —
        // before this round's gossip application — so every shard sees
        // the same peer state no matter when it runs.
        if peer_tier {
            let refreshed: Vec<Vec<(usize, SharedCache<ClassId>, u64)>> = run_labeled_jobs_on(
                threads,
                bounds
                    .iter()
                    .enumerate()
                    .map(|(s, &(lo, hi))| {
                        let slots = &slots;
                        let view_versions = &view_versions;
                        let job = move || {
                            let mut out = Vec::new();
                            for (d, slot) in slots.iter().enumerate().take(hi).skip(lo) {
                                let version = slot.device.cache().contents_version();
                                if view_versions.get(d).copied() != Some(version) {
                                    out.push((d, slot.device.cache().frozen_view(now), version));
                                }
                            }
                            out
                        };
                        (format!("fleet-views-shard-{s}"), job)
                    })
                    .collect(),
            );
            for (d, view, version) in refreshed.into_iter().flatten() {
                if let (Some(slot), Some(stamp)) = (views.get_mut(d), view_versions.get_mut(d)) {
                    *slot = view;
                    *stamp = version;
                }
            }
        }

        // ---- Parallel phase F: each shard runs its device range. ----
        let ctx = RoundCtx {
            scenario,
            variant,
            schedule: &schedule,
            renderer: &renderer,
            world: &world,
            traces: &traces,
            imu_streams: &imu_streams,
            views: &views,
            grid: grid.as_ref(),
            fanout,
            compress,
            now,
            prev: prev_frame_time,
        };
        let mut jobs: Vec<(String, Box<dyn FnOnce() -> Outbox + Send + '_>)> = Vec::new();
        {
            let ctx = &ctx;
            let mut rest = slots.as_mut_slice();
            let mut ad_iter = ad_batches.into_iter();
            let mut beacon_iter = beacon_batches.into_iter();
            for (s, lane) in lanes.iter_mut().enumerate() {
                let (lo, hi) = bounds.get(s).copied().unwrap_or((0, 0));
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(hi - lo);
                rest = tail;
                let ads_in = ad_iter.next().unwrap_or_default();
                let beacons_in = beacon_iter.next().unwrap_or_default();
                jobs.push((
                    format!("fleet-round-{frame_index}-shard-{s}"),
                    Box::new(move || shard_round(ctx, lo, head, lane, ads_in, beacons_in)),
                ));
            }
        }
        let outboxes = run_labeled_jobs_on(threads, jobs);

        // ---- Barrier: merge outboxes into the exchanges. ----
        for outbox in outboxes {
            ad_exchange.extend(outbox.ads);
            beacon_exchange.extend(outbox.beacons);
            for _ in 0..outbox.poisoned {
                fault_totals.record_poisoned_ad();
            }
        }
        prev_frame_time = now;
    }

    // Merge: concatenate outcomes in canonical device order (exactly
    // what the 1-shard run would have produced) and fold the
    // order-independent counters.
    let all_outcomes: Vec<FrameOutcome> = slots
        .iter()
        .flat_map(|s| s.device.outcomes().iter().copied())
        .collect();
    let mut cache = reuse::CacheStats::default();
    let mut network = p2pnet::TransportCounters::default();
    for slot in &slots {
        cache.merge(&slot.device.cache().stats());
        network.merge(&slot.device.transport_counters());
        fault_totals.merge(slot.device.resilience_counters());
        if let Some(disc) = &slot.discovery {
            network.record_beacons(disc.beacons_sent(), disc.beacon_bytes_sent());
            if let Some(breaker) = disc.breaker() {
                fault_totals.record_breaker(breaker);
            }
        }
    }
    let mut report = RunReport::from_outcomes(
        &scenario.name,
        variant.name(),
        devices,
        &all_outcomes,
        cache,
        network,
    );
    report.faults = fault_totals;
    Ok(report)
}

/// The shard owning global device index `d`.
fn shard_of(bounds: &[(usize, usize)], d: usize) -> usize {
    bounds
        .iter()
        .position(|&(lo, hi)| d >= lo && d < hi)
        .unwrap_or(0)
}

/// One shard's round: apply inbound gossip, process every device's
/// frame, collect outbound gossip. Devices mutate only themselves (and
/// the shard-local outbox, whose order is canonicalized downstream), so
/// the processing order — deliberately shuffled by the shard's RNG
/// stream — cannot affect any result.
fn shard_round(
    ctx: &RoundCtx<'_>,
    lo: usize,
    slots: &mut [Slot],
    lane: &mut Lane,
    ads_in: Vec<Envelope<WireEntry>>,
    beacons_in: Vec<Envelope<()>>,
) -> Outbox {
    let len = slots.len();
    let mut outbox = Outbox::default();

    // Bucket inbound gossip per device, preserving canonical order.
    let mut ad_inbox: Vec<Vec<Envelope<WireEntry>>> = (0..len).map(|_| Vec::new()).collect();
    for envelope in ads_in {
        let local = (envelope.receiver as usize).saturating_sub(lo);
        if let Some(inbox) = ad_inbox.get_mut(local) {
            inbox.push(envelope);
        }
    }
    let mut beacon_inbox: Vec<Vec<Envelope<()>>> = (0..len).map(|_| Vec::new()).collect();
    for envelope in beacons_in {
        let local = (envelope.receiver as usize).saturating_sub(lo);
        if let Some(inbox) = beacon_inbox.get_mut(local) {
            inbox.push(envelope);
        }
    }

    // Shuffled processing order: an in-engine adversary for hidden
    // order dependence.
    let mut order: Vec<usize> = (0..len).collect();
    lane.rng.shuffle(&mut order);

    for local in order {
        let d = lo + local;
        let Some(slot) = slots.get_mut(local) else {
            continue;
        };

        // Fault bookkeeping (same frame-window semantics as the legacy
        // driver, but self-contained per device).
        if !ctx.schedule.is_idle() {
            if ctx.schedule.crash_between(d, ctx.prev, ctx.now) {
                slot.device.crash();
                if let Some(disc) = slot.discovery.as_mut() {
                    disc.reset();
                }
            }
            slot.device
                .set_link_degradation(ctx.schedule.degradation(ctx.now));
        }

        // Due advertisements (delivered with their scheduled timestamp).
        if let Some(inbox) = ad_inbox.get_mut(local) {
            for envelope in inbox.drain(..) {
                slot.device
                    .receive_advertisement(&envelope.payload, envelope.deliver_at);
            }
        }

        // Beacons raised last round, received with this round's clock
        // and the receiver's own delivery stream.
        if let Some(inbox) = beacon_inbox.get_mut(local) {
            for envelope in inbox.drain(..) {
                if let Some(disc) = slot.discovery.as_mut() {
                    disc.receive_beacon(envelope.sender, ctx.now, &mut slot.beacon_rng);
                }
            }
        }

        let dark = ctx.schedule.radio_dark(d, ctx.now);

        // In-range neighbours, nearest first (shared by beacon fanout
        // and the peer tier).
        match ctx.grid {
            Some(grid) => grid.neighbors_into(d, &mut lane.scratch),
            None => lane.scratch.clear(),
        }

        // Outbound beacons: decided now, applied at the next barrier.
        if let Some(disc) = slot.discovery.as_mut() {
            if !dark && disc.should_beacon(ctx.now) {
                for &receiver in &lane.scratch {
                    if ctx.schedule.reachable(d, receiver, ctx.now) {
                        outbox.beacons.push(Envelope {
                            deliver_at: ctx.now,
                            receiver: receiver as u64,
                            sender: d as u64,
                            seq: slot.beacon_seq,
                            payload: (),
                        });
                        slot.beacon_seq += 1;
                    }
                }
            }
        }

        // Frame processing against frozen peer views.
        let Some(trace) = ctx.traces.get(d) else {
            continue;
        };
        let pose = trace.pose_at(ctx.now);
        let frame = ctx
            .renderer
            .render(ctx.world, &pose, ctx.now, &mut slot.frame_rng);
        let window = match ctx.imu_streams.get(d) {
            Some(stream) => window_of(stream, ctx.prev, ctx.now, ctx.scenario.imu_rate_hz),
            None => &[],
        };

        let mut neighbor_indices: Vec<usize> = if dark {
            Vec::new()
        } else if let Some(disc) = slot.discovery.as_mut() {
            disc.neighbors(ctx.now)
                .into_iter()
                .map(|id| id as usize)
                .filter(|n| lane.scratch.contains(n))
                .collect()
        } else if ctx.grid.is_some() && ctx.variant.peers_enabled() {
            lane.scratch.clone()
        } else {
            Vec::new()
        };
        if !ctx.schedule.is_idle() {
            neighbor_indices.retain(|&n| ctx.schedule.reachable(d, n, ctx.now));
        }
        let peer_views: Vec<&SharedCache<ClassId>> = neighbor_indices
            .iter()
            .filter_map(|&n| ctx.views.get(n))
            .collect();

        slot.device.set_radio_dark(dark);
        slot.device
            .process_frame(&frame, window, &peer_views, ctx.now);

        // Per-peer delivery outcomes feed the device's breaker.
        let peer_outcomes = slot.device.take_peer_outcomes();
        if let Some(disc) = slot.discovery.as_mut() {
            for (idx, delivered) in peer_outcomes {
                if let Some(&peer) = neighbor_indices.get(idx) {
                    disc.record_query_outcome(peer as u64, delivered, ctx.now);
                }
            }
        }

        // Advertise fresh inference results toward the nearest
        // neighbours; delivery happens at a later barrier.
        if let Some(entry) = slot.device.take_advertisement() {
            let (message, delivered_entry) = if ctx.compress {
                let quantized = features::QuantizedVector::quantize(&entry.key);
                let delivered = WireEntry {
                    key: quantized.dequantize(),
                    ..entry.clone()
                };
                (
                    P2pMessage::AdvertiseCompact {
                        entries: vec![p2pnet::protocol::CompactEntry {
                            key: quantized,
                            label: entry.label,
                            confidence: entry.confidence,
                        }],
                    },
                    delivered,
                )
            } else {
                (
                    P2pMessage::Advertise {
                        entries: vec![entry.clone()],
                    },
                    entry.clone(),
                )
            };
            for &target in neighbor_indices.iter().take(ctx.fanout) {
                if let Some(delay) = slot.device.charge_advertisement(&message) {
                    let mut payload = delivered_entry.clone();
                    if ctx.schedule.poison_prob() > 0.0
                        && slot.poison_rng.chance(ctx.schedule.poison_prob())
                    {
                        payload.label = payload.label.wrapping_add(1);
                        outbox.poisoned += 1;
                    }
                    outbox.ads.push(Envelope {
                        deliver_at: ctx.now + delay,
                        receiver: target as u64,
                        sender: d as u64,
                        seq: slot.ad_seq,
                        payload,
                    });
                    slot.ad_seq += 1;
                }
            }
        }
    }
    outbox
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ChurnSpec, Scenario};
    use imu::MotionProfile;

    fn threads(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).expect("positive")
    }

    fn fleet_scenario(devices: usize) -> Scenario {
        Scenario::multi_device(MotionProfile::SlowPan { deg_per_sec: 15.0 }, devices)
            .with_duration(SimDuration::from_secs(6))
    }

    #[test]
    fn shard_bounds_cover_the_population_exactly() {
        for (n, s) in [(10, 3), (7, 7), (10_000, 16), (5, 1)] {
            let bounds = shard_bounds(n, s);
            assert_eq!(bounds.len(), s);
            assert_eq!(bounds.first().map(|b| b.0), Some(0));
            assert_eq!(bounds.last().map(|b| b.1), Some(n));
            for w in bounds.windows(2) {
                if let [a, b] = w {
                    assert_eq!(a.1, b.0, "ranges must be contiguous");
                }
            }
        }
    }

    #[test]
    fn n_shard_report_is_byte_identical_to_single_shard() {
        let scenario = fleet_scenario(8);
        let config = PipelineConfig::calibrated(&scenario, 42);
        let reference = run_fleet(
            &scenario,
            &config,
            SystemVariant::Full,
            42,
            &FleetOptions::single(),
        )
        .expect("valid scenario")
        .to_json();
        for shards in [2usize, 4, 7] {
            let report = run_fleet(
                &scenario,
                &config,
                SystemVariant::Full,
                42,
                &FleetOptions {
                    shards,
                    threads: threads(4),
                },
            )
            .expect("valid scenario")
            .to_json();
            assert_eq!(
                report, reference,
                "{shards}-shard report must match the 1-shard run byte-for-byte"
            );
        }
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let scenario = fleet_scenario(6);
        let config = PipelineConfig::calibrated(&scenario, 7);
        let opts = |t: usize| FleetOptions {
            shards: 3,
            threads: threads(t),
        };
        let one = run_fleet(&scenario, &config, SystemVariant::Full, 7, &opts(1))
            .expect("valid scenario")
            .to_json();
        let many = run_fleet(&scenario, &config, SystemVariant::Full, 7, &opts(8))
            .expect("valid scenario")
            .to_json();
        assert_eq!(one, many);
    }

    #[test]
    fn invariance_holds_under_churn_and_faults() {
        let scenario = fleet_scenario(8)
            .with_churn(ChurnSpec {
                interval: SimDuration::from_secs(2),
                fraction: 0.3,
            })
            .with_faults(p2pnet::FaultConfig {
                outage_fraction: 0.25,
                outage_mean: SimDuration::from_secs(2),
                crashes_per_device_minute: 2.0,
                poison_prob: 0.15,
                ..p2pnet::FaultConfig::default()
            });
        let config = PipelineConfig::calibrated(&scenario, 11);
        let reference = run_fleet(
            &scenario,
            &config,
            SystemVariant::Full,
            11,
            &FleetOptions::single(),
        )
        .expect("valid scenario")
        .to_json();
        let sharded = run_fleet(
            &scenario,
            &config,
            SystemVariant::Full,
            11,
            &FleetOptions {
                shards: 4,
                threads: threads(4),
            },
        )
        .expect("valid scenario")
        .to_json();
        assert_eq!(sharded, reference, "fault-storm run must stay invariant");
    }

    #[test]
    fn fleet_population_actually_collaborates() {
        let scenario = fleet_scenario(8);
        let config = PipelineConfig::calibrated(&scenario, 5);
        let report = run_fleet(
            &scenario,
            &config,
            SystemVariant::Full,
            5,
            &FleetOptions {
                shards: 4,
                threads: threads(2),
            },
        )
        .expect("valid scenario");
        assert_eq!(report.devices, 8);
        assert!(report.frames > 0);
        assert!(
            report.network.bytes_sent > 0,
            "peer traffic must flow across shard boundaries"
        );
        assert!(
            report.path_fraction(crate::device::ResolutionPath::PeerCache) > 0.0,
            "some frames must be answered by peers: {report}"
        );
    }

    #[test]
    fn edge_tier_is_rejected_up_front() {
        let scenario = fleet_scenario(4);
        let config = PipelineConfig::calibrated(&scenario, 3)
            .with_edge(Some(crate::config::EdgeConfig::default()));
        let err = run_fleet(
            &scenario,
            &config,
            SystemVariant::Full,
            3,
            &FleetOptions::single(),
        )
        .expect_err("a shared edge cache cannot be sharded");
        assert!(err.to_string().contains("edge"), "{err}");
    }

    #[test]
    fn invalid_scenario_is_rejected_up_front() {
        let mut scenario = fleet_scenario(2);
        scenario.fps = 0.0;
        let config = PipelineConfig::new();
        let err = run_fleet(
            &scenario,
            &config,
            SystemVariant::Full,
            1,
            &FleetOptions::single(),
        );
        assert!(err.is_err());
    }
}
