//! Aggregated run results.
//!
//! Aggregation is where raw counters turn into the numbers the paper's
//! claims are checked against, so this module denies truncating casts
//! outright (see the workspace lint policy in `DESIGN.md`).
#![deny(clippy::cast_possible_truncation)]

use serde::{Deserialize, Serialize};

use p2pnet::TransportCounters;
use reuse::CacheStats;
use simcore::stats::Summary;
use simcore::units::{Millijoules, Millis};
use simcore::{Cdf, SimTime};

use crate::device::{FrameOutcome, ResolutionPath};

/// Everything an experiment reads off one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Variant name.
    pub variant: String,
    /// Devices simulated.
    pub devices: usize,
    /// Total frames processed across devices.
    pub frames: usize,
    /// Per-frame latency summary, milliseconds.
    pub latency_ms: Summary,
    /// Fraction of frames whose emitted label matched the ground truth.
    pub accuracy: f64,
    /// Mean per-frame energy.
    #[serde(rename = "mean_energy_mj")]
    pub mean_energy: Millijoules,
    /// Frames answered by each path: `[imu, local, peer, inference]`.
    pub path_counts: [u64; 4],
    /// Mean per-frame latency of each path, same order as
    /// `path_counts` (zero for paths that served no frames).
    #[serde(rename = "path_mean_latency_ms")]
    pub path_mean_latency: [Millis; 4],
    /// Full per-path latency distributions (ms), same order as
    /// `path_counts` (zero-count summaries for paths that served
    /// nothing).
    pub path_latency_summary: [Summary; 4],
    /// Full per-path energy distributions (mJ/frame), same order as
    /// `path_counts`.
    pub path_energy_summary: [Summary; 4],
    /// Merged cache statistics across devices.
    pub cache: CacheStats,
    /// Merged network counters across devices.
    pub network: TransportCounters,
    /// Raw per-frame latencies (ms), for CDF figures.
    pub latencies_ms: Vec<f64>,
    /// Span of simulated time the frames cover, seconds (first to last
    /// frame).
    pub stream_seconds: f64,
    /// Merged fault/resilience counters across devices. All-zero (and
    /// omitted from JSON) unless the scenario injected faults or the
    /// pipeline armed resilience machinery.
    #[serde(default, skip_serializing_if = "p2pnet::ResilienceCounters::is_idle")]
    pub faults: p2pnet::ResilienceCounters,
    /// Merged edge-tier counters: the shared server's books plus every
    /// device's query-side tallies. All-zero (and omitted from JSON)
    /// unless the pipeline configured an edge tier.
    #[serde(default, skip_serializing_if = "edge::EdgeCounters::is_idle")]
    pub edge: edge::EdgeCounters,
}

impl RunReport {
    /// Builds a report from per-frame outcomes plus per-device stats.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty (a run must process at least one
    /// frame).
    pub fn from_outcomes(
        scenario: &str,
        variant: &str,
        devices: usize,
        outcomes: &[FrameOutcome],
        cache: CacheStats,
        network: TransportCounters,
    ) -> RunReport {
        assert!(!outcomes.is_empty(), "from_outcomes: no frames processed");
        let latencies_ms: Vec<f64> = outcomes.iter().map(|o| o.latency.as_millis_f64()).collect();
        let correct = outcomes.iter().filter(|o| o.is_correct()).count();
        let mut path_counts = [0u64; 4];
        let mut path_latencies: [Vec<f64>; 4] = Default::default();
        let mut path_energies: [Vec<f64>; 4] = Default::default();
        for o in outcomes {
            *path_slot_mut(&mut path_counts, o.path) += 1;
            path_slot_mut(&mut path_latencies, o.path).push(o.latency.as_millis_f64());
            path_slot_mut(&mut path_energies, o.path).push(o.energy.value());
        }
        let path_latency_summary = ResolutionPath::all()
            .map(|p| Summary::from_samples(path_slot(&path_latencies, p).as_slice()));
        let path_energy_summary = ResolutionPath::all()
            .map(|p| Summary::from_samples(path_slot(&path_energies, p).as_slice()));
        let path_mean_latency = path_latency_summary.map(|s| Millis::new(s.mean));
        let mean_energy =
            outcomes.iter().map(|o| o.energy).sum::<Millijoules>() / outcomes.len() as f64;
        let first = outcomes.iter().map(|o| o.at).min().unwrap_or(SimTime::ZERO);
        let last = outcomes.iter().map(|o| o.at).max().unwrap_or(SimTime::ZERO);
        let stream_seconds = last.saturating_duration_since(first).as_secs_f64();
        RunReport {
            scenario: scenario.to_owned(),
            variant: variant.to_owned(),
            devices,
            frames: outcomes.len(),
            latency_ms: Summary::from_samples(&latencies_ms),
            accuracy: correct as f64 / outcomes.len() as f64,
            mean_energy,
            path_counts,
            path_mean_latency,
            path_latency_summary,
            path_energy_summary,
            cache,
            network,
            latencies_ms,
            stream_seconds,
            faults: p2pnet::ResilienceCounters::default(),
            edge: edge::EdgeCounters::default(),
        }
    }

    /// Fraction of frames answered *without* running the DNN.
    pub fn reuse_rate(&self) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        1.0 - self.path_fraction(ResolutionPath::FullInference)
    }

    /// The fraction of frames answered by `path`.
    pub fn path_fraction(&self, path: ResolutionPath) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        *path_slot(&self.path_counts, path) as f64 / self.frames as f64
    }

    /// The mean latency of frames answered by `path` (zero if that path
    /// served nothing).
    pub fn path_mean_latency(&self, path: ResolutionPath) -> Millis {
        *path_slot(&self.path_mean_latency, path)
    }

    /// The full latency distribution (ms) of frames answered by `path`.
    pub fn path_latency_stats(&self, path: ResolutionPath) -> &Summary {
        path_slot(&self.path_latency_summary, path)
    }

    /// The full energy distribution (mJ/frame) of frames answered by
    /// `path`.
    pub fn path_energy_stats(&self, path: ResolutionPath) -> &Summary {
        path_slot(&self.path_energy_summary, path)
    }

    /// The cache-miss breakdown by reason, derived from the merged cache
    /// statistics (the single registry the per-frame traces also feed).
    pub fn miss_breakdown(&self) -> [(&'static str, u64); 4] {
        [
            ("empty-index", self.cache.miss_empty),
            ("too-far", self.cache.miss_too_far),
            ("not-homogeneous", self.cache.miss_not_homogeneous),
            ("insufficient-support", self.cache.miss_insufficient_support),
        ]
    }

    /// The whole report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Writes the report as `<scenario>-<variant>.json` under `dir`
    /// (created if missing), returning the written path.
    pub fn write_json(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}-{}.json", self.scenario, self.variant));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Mean-latency reduction relative to a baseline run:
    /// `1 − mean/baseline_mean`. Positive means this run is faster.
    pub fn latency_reduction_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.latency_ms.mean <= 0.0 {
            return 0.0;
        }
        1.0 - self.latency_ms.mean / baseline.latency_ms.mean
    }

    /// Accuracy delta relative to a baseline run (negative = loss).
    pub fn accuracy_delta_vs(&self, baseline: &RunReport) -> f64 {
        self.accuracy - baseline.accuracy
    }

    /// The latency CDF of this run.
    pub fn latency_cdf(&self) -> Cdf {
        Cdf::from_samples(&self.latencies_ms)
    }

    /// The recognition workload's average per-device power draw,
    /// milliwatts (mJ per frame × frames per second per device). Returns
    /// 0.0 for streams shorter than one frame interval.
    pub fn device_power_mw(&self) -> f64 {
        if self.stream_seconds <= 0.0 || self.devices == 0 {
            return 0.0;
        }
        let frames_per_device = self.frames as f64 / self.devices as f64;
        (self.mean_energy * (frames_per_device / self.stream_seconds)).value()
    }

    /// Projected battery percentage consumed per hour of continuous
    /// streaming, for a battery of `capacity_mwh` milliwatt-hours (a
    /// typical 4000 mAh / 3.85 V phone battery is ≈ 15 400 mWh).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_mwh` is not positive.
    pub fn battery_pct_per_hour(&self, capacity_mwh: f64) -> f64 {
        assert!(
            capacity_mwh > 0.0,
            "battery_pct_per_hour: capacity must be positive"
        );
        self.device_power_mw() / capacity_mwh * 100.0
    }
}

/// The report-array slot of each resolution path — the arrays hold
/// `[imu, local, peer, inference]`, the same order as
/// [`ResolutionPath::all`]. Array destructuring plus a total match means
/// report lookups can neither panic at run time nor silently skip a
/// future path variant (adding one fails to compile instead).
fn path_slot<T>(slots: &[T; 4], path: ResolutionPath) -> &T {
    let [imu, local, peer, infer] = slots;
    match path {
        ResolutionPath::ImuReuse => imu,
        ResolutionPath::LocalCache => local,
        ResolutionPath::PeerCache => peer,
        ResolutionPath::FullInference => infer,
    }
}

/// Mutable variant of [`path_slot`], for accumulation.
fn path_slot_mut<T>(slots: &mut [T; 4], path: ResolutionPath) -> &mut T {
    let [imu, local, peer, infer] = slots;
    match path {
        ResolutionPath::ImuReuse => imu,
        ResolutionPath::LocalCache => local,
        ResolutionPath::PeerCache => peer,
        ResolutionPath::FullInference => infer,
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "[{} / {}] {} frames on {} device(s)",
            self.scenario, self.variant, self.frames, self.devices
        )?;
        writeln!(
            f,
            "  latency: mean {:.2} ms, p50 {:.2}, p95 {:.2}, p99 {:.2}",
            self.latency_ms.mean, self.latency_ms.p50, self.latency_ms.p95, self.latency_ms.p99
        )?;
        writeln!(
            f,
            "  accuracy {:.1}%  energy {:.1} mJ/frame  reuse {:.1}%",
            self.accuracy * 100.0,
            self.mean_energy.value(),
            self.reuse_rate() * 100.0
        )?;
        writeln!(
            f,
            "  paths: imu {:.1}% local {:.1}% peer {:.1}% dnn {:.1}%",
            self.path_fraction(ResolutionPath::ImuReuse) * 100.0,
            self.path_fraction(ResolutionPath::LocalCache) * 100.0,
            self.path_fraction(ResolutionPath::PeerCache) * 100.0,
            self.path_fraction(ResolutionPath::FullInference) * 100.0
        )?;
        let [(_, empty), (_, far), (_, hetero), (_, support)] = self.miss_breakdown();
        writeln!(
            f,
            "  misses: empty {empty} far {far} hetero {hetero} support {support}"
        )?;
        if !self.faults.is_idle() {
            writeln!(
                f,
                "  faults: dark-frames {} crashes {} poisoned {} retries {} \
                 abandoned {} quarantines {} fallbacks {}",
                self.faults.outage_frames,
                self.faults.crashes,
                self.faults.poisoned_ads,
                self.faults.ad_retries,
                self.faults.ad_abandoned,
                self.faults.quarantines,
                self.faults.peer_fallbacks
            )?;
        }
        if !self.edge.is_idle() {
            writeln!(f, "  edge: {}", self.edge)?;
        }
        Ok(())
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use scene::ClassId;
    use simcore::SimDuration;

    fn outcome(path: ResolutionPath, latency_ms: u64, correct: bool) -> FrameOutcome {
        FrameOutcome {
            at: SimTime::ZERO,
            label: ClassId(if correct { 1 } else { 2 }),
            truth: ClassId(1),
            latency: SimDuration::from_millis(latency_ms),
            energy: Millijoules::new(10.0),
            path,
        }
    }

    fn report(outcomes: &[FrameOutcome]) -> RunReport {
        RunReport::from_outcomes(
            "test",
            "full",
            1,
            outcomes,
            CacheStats::default(),
            TransportCounters::default(),
        )
    }

    #[test]
    fn aggregates_paths_latency_accuracy() {
        let outcomes = vec![
            outcome(ResolutionPath::FullInference, 80, true),
            outcome(ResolutionPath::LocalCache, 4, true),
            outcome(ResolutionPath::ImuReuse, 0, true),
            outcome(ResolutionPath::PeerCache, 10, false),
        ];
        let r = report(&outcomes);
        assert_eq!(r.frames, 4);
        assert_eq!(r.path_counts, [1, 1, 1, 1]);
        assert!((r.accuracy - 0.75).abs() < 1e-12);
        assert!((r.latency_ms.mean - 23.5).abs() < 1e-9);
        assert!((r.reuse_rate() - 0.75).abs() < 1e-12);
        assert!((r.path_fraction(ResolutionPath::ImuReuse) - 0.25).abs() < 1e-12);
        assert!((r.mean_energy.value() - 10.0).abs() < 1e-12);
        assert!((r.path_mean_latency(ResolutionPath::FullInference).value() - 80.0).abs() < 1e-9);
        assert!((r.path_mean_latency(ResolutionPath::LocalCache).value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn latency_reduction_compares_means() {
        let slow = report(&[outcome(ResolutionPath::FullInference, 100, true)]);
        let fast = report(&[outcome(ResolutionPath::LocalCache, 6, true)]);
        assert!((fast.latency_reduction_vs(&slow) - 0.94).abs() < 1e-9);
        assert!((slow.latency_reduction_vs(&fast) + (100.0 / 6.0 - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn accuracy_delta() {
        let base = report(&[
            outcome(ResolutionPath::FullInference, 100, true),
            outcome(ResolutionPath::FullInference, 100, true),
        ]);
        let worse = report(&[
            outcome(ResolutionPath::LocalCache, 4, true),
            outcome(ResolutionPath::LocalCache, 4, false),
        ]);
        assert!((worse.accuracy_delta_vs(&base) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_exposed() {
        let r = report(&[
            outcome(ResolutionPath::LocalCache, 2, true),
            outcome(ResolutionPath::FullInference, 100, true),
        ]);
        let cdf = r.latency_cdf();
        assert_eq!(cdf.len(), 2);
        assert!((cdf.fraction_at_or_below(50.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn battery_projection_from_energy_rate() {
        // Two frames 1 s apart at 100 mJ each on one device: 100 mW draw.
        let outcomes = vec![
            FrameOutcome {
                at: SimTime::ZERO,
                energy: Millijoules::new(100.0),
                ..outcome(ResolutionPath::FullInference, 80, true)
            },
            FrameOutcome {
                at: SimTime::from_secs(1),
                energy: Millijoules::new(100.0),
                ..outcome(ResolutionPath::FullInference, 80, true)
            },
        ];
        let r = report(&outcomes);
        assert!((r.stream_seconds - 1.0).abs() < 1e-12);
        assert!((r.device_power_mw() - 200.0).abs() < 1e-9);
        // 200 mW on a 15 400 mWh battery ≈ 1.3%/hour.
        let pct = r.battery_pct_per_hour(15_400.0);
        assert!((pct - 200.0 / 154.0).abs() < 1e-9);
    }

    #[test]
    fn zero_span_stream_reports_zero_power() {
        let r = report(&[outcome(ResolutionPath::ImuReuse, 0, true)]);
        assert_eq!(r.device_power_mw(), 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let r = report(&[outcome(ResolutionPath::ImuReuse, 0, true)]);
        let text = r.to_string();
        assert!(text.contains("accuracy 100.0%"));
        assert!(text.contains("reuse 100.0%"));
    }

    #[test]
    #[should_panic(expected = "no frames")]
    fn empty_outcomes_rejected() {
        report(&[]);
    }

    #[test]
    fn per_path_summaries_cover_only_their_frames() {
        let outcomes = vec![
            outcome(ResolutionPath::FullInference, 80, true),
            outcome(ResolutionPath::FullInference, 120, true),
            outcome(ResolutionPath::LocalCache, 4, true),
        ];
        let r = report(&outcomes);
        let dnn = r.path_latency_stats(ResolutionPath::FullInference);
        assert_eq!(dnn.count, 2);
        assert!((dnn.mean - 100.0).abs() < 1e-9);
        assert!((dnn.min - 80.0).abs() < 1e-9);
        assert!((dnn.max - 120.0).abs() < 1e-9);
        let local = r.path_latency_stats(ResolutionPath::LocalCache);
        assert_eq!(local.count, 1);
        assert!((local.mean - 4.0).abs() < 1e-9);
        // Paths that never resolved a frame report an empty summary.
        let peer = r.path_latency_stats(ResolutionPath::PeerCache);
        assert_eq!(peer.count, 0);
        assert_eq!(peer.mean, 0.0);
        let energy = r.path_energy_stats(ResolutionPath::FullInference);
        assert_eq!(energy.count, 2);
        assert!((energy.mean - 10.0).abs() < 1e-12);
    }

    #[test]
    fn miss_breakdown_mirrors_cache_stats() {
        let cache = CacheStats {
            lookups: 5,
            hits: 1,
            miss_too_far: 2,
            miss_empty: 1,
            miss_insufficient_support: 1,
            ..CacheStats::default()
        };
        let r = RunReport::from_outcomes(
            "test",
            "full",
            1,
            &[outcome(ResolutionPath::LocalCache, 4, true)],
            cache,
            TransportCounters::default(),
        );
        let breakdown = r.miss_breakdown();
        assert_eq!(breakdown[0], ("empty-index", 1));
        assert_eq!(breakdown[1], ("too-far", 2));
        assert_eq!(breakdown[2], ("not-homogeneous", 0));
        assert_eq!(breakdown[3], ("insufficient-support", 1));
        let total: u64 = breakdown.iter().map(|(_, n)| n).sum();
        assert_eq!(total, cache.misses());
    }

    #[test]
    fn json_round_trips() {
        let r = report(&[
            outcome(ResolutionPath::LocalCache, 4, true),
            outcome(ResolutionPath::FullInference, 80, true),
        ]);
        let json = r.to_json();
        assert!(json.contains("\"path_latency_summary\""));
        let back: RunReport = serde_json::from_str(&json).expect("json parses");
        assert_eq!(back.frames, r.frames);
        assert_eq!(back.path_counts, r.path_counts);
        assert!((back.latency_ms.mean - r.latency_ms.mean).abs() < 1e-9);
        assert_eq!(
            back.path_latency_stats(ResolutionPath::LocalCache).count,
            r.path_latency_stats(ResolutionPath::LocalCache).count
        );
    }

    #[test]
    fn idle_fault_counters_stay_out_of_json() {
        let r = report(&[outcome(ResolutionPath::ImuReuse, 0, true)]);
        assert!(r.faults.is_idle());
        assert!(
            !r.to_json().contains("\"faults\""),
            "idle counters must not appear in serialized reports"
        );
        assert!(!r.to_string().contains("faults:"));
    }

    #[test]
    fn fault_counters_round_trip_and_display() {
        let mut r = report(&[outcome(ResolutionPath::ImuReuse, 0, true)]);
        r.faults.record_outage_frame();
        r.faults.record_crash();
        r.faults.record_ad_retries(3);
        let json = r.to_json();
        assert!(json.contains("\"faults\""));
        let back: RunReport = serde_json::from_str(&json).expect("json parses");
        assert_eq!(back.faults.outage_frames, 1);
        assert_eq!(back.faults.crashes, 1);
        assert_eq!(back.faults.ad_retries, 3);
        let text = r.to_string();
        assert!(text.contains("faults:"), "{text}");
        assert!(text.contains("dark-frames 1"), "{text}");
    }

    #[test]
    fn idle_edge_counters_stay_out_of_json() {
        let r = report(&[outcome(ResolutionPath::ImuReuse, 0, true)]);
        assert!(r.edge.is_idle());
        assert!(
            !r.to_json().contains("\"edge\""),
            "idle edge counters must not appear in serialized reports"
        );
        assert!(!r.to_string().contains("edge:"));
    }

    #[test]
    fn edge_counters_round_trip_and_display() {
        let mut r = report(&[outcome(ResolutionPath::ImuReuse, 0, true)]);
        r.edge.record_batch();
        r.edge.record_queries_sent(2);
        r.edge.record_lookup(true);
        r.edge.record_hit_adopted();
        assert!(r.edge.reconciles());
        let json = r.to_json();
        assert!(json.contains("\"edge\""));
        let back: RunReport = serde_json::from_str(&json).expect("json parses");
        assert_eq!(back.edge, r.edge);
        assert!(r.to_string().contains("edge:"), "{r}");
    }

    #[test]
    fn write_json_names_file_after_scenario_and_variant() {
        let r = report(&[outcome(ResolutionPath::ImuReuse, 0, true)]);
        let dir = std::env::temp_dir().join("approxcache-report-test");
        let path = r.write_json(&dir).expect("write succeeds");
        assert!(path.ends_with("test-full.json"));
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(text.contains("\"frames\": 1"));
        std::fs::remove_file(&path).ok();
    }
}
