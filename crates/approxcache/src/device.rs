//! One smartphone running the reuse pipeline.

use serde::{Deserialize, Serialize};

use ann::MissReason;
use dnnsim::{CascadeModel, DnnModel, EnergyModel, InferenceBackend, Radio};
use features::{FeatureVector, RandomProjection};
use imu::{GateDecision, ImuSample, MotionEstimator};
use p2pnet::{P2pMessage, RemoteHit, ResilienceConfig, ResilienceCounters, Transport, WireEntry};
use reuse::{EntrySource, LookupResult, SharedCache};
use scene::{ClassId, Frame};
use simcore::units::Millijoules;
use simcore::{
    FrameTrace, SimDuration, SimRng, SimTime, TraceGate, TraceLookup, TraceMissReason, TracePath,
    TracePeer, TraceRing,
};
use std::sync::Arc;

use crate::baseline::{ExactCache, SystemVariant};
use crate::config::PipelineConfig;

/// Seed of the scene-change sketch projection. Deliberately a constant
/// distinct from any key-projection seed: the sketch is a private
/// change detector, not a shared key space.
const SCENE_SKETCH_SEED: u64 = 0x5ce_17e;

/// Identifier of a device within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device-{}", self.0)
    }
}

/// How a frame's label was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResolutionPath {
    /// The IMU fast path echoed the previous result.
    ImuReuse,
    /// The local approximate cache answered.
    LocalCache,
    /// A nearby device's cache answered.
    PeerCache,
    /// The full DNN ran.
    FullInference,
}

impl ResolutionPath {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            ResolutionPath::ImuReuse => "imu-reuse",
            ResolutionPath::LocalCache => "local-cache",
            ResolutionPath::PeerCache => "peer-cache",
            ResolutionPath::FullInference => "inference",
        }
    }

    /// All paths, cheapest first.
    pub fn all() -> [ResolutionPath; 4] {
        [
            ResolutionPath::ImuReuse,
            ResolutionPath::LocalCache,
            ResolutionPath::PeerCache,
            ResolutionPath::FullInference,
        ]
    }
}

impl std::fmt::Display for ResolutionPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything recorded about one processed frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameOutcome {
    /// When the frame arrived.
    pub at: SimTime,
    /// The label the pipeline emitted.
    pub label: ClassId,
    /// The ground-truth label (never read by the pipeline itself).
    pub truth: ClassId,
    /// End-to-end frame latency.
    pub latency: SimDuration,
    /// Energy charged to this frame.
    #[serde(rename = "energy_mj")]
    pub energy: Millijoules,
    /// Which tier answered.
    pub path: ResolutionPath,
}

impl FrameOutcome {
    /// Whether the emitted label matches the ground truth.
    pub fn is_correct(&self) -> bool {
        self.label == self.truth
    }
}

/// The state one device carries across frames.
///
/// # Example
///
/// Drive a device frame by frame (the simulator in [`crate::sim`] does
/// exactly this, plus peers and advertisements):
///
/// ```
/// use approxcache::{DeviceBuilder, DeviceId, PipelineConfig, SystemVariant};
/// use scene::{ClassUniverse, FrameRenderer, SceneConfig, World};
/// use simcore::{SimRng, SimTime};
///
/// let mut rng = SimRng::seed(1);
/// let scene = SceneConfig::default();
/// let universe = ClassUniverse::generate(&scene, &mut rng);
/// let world = World::generate(&universe, &scene, &mut rng);
/// let renderer = FrameRenderer::new(&scene);
/// let config = PipelineConfig::new().with_peer(None);
/// let mut device = DeviceBuilder::new(DeviceId(0), &config, &universe, scene.descriptor_dim, 1)
///     .variant(SystemVariant::Full)
///     .build();
///
/// let frame = renderer.render(&world, &imu::Pose::default(), SimTime::ZERO, &mut rng);
/// let outcome = device.process_frame(&frame, &[], &[], SimTime::ZERO);
/// assert_eq!(outcome.path, approxcache::ResolutionPath::FullInference);
/// ```
pub struct Device {
    id: DeviceId,
    variant: SystemVariant,
    projection: Arc<RandomProjection>,
    cache: SharedCache<ClassId>,
    exact_cache: ExactCache,
    dnn: Box<dyn InferenceBackend>,
    energy: EnergyModel,
    gate: imu::ImuGate,
    estimator: MotionEstimator,
    costs: crate::config::CostModel,
    peer: Option<crate::config::PeerConfig>,
    expiry: Option<crate::config::CacheExpiry>,
    last_expiry_sweep: SimTime,
    adaptive: Option<crate::adaptive::AdaptiveController>,
    /// Activity classifier for activity-adaptive gating (None when the
    /// feature is off).
    activity: Option<imu::ActivityClassifier>,
    transport: Transport,
    /// Last emitted label plus the instant it was last *validated* (by a
    /// cache hit, a peer answer or an inference — not by the fast path
    /// itself, which would let one result echo forever).
    last_result: Option<(ClassId, SimTime)>,
    /// Accumulated motion score since the last validated result: the
    /// quantity the fast path thresholds (a device that turned and stopped
    /// is instantaneously still but has a stale previous result).
    motion_since_validation: f64,
    next_query_id: u64,
    rng: SimRng,
    outcomes: Vec<FrameOutcome>,
    /// Entries queued for advertisement after the current frame.
    pending_advertisement: Option<WireEntry>,
    /// Scene-change guard parameters (None when the check is off or the
    /// variant has no fast path to guard).
    scene_check: Option<crate::config::SceneCheck>,
    /// The sketch projection backing the scene-change check.
    scene_sketch: Option<RandomProjection>,
    /// Sketch taken when the previous result was last validated.
    validated_sketch: Option<FeatureVector>,
    /// Sketch of the frame currently being processed.
    frame_sketch: Option<FeatureVector>,
    /// Per-frame decision traces (disabled ring unless configured).
    trace: TraceRing,
    /// Resilience machinery configuration (all members `None` by default,
    /// in which case the device behaves exactly like the pre-resilience
    /// pipeline).
    resilience: ResilienceConfig,
    /// Whether the simulation marked this device's radio inside an
    /// injected outage for the current frame.
    radio_dark: bool,
    /// Consecutive peer-tier frames that produced no reply (every
    /// exchange timed out, or the radio was dark while peers were
    /// wanted). Drives the dark-peer fallback.
    dark_streak: u32,
    /// While set, the dark-peer fallback suppresses the peer tier
    /// entirely — graceful degradation without paying peer-wait latency.
    fallback_until: Option<SimTime>,
    /// Fault events seen and resilience actions taken.
    counters: ResilienceCounters,
    /// Peer query outcomes of the current frame, as `(slice index,
    /// delivered)` pairs; drained by the simulation for circuit-breaker
    /// feedback. Only recorded when a breaker is configured.
    peer_outcomes: Vec<(usize, bool)>,
    /// Edge-tier state (None — the default — keeps the device
    /// byte-identical to the edge-free pipeline).
    edge: Option<EdgeState>,
}

/// Per-device edge-tier state: the shared cache handle, the WAN
/// transport to reach it, and the device-side counters the simulation
/// reconciles against the server's.
struct EdgeState {
    config: crate::config::EdgeConfig,
    cache: edge::EdgeCache,
    transport: Transport,
    counters: edge::EdgeCounters,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("id", &self.id)
            .field("variant", &self.variant)
            .field("frames", &self.outcomes.len())
            .finish()
    }
}

/// Typed constructor for [`Device`].
///
/// The old six-positional-argument constructor made call sites
/// unreadable (`Device::new(id, variant, &config, &universe, 256, 99)` —
/// which number is the seed?). The builder names every required input up
/// front and keeps the optional knobs chainable:
///
/// ```
/// # use approxcache::{DeviceBuilder, DeviceId, PipelineConfig, SystemVariant};
/// # use simcore::SimRng;
/// # let mut rng = SimRng::seed(1);
/// # let universe = scene::ClassUniverse::generate(&scene::SceneConfig::default(), &mut rng);
/// let config = PipelineConfig::new();
/// let device = DeviceBuilder::new(DeviceId(0), &config, &universe, 256, 99)
///     .variant(SystemVariant::LocalApprox)
///     .device_class(dnnsim::DeviceClass::Budget)
///     .build();
/// assert_eq!(device.variant(), SystemVariant::LocalApprox);
/// ```
#[derive(Debug)]
pub struct DeviceBuilder<'a> {
    id: DeviceId,
    config: &'a PipelineConfig,
    universe: &'a scene::ClassUniverse,
    descriptor_dim: usize,
    seed: u64,
    variant: SystemVariant,
    device_class: Option<dnnsim::DeviceClass>,
    edge_cache: Option<edge::EdgeCache>,
}

impl<'a> DeviceBuilder<'a> {
    /// Starts a builder from the inputs every device needs: its identity,
    /// the pipeline configuration, the label universe the DNN classifies
    /// over, the raw frame-descriptor dimension the shared projection
    /// compresses, and the simulation seed. The variant defaults to
    /// [`SystemVariant::Full`].
    pub fn new(
        id: DeviceId,
        config: &'a PipelineConfig,
        universe: &'a scene::ClassUniverse,
        descriptor_dim: usize,
        seed: u64,
    ) -> DeviceBuilder<'a> {
        DeviceBuilder {
            id,
            config,
            universe,
            descriptor_dim,
            seed,
            variant: SystemVariant::Full,
            device_class: None,
            edge_cache: None,
        }
    }

    /// Selects the system variant this device runs (default `Full`).
    pub fn variant(mut self, variant: SystemVariant) -> DeviceBuilder<'a> {
        self.variant = variant;
        self
    }

    /// Overrides the phone class for this one device (heterogeneous
    /// fleets), leaving the shared configuration untouched.
    pub fn device_class(mut self, class: dnnsim::DeviceClass) -> DeviceBuilder<'a> {
        self.device_class = Some(class);
        self
    }

    /// Injects the fleet-shared edge cache handle. The simulation wires
    /// one [`edge::EdgeCache`] into every device so they all talk to the
    /// same server; a standalone device with an edge config but no
    /// injected handle gets a private cache instead. Ignored unless the
    /// configuration enables the edge tier.
    pub fn edge_cache(mut self, cache: edge::EdgeCache) -> DeviceBuilder<'a> {
        self.edge_cache = Some(cache);
        self
    }

    /// Builds the device.
    pub fn build(self) -> Device {
        let variant = self.variant;
        let mut config = self.config.clone();
        if let Some(class) = self.device_class {
            config.device_class = class;
        }
        let effective = variant.apply(&config);
        let projection = Arc::new(effective.build_projection(self.descriptor_dim));
        // The device's stream is derived from the sim seed exactly once
        // (rule S: one derivation per sibling label); the admission
        // sketch splits a child off it so fleets stay deterministic yet
        // devices don't share sketch collisions.
        let device_rng = SimRng::seed(self.seed).split_index("device", self.id.0 as u64);
        let sketch_seed = device_rng.split("admission-sketch").seed_value();
        let mut concurrency = reuse::ConcurrentConfig::new(effective.cache.clone())
            .with_shards(effective.cache_shards)
            .with_sketch_seed(sketch_seed);
        if let Some(frequency) = effective.frequency_admission {
            concurrency = concurrency.with_frequency(frequency);
        }
        let cache = SharedCache::with_concurrency(concurrency);
        if effective.cost_aware_eviction {
            cache.set_weighter(Some(Arc::new(reuse::RecomputeCostWeighter::new(
                effective.model.base_latency.to_duration(),
            ))));
        }
        let dnn: Box<dyn InferenceBackend> = match &effective.cascade_little {
            None => Box::new(DnnModel::new(
                effective.model.clone(),
                effective.device_class,
                self.universe,
            )),
            Some((little, threshold)) => Box::new(CascadeModel::new(
                little.clone(),
                effective.model.clone(),
                *threshold,
                effective.device_class,
                self.universe,
            )),
        };
        let energy = EnergyModel::new(effective.device_class);
        let link = effective
            .peer
            .as_ref()
            .map_or_else(p2pnet::LinkSpec::ideal, |p| p.link);
        // The guard only matters where a fast path exists to guard.
        let scene_check = effective.scene_check.filter(|_| variant.imu_enabled());
        let scene_sketch = scene_check
            .map(|sc| RandomProjection::new(self.descriptor_dim, sc.sketch_dim, SCENE_SKETCH_SEED));
        let trace = effective
            .trace_capacity
            .map_or_else(TraceRing::disabled, TraceRing::new);
        let resilience = effective
            .peer
            .as_ref()
            .and_then(|p| p.resilience)
            .unwrap_or_default();
        // The edge tier speaks the approximate key space: exact-match
        // and cache-less variants never construct it. An invalid edge
        // config degrades to "edge off" instead of panicking mid-build
        // (the simulation validates up front and reports a typed error).
        let injected_edge_cache = self.edge_cache;
        let edge = effective
            .edge
            .clone()
            .filter(|_| variant.local_cache_enabled() && !variant.exact_match_only())
            .and_then(|cfg| {
                cfg.link.validate().ok()?;
                let cache = match injected_edge_cache {
                    Some(handle) => handle,
                    None => edge::EdgeCache::new(edge::EdgeCacheConfig {
                        capacity: cfg.capacity,
                        distance_threshold: effective.cache.aknn.distance_threshold,
                        queue_limit: cfg.queue_limit,
                    })
                    .ok()?,
                };
                Some(EdgeState {
                    transport: Transport::new(cfg.link),
                    cache,
                    counters: edge::EdgeCounters::default(),
                    config: cfg,
                })
            });
        Device {
            id: self.id,
            variant,
            projection,
            cache,
            exact_cache: ExactCache::new(effective.key_dim, effective.projection_seed),
            dnn,
            energy,
            gate: effective.gate,
            estimator: MotionEstimator::default(),
            costs: effective.costs,
            peer: effective.peer.clone(),
            expiry: effective.expiry,
            last_expiry_sweep: SimTime::ZERO,
            adaptive: effective
                .adaptive
                .map(crate::adaptive::AdaptiveController::new),
            activity: effective
                .activity_adaptive_gate
                .then(imu::ActivityClassifier::default),
            transport: Transport::new(link),
            last_result: None,
            motion_since_validation: 0.0,
            next_query_id: 0,
            rng: device_rng,
            outcomes: Vec::new(),
            pending_advertisement: None,
            scene_check,
            scene_sketch,
            validated_sketch: None,
            frame_sketch: None,
            trace,
            resilience,
            radio_dark: false,
            dark_streak: 0,
            fallback_until: None,
            counters: ResilienceCounters::default(),
            peer_outcomes: Vec::new(),
            edge,
        }
    }
}

impl Device {
    /// Builds a device from a pipeline configuration.
    ///
    /// `universe` defines the label space the DNN classifies over;
    /// `descriptor_dim` is the raw frame-descriptor dimension the shared
    /// projection compresses.
    #[deprecated(note = "use `DeviceBuilder::new(...).variant(...).build()`")]
    pub fn new(
        id: DeviceId,
        variant: SystemVariant,
        config: &PipelineConfig,
        universe: &scene::ClassUniverse,
        descriptor_dim: usize,
        seed: u64,
    ) -> Device {
        DeviceBuilder::new(id, config, universe, descriptor_dim, seed)
            .variant(variant)
            .build()
    }

    /// This device's id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The variant the device runs.
    pub fn variant(&self) -> SystemVariant {
        self.variant
    }

    /// The shared handle to this device's cache (what peers query).
    pub fn cache(&self) -> &SharedCache<ClassId> {
        &self.cache
    }

    /// Network counters so far.
    pub fn transport_counters(&self) -> p2pnet::TransportCounters {
        *self.transport.counters()
    }

    /// All frame outcomes so far.
    pub fn outcomes(&self) -> &[FrameOutcome] {
        &self.outcomes
    }

    /// The shared projection (peers must use an identical one).
    pub fn projection(&self) -> &RandomProjection {
        &self.projection
    }

    /// The adaptive-threshold controller state, if adaptation is enabled.
    pub fn adaptive(&self) -> Option<&crate::adaptive::AdaptiveController> {
        self.adaptive.as_ref()
    }

    /// The cache's current A-kNN distance threshold.
    pub fn current_threshold(&self) -> f64 {
        self.cache.distance_threshold()
    }

    /// Takes the advertisement queued by the last processed frame, if any.
    pub fn take_advertisement(&mut self) -> Option<WireEntry> {
        self.pending_advertisement.take()
    }

    /// The per-frame decision trace ring (empty unless
    /// [`PipelineConfig::trace_capacity`](crate::config::PipelineConfig::trace_capacity)
    /// enabled it).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Fault events seen and resilience actions taken so far.
    pub fn resilience_counters(&self) -> &ResilienceCounters {
        &self.counters
    }

    /// Device-side edge-tier counters (queries sent, timeouts, hits
    /// adopted); `None` when the edge tier is off for this device.
    pub fn edge_counters(&self) -> Option<&edge::EdgeCounters> {
        self.edge.as_ref().map(|e| &e.counters)
    }

    /// The edge cache handle this device queries, if any.
    pub fn edge_cache(&self) -> Option<&edge::EdgeCache> {
        self.edge.as_ref().map(|e| &e.cache)
    }

    /// Marks the radio as inside (or out of) an injected outage. While
    /// dark, the device records outage frames and never queries peers,
    /// whatever the caller passes as `peers`.
    pub fn set_radio_dark(&mut self, dark: bool) {
        self.radio_dark = dark;
    }

    /// Applies (or clears, with `None`) a degraded-link episode to this
    /// device's transport: latency ×`latency_factor`, loss ×`loss_factor`.
    pub fn set_link_degradation(&mut self, degradation: Option<(f64, f64)>) {
        match degradation {
            Some((latency_factor, loss_factor)) => {
                self.transport.set_degradation(latency_factor, loss_factor);
            }
            None => self.transport.clear_degradation(),
        }
    }

    /// Simulates a process crash and restart: everything held in device
    /// memory is lost — both caches, the validated last result, the
    /// pending advertisement and the fallback state. The run's accounting
    /// (outcome log, transport and resilience counters) survives, because
    /// it models the experiment's books, not the phone's RAM.
    pub fn crash(&mut self) {
        self.cache.clear();
        self.exact_cache.clear();
        self.last_result = None;
        self.motion_since_validation = 0.0;
        self.validated_sketch = None;
        self.frame_sketch = None;
        self.pending_advertisement = None;
        self.dark_streak = 0;
        self.fallback_until = None;
        self.peer_outcomes.clear();
        self.counters.record_crash();
    }

    /// Drains the peer query outcomes of the last processed frame, as
    /// `(peer slice index, delivered)` pairs — the feedback stream the
    /// simulation routes into the discovery circuit breaker. Empty unless
    /// [`ResilienceConfig::breaker`] is configured.
    pub fn take_peer_outcomes(&mut self) -> Vec<(usize, bool)> {
        std::mem::take(&mut self.peer_outcomes)
    }

    /// Processes one frame. `imu_window` holds the samples since the
    /// previous frame; `peers` are the caches of in-range devices, nearest
    /// first. Returns the recorded outcome.
    pub fn process_frame(
        &mut self,
        frame: &Frame,
        imu_window: &[ImuSample],
        peers: &[&SharedCache<ClassId>],
        now: SimTime,
    ) -> FrameOutcome {
        let mut latency = SimDuration::ZERO;
        let mut energy = Millijoules::ZERO;

        // Housekeeping: periodic age-based expiry (runs off the frame
        // path in a real app; the sweep itself is microseconds).
        if let Some(expiry) = self.expiry {
            if now.saturating_duration_since(self.last_expiry_sweep) >= expiry.interval {
                self.cache.expire_older_than(now, expiry.max_age);
                self.last_expiry_sweep = now;
            }
        }

        // Sketch for the scene-change guard: computed once per frame; the
        // cost is charged to scene_check on the fast path and rides inside
        // the feature-extraction budget everywhere else.
        self.frame_sketch = self
            .scene_sketch
            .as_ref()
            .map(|p| p.project(&frame.descriptor));

        // Per-frame trace draft (cheap scalars; only materialized into the
        // ring when tracing is enabled).
        let mut draft = TraceDraft {
            motion_score: 0.0,
            cumulative_motion: 0.0,
            gate: TraceGate::Disabled,
            scene_changed: None,
            local: TraceLookup::NotAttempted,
            peer_attempts: 0,
            peer_timeouts: 0,
            peer_bytes_before: self.transport.counters().bytes_sent,
            radio_dark: self.radio_dark,
            peer_fallback: false,
            edge_hit: false,
        };
        if self.radio_dark {
            self.counters.record_outage_frame();
        }

        // Tier 0: inertial gate.
        let mut decision = if self.variant.imu_enabled() {
            latency += self.costs.gate_check;
            energy += self.energy.compute_energy(self.costs.gate_check);
            let estimate = self.estimator.estimate(imu_window);
            self.motion_since_validation += estimate.motion_score();
            draft.motion_score = estimate.motion_score();
            // Activity-adaptive gating: swap in the preset for the
            // current activity, keeping the configured reuse-age bound.
            if let Some(classifier) = &mut self.activity {
                let preset = classifier.classify(&estimate).gate_preset();
                self.gate.still_threshold = preset.still_threshold;
                self.gate.skip_threshold = preset.skip_threshold;
            }
            let age = self
                .last_result
                .map(|(_, at)| now.saturating_duration_since(at));
            self.gate
                .decide_with_history(&estimate, self.motion_since_validation, age)
        } else {
            GateDecision::LookupLocal
        };
        draft.cumulative_motion = self.motion_since_validation;
        draft.gate = trace_gate(decision, self.variant.imu_enabled());

        // Scene-change guard: "inertially still" does not imply "scene
        // unchanged" — an occluder can walk into a stationary view. A
        // cheap sketch comparison against the last *validated* frame
        // demotes the fast path to a real lookup when the view moved.
        if decision == GateDecision::ReusePrevious {
            if let Some(check) = self.scene_check {
                latency += self.costs.scene_check;
                energy += self.energy.compute_energy(self.costs.scene_check);
                let changed = match (&self.validated_sketch, &self.frame_sketch) {
                    (Some(prev), Some(current)) => {
                        features::distance::euclidean(prev, current) > check.distance_threshold
                    }
                    _ => false,
                };
                draft.scene_changed = Some(changed);
                if changed {
                    decision = GateDecision::LookupLocal;
                }
            }
        }

        if decision == GateDecision::ReusePrevious {
            if let Some((label, _)) = self.last_result {
                let outcome = FrameOutcome {
                    at: now,
                    label,
                    truth: frame.truth,
                    latency,
                    energy,
                    path: ResolutionPath::ImuReuse,
                };
                self.finish(outcome, label, now, draft);
                return outcome;
            }
            // The gate only votes to echo after a validated result exists;
            // if that invariant ever breaks, a real lookup is the safe
            // degradation, not a panic mid-stream.
            decision = GateDecision::LookupLocal;
        }

        // Feature extraction (needed by every remaining tier).
        latency += self.costs.feature_extract;
        energy += self.energy.compute_energy(self.costs.feature_extract);
        let key = self.projection.project(&frame.descriptor);

        // Tier 1: local cache (approximate or exact depending on variant).
        if decision != GateDecision::SkipLocal {
            let (hit, lookup_trace) = self.local_lookup(&key, now);
            draft.local = lookup_trace;
            if let Some((label, cost)) = hit {
                latency += cost;
                energy += self.energy.compute_energy(cost);
                // Sampled audit: run the DNN anyway and use the
                // disagreement signal to adapt the distance threshold.
                let audit_due = self
                    .adaptive
                    .as_ref()
                    .is_some_and(|c| self.rng.chance(c.config().audit_prob));
                if audit_due {
                    let inference = self.dnn.infer(&frame.descriptor, &mut self.rng);
                    latency += inference.latency;
                    energy += inference.energy;
                    if let Some(controller) = self.adaptive.as_mut() {
                        let agreed = inference.label == label;
                        let updated = controller.on_audit(agreed, self.cache.distance_threshold());
                        self.cache.set_distance_threshold(updated);
                    }
                    // The audit's inference is authoritative for this
                    // frame (it was paid for) and refreshes the cache.
                    self.store_result(&key, inference.label, inference.confidence, now);
                    let outcome = FrameOutcome {
                        at: now,
                        label: inference.label,
                        truth: frame.truth,
                        latency,
                        energy,
                        path: ResolutionPath::FullInference,
                    };
                    self.finish(outcome, inference.label, now, draft);
                    return outcome;
                }
                let outcome = FrameOutcome {
                    at: now,
                    label,
                    truth: frame.truth,
                    latency,
                    energy,
                    path: ResolutionPath::LocalCache,
                };
                self.finish(outcome, label, now, draft);
                return outcome;
            } else {
                let cost = self.local_lookup_cost();
                latency += cost;
                energy += self.energy.compute_energy(cost);
            }
        }

        // Tier 2: peers. A dark radio cannot reach anyone; an active
        // dark-peer fallback window skips the tier outright — graceful
        // degradation to Local/Infer without paying peer-wait latency.
        let fallback_active = self.fallback_until.is_some_and(|until| now < until);
        if fallback_active
            && self.variant.peers_enabled()
            && self.peer.is_some()
            && !self.radio_dark
        {
            draft.peer_fallback = true;
            self.counters.record_peer_fallback();
        }
        if let Some(peer_config) = self.peer.clone().filter(|_| {
            self.variant.peers_enabled()
                && !peers.is_empty()
                && !self.radio_dark
                && !fallback_active
        }) {
            let radio = radio_of(&peer_config.link);
            // Peer economics: querying only makes sense while the expected
            // radio time stays well below the inference it might avoid.
            let budget = self
                .dnn
                .nominal_latency()
                .mul_f64(peer_config.query_budget_fraction.max(0.0));
            let expected_rtt = peer_config.link.base_latency * 2;
            let mut peer_latency_spent = SimDuration::ZERO;
            for (slot, peer_cache) in peers.iter().enumerate().take(peer_config.max_peers_queried) {
                if peer_latency_spent + expected_rtt > budget {
                    break;
                }
                let query = P2pMessage::Query {
                    query_id: self.next_query_id,
                    key: key.clone(),
                };
                self.next_query_id += 1;
                draft.peer_attempts += 1;
                let hit = remote_lookup(peer_cache, &key, now);
                let reply = P2pMessage::Reply { query_id: 0, hit };
                let rtt = self.transport.round_trip(
                    query.encoded_len(),
                    reply.encoded_len(),
                    &mut self.rng,
                );
                energy += self
                    .energy
                    .radio_energy(radio, query.encoded_len() + reply.encoded_len());
                if self.resilience.breaker.is_some() {
                    self.peer_outcomes.push((slot, rtt.is_some()));
                }
                match rtt {
                    None => {
                        // A lost exchange still consumed the expected
                        // air time from the budget's perspective.
                        peer_latency_spent += expected_rtt;
                        draft.peer_timeouts += 1;
                        continue; // counts as a peer miss
                    }
                    Some(rtt) => {
                        // A delivered exchange proves the peer tier is
                        // alive: clear any dark-fallback momentum.
                        self.dark_streak = 0;
                        self.fallback_until = None;
                        latency += rtt;
                        peer_latency_spent += rtt;
                        if let Some(hit) = hit {
                            let label = ClassId(hit.label);
                            // Adopt the peer's entry locally so the next
                            // frame hits without the radio.
                            self.cache.insert(
                                key.clone(),
                                label,
                                hit.confidence,
                                EntrySource::Peer,
                                now,
                            );
                            // Relay the peer-learned answer up to the
                            // edge so devices outside this neighbourhood
                            // benefit too (fire-and-forget).
                            if self.edge.as_ref().is_some_and(|e| e.config.gossip_ads) {
                                self.edge_push(
                                    edge::Frame::GossipAd {
                                        key: key.clone(),
                                        label: label.0,
                                        confidence: hit.confidence,
                                    },
                                    now,
                                );
                            }
                            let outcome = FrameOutcome {
                                at: now,
                                label,
                                truth: frame.truth,
                                latency,
                                energy,
                                path: ResolutionPath::PeerCache,
                            };
                            self.finish(outcome, label, now, draft);
                            return outcome;
                        }
                    }
                }
            }
        }

        // Dark-peer fallback bookkeeping: a frame that wanted peers but
        // got nothing back (radio dark, or every exchange timed out)
        // advances the streak; enough consecutive dark frames open the
        // fallback window. Delivered exchanges reset it (above).
        if let Some(fallback) = self.resilience.dark_fallback {
            let peers_wanted = self.variant.peers_enabled() && self.peer.is_some();
            let frame_dark = peers_wanted
                && !draft.peer_fallback
                && (self.radio_dark
                    || (draft.peer_attempts > 0 && draft.peer_timeouts == draft.peer_attempts));
            if frame_dark {
                self.dark_streak += 1;
                if self.dark_streak >= fallback.threshold {
                    self.fallback_until = Some(now + fallback.cooldown);
                    self.dark_streak = 0;
                }
            }
        }

        // Tier 2½: the shared edge cache, one WAN round-trip away. Runs
        // only when configured (default off), after peers missed —
        // closer answers are cheaper — and never while the radio is
        // dark. The same budget guard as the peer tier applies: the
        // expected round-trip must undercut the inference it replaces.
        let mut edge_adopt: Option<edge::EdgeHit> = None;
        if let Some(edge) = self.edge.as_mut().filter(|_| !self.radio_dark) {
            let budget = self
                .dnn
                .nominal_latency()
                .mul_f64(edge.config.query_budget_fraction.max(0.0));
            let expected_rtt = edge.config.link.base_latency * 2;
            if expected_rtt <= budget {
                let request = edge::BatchRequest {
                    device: self.id.0 as u64,
                    frames: vec![edge::Frame::Lookup { key: key.clone() }],
                };
                let out_bytes = request.encoded_len();
                edge.counters.record_queries_sent(1);
                // The server sees every query — losses are modelled on
                // the reply leg — and an overloaded server sheds the
                // batch instead of answering (a 503 is a handful of
                // header bytes on the wire).
                let (reply, back_bytes) = match edge.cache.apply_batch(&request, now) {
                    Ok(response) => {
                        let bytes = response.encoded_len();
                        (response.replies.into_iter().next(), bytes)
                    }
                    Err(edge::Overloaded) => (None, 64),
                };
                let rtt = edge
                    .transport
                    .round_trip(out_bytes, back_bytes, &mut self.rng);
                // The radio burned energy whether or not the answer made
                // it back.
                energy += self.energy.radio_energy(Radio::Wan, out_bytes + back_bytes);
                match rtt {
                    // Like a lost peer exchange: counts as a miss, adds
                    // no frame latency.
                    None => edge.counters.record_query_timeout(),
                    Some(rtt) => {
                        // A delivered answer — hit or miss — was waited
                        // for.
                        latency += rtt;
                        if let Some(edge::Reply::Hit(hit)) = reply {
                            edge.counters.record_hit_adopted();
                            edge_adopt = Some(hit);
                        }
                    }
                }
            }
        }
        if let Some(hit) = edge_adopt {
            let label = ClassId(hit.label);
            // Adopt the edge's entry locally so the next frame hits
            // without waking the modem.
            self.cache
                .insert(key.clone(), label, hit.confidence, EntrySource::Peer, now);
            draft.edge_hit = true;
            let outcome = FrameOutcome {
                at: now,
                label,
                truth: frame.truth,
                latency,
                energy,
                path: ResolutionPath::PeerCache,
            };
            self.finish(outcome, label, now, draft);
            return outcome;
        }

        // Tier 3: full inference.
        let inference = self.dnn.infer(&frame.descriptor, &mut self.rng);
        latency += inference.latency;
        energy += inference.energy;
        // Free adaptation evidence: a same-label entry just beyond the
        // threshold means this inference was a spurious miss.
        if let Some(controller) = &mut self.adaptive {
            if self.variant.local_cache_enabled() && !self.variant.exact_match_only() {
                if let Some((distance, label)) = self.cache.peek_nearest(&key) {
                    let updated = controller.on_near_miss(
                        distance,
                        label == inference.label,
                        self.cache.distance_threshold(),
                    );
                    self.cache.set_distance_threshold(updated);
                }
            }
        }
        self.store_result(&key, inference.label, inference.confidence, now);
        // Freshly inferred results go up to the edge so the whole fleet
        // can reuse them (fire-and-forget, nothing on the frame path).
        if self
            .edge
            .as_ref()
            .is_some_and(|e| e.config.insert_on_inference)
        {
            self.edge_push(
                edge::Frame::Insert {
                    key: key.clone(),
                    label: inference.label.0,
                    confidence: inference.confidence,
                },
                now,
            );
        }
        if self
            .peer
            .as_ref()
            .is_some_and(|p| p.advertise_on_inference && self.variant.peers_enabled())
        {
            self.pending_advertisement = Some(WireEntry {
                key: key.clone(),
                label: inference.label.0,
                confidence: inference.confidence,
            });
        }
        let outcome = FrameOutcome {
            at: now,
            label: inference.label,
            truth: frame.truth,
            latency,
            energy,
            path: ResolutionPath::FullInference,
        };
        self.finish(outcome, inference.label, now, draft);
        outcome
    }

    /// Accepts an advertisement pushed by a neighbour (already delivered
    /// by the network). Charges nothing to frame latency — reception is
    /// asynchronous — but admission control still applies.
    pub fn receive_advertisement(&mut self, entry: &WireEntry, now: SimTime) {
        if !self.variant.peers_enabled() {
            return;
        }
        self.cache.insert(
            entry.key.clone(),
            ClassId(entry.label),
            entry.confidence,
            EntrySource::Peer,
            now,
        );
    }

    /// Records the radio cost of sending one advertisement (called by the
    /// simulation when it actually transmits).
    pub fn charge_advertisement(&mut self, message: &P2pMessage) -> Option<SimDuration> {
        let radio = self.peer.as_ref().map(|p| radio_of(&p.link))?;
        let delay = match self.resilience.ad_retry {
            // Fire-and-forget: the pre-resilience behaviour, bit for bit.
            None => self.transport.send_message(message, &mut self.rng),
            Some(policy) => {
                let outcome = self
                    .transport
                    .send_with_retry(message, &policy, &mut self.rng);
                self.counters.record_ad_retries(outcome.retries);
                if outcome.delay.is_none() {
                    self.counters.record_ad_abandoned();
                }
                outcome.delay
            }
        };
        // Radio energy is charged to the device battery, not to any frame.
        let _ = self.energy.radio_energy(radio, message.encoded_len());
        delay
    }

    /// Fire-and-forget upload of one frame to the edge: samples the
    /// uplink for loss (a lost upload simply never lands), charges the
    /// radio to the battery rather than the frame, and applies the
    /// batch to the shared cache on delivery. Skipped while the radio
    /// is dark.
    fn edge_push(&mut self, frame: edge::Frame, now: SimTime) {
        if self.radio_dark {
            return;
        }
        let Some(edge) = self.edge.as_mut() else {
            return;
        };
        let request = edge::BatchRequest {
            device: self.id.0 as u64,
            frames: vec![frame],
        };
        let bytes = request.encoded_len();
        let delivered = edge.transport.send_one_way(bytes, &mut self.rng).is_some();
        let _ = self.energy.radio_energy(Radio::Wan, bytes);
        if delivered {
            // An overloaded server sheds the upload; the device neither
            // learns nor cares — it was fire-and-forget.
            let _ = edge.cache.apply_batch(&request, now);
        }
    }

    fn local_lookup(
        &mut self,
        key: &FeatureVector,
        now: SimTime,
    ) -> (Option<(ClassId, SimDuration)>, TraceLookup) {
        if !self.variant.local_cache_enabled() {
            return (None, TraceLookup::NotAttempted);
        }
        if self.variant.exact_match_only() {
            let cost = self.costs.lookup_base;
            return match self.exact_cache.lookup(key) {
                Some(label) => (Some((label, cost)), TraceLookup::Hit { distance: 0.0 }),
                None => {
                    let reason = if self.exact_cache.is_empty() {
                        TraceMissReason::EmptyIndex
                    } else {
                        // No in-threshold neighbour exists by definition:
                        // an exact cache's threshold is zero.
                        TraceMissReason::TooFar
                    };
                    (None, TraceLookup::Miss(reason))
                }
            };
        }
        let cost = self.local_lookup_cost();
        match self.cache.lookup(key, now) {
            LookupResult::Hit {
                label,
                nearest_distance,
                ..
            } => (
                Some((label, cost)),
                TraceLookup::Hit {
                    distance: nearest_distance,
                },
            ),
            LookupResult::Miss(reason) => (None, TraceLookup::Miss(trace_miss(reason))),
        }
    }

    fn local_lookup_cost(&self) -> SimDuration {
        if self.variant.exact_match_only() {
            self.costs.lookup_base
        } else {
            self.costs.lookup_cost(self.cache.len())
        }
    }

    fn store_result(&mut self, key: &FeatureVector, label: ClassId, confidence: f64, now: SimTime) {
        if !self.variant.local_cache_enabled() {
            return;
        }
        if self.variant.exact_match_only() {
            self.exact_cache.insert(key, label);
        } else {
            self.cache.insert(
                key.clone(),
                label,
                confidence,
                EntrySource::LocalInference,
                now,
            );
        }
    }

    fn finish(&mut self, outcome: FrameOutcome, label: ClassId, now: SimTime, draft: TraceDraft) {
        if outcome.path == ResolutionPath::ImuReuse {
            // Echoing does not re-validate: keep the previous validation
            // instant so max_reuse_age eventually forces a real lookup.
            let validated_at = self.last_result.map_or(now, |(_, at)| at);
            self.last_result = Some((label, validated_at));
        } else {
            self.last_result = Some((label, now));
            self.motion_since_validation = 0.0;
            // The scene reference follows validation, not echoes: the
            // guard compares against the view the label was earned on.
            if self.frame_sketch.is_some() {
                self.validated_sketch = self.frame_sketch.take();
            }
        }
        if self.trace.is_enabled() {
            // Peer bytes come from the transport's own counters — the
            // same registry the run report aggregates — so the trace can
            // never disagree with the counters.
            let bytes = self.transport.counters().bytes_sent - draft.peer_bytes_before;
            self.trace.record(FrameTrace {
                at: outcome.at,
                motion_score: draft.motion_score,
                cumulative_motion: draft.cumulative_motion,
                gate: draft.gate,
                scene_changed: draft.scene_changed,
                local: draft.local,
                peer: TracePeer {
                    attempts: draft.peer_attempts,
                    timeouts: draft.peer_timeouts,
                    bytes,
                },
                radio_dark: draft.radio_dark,
                peer_fallback: draft.peer_fallback,
                // The outcome vocabulary folds edge hits into the peer
                // path (both are remote caches); the trace keeps them
                // apart.
                path: if draft.edge_hit {
                    TracePath::EdgeHit
                } else {
                    trace_path(outcome.path)
                },
                latency: outcome.latency,
                energy: outcome.energy,
            });
        }
        self.outcomes.push(outcome);
    }
}

/// The per-frame trace fields accumulated while a frame walks the tiers.
struct TraceDraft {
    motion_score: f64,
    cumulative_motion: f64,
    gate: TraceGate,
    scene_changed: Option<bool>,
    local: TraceLookup,
    peer_attempts: u32,
    peer_timeouts: u32,
    peer_bytes_before: u64,
    radio_dark: bool,
    peer_fallback: bool,
    edge_hit: bool,
}

fn trace_gate(decision: GateDecision, imu_enabled: bool) -> TraceGate {
    if !imu_enabled {
        return TraceGate::Disabled;
    }
    match decision {
        GateDecision::ReusePrevious => TraceGate::ReusePrevious,
        GateDecision::LookupLocal => TraceGate::LookupLocal,
        GateDecision::SkipLocal => TraceGate::SkipLocal,
    }
}

fn trace_miss(reason: MissReason) -> TraceMissReason {
    match reason {
        MissReason::EmptyIndex => TraceMissReason::EmptyIndex,
        MissReason::TooFar => TraceMissReason::TooFar,
        MissReason::NotHomogeneous => TraceMissReason::NotHomogeneous,
        MissReason::InsufficientSupport => TraceMissReason::InsufficientSupport,
    }
}

/// Maps the pipeline's resolution vocabulary onto the trace substrate's.
pub fn trace_path(path: ResolutionPath) -> TracePath {
    match path {
        ResolutionPath::ImuReuse => TracePath::ImuFastPath,
        ResolutionPath::LocalCache => TracePath::LocalHit,
        ResolutionPath::PeerCache => TracePath::PeerHit,
        ResolutionPath::FullInference => TracePath::Infer,
    }
}

fn radio_of(link: &p2pnet::LinkSpec) -> Radio {
    match link.name {
        "ble" => Radio::Ble,
        "wan" => Radio::Wan,
        _ => Radio::WifiDirect,
    }
}

/// Runs the remote side of a peer query against `cache`.
fn remote_lookup(
    cache: &SharedCache<ClassId>,
    key: &FeatureVector,
    now: SimTime,
) -> Option<RemoteHit> {
    match cache.lookup(key, now) {
        LookupResult::Hit {
            label,
            nearest_distance,
            entry,
            ..
        } => {
            let confidence = cache.entry_confidence(entry).unwrap_or(0.5);
            Some(RemoteHit {
                label: label.0,
                confidence,
                distance: nearest_distance,
            })
        }
        LookupResult::Miss(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scene::{ClassUniverse, SceneConfig};

    fn universe() -> ClassUniverse {
        let mut rng = SimRng::seed(1);
        ClassUniverse::generate(&SceneConfig::default(), &mut rng)
    }

    fn frame_for(universe: &ClassUniverse, class: u32, at: SimTime) -> Frame {
        Frame {
            at,
            descriptor: universe.center(ClassId(class)).clone(),
            truth: ClassId(class),
            subject: scene::ObjectId(class as u64),
            geometry: scene::camera::ViewGeometry {
                bearing_offset: 0.0,
                distance: 3.0,
            },
        }
    }

    fn still_window(at_ms: u64) -> Vec<ImuSample> {
        (0..10)
            .map(|i| ImuSample {
                at: SimTime::from_millis(at_ms + i * 10),
                gyro: [0.0; 3],
                accel: [0.0; 3],
            })
            .collect()
    }

    fn moving_window(at_ms: u64) -> Vec<ImuSample> {
        (0..10)
            .map(|i| ImuSample {
                at: SimTime::from_millis(at_ms + i * 10),
                gyro: [0.0, 0.0, 1.5],
                accel: [0.5, 0.0, 0.0],
            })
            .collect()
    }

    fn device(variant: SystemVariant, universe: &ClassUniverse) -> Device {
        let config = PipelineConfig::new();
        DeviceBuilder::new(DeviceId(0), &config, universe, 256, 99)
            .variant(variant)
            .build()
    }

    #[test]
    fn first_frame_runs_inference() {
        let u = universe();
        let mut d = device(SystemVariant::Full, &u);
        let outcome = d.process_frame(
            &frame_for(&u, 0, SimTime::ZERO),
            &still_window(0),
            &[],
            SimTime::ZERO,
        );
        assert_eq!(outcome.path, ResolutionPath::FullInference);
        assert!(outcome.latency.as_millis() > 20, "DNN latency dominates");
    }

    #[test]
    fn still_device_takes_imu_fast_path() {
        let u = universe();
        let mut d = device(SystemVariant::Full, &u);
        d.process_frame(
            &frame_for(&u, 0, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let t1 = SimTime::from_millis(100);
        let outcome = d.process_frame(&frame_for(&u, 0, t1), &still_window(100), &[], t1);
        assert_eq!(outcome.path, ResolutionPath::ImuReuse);
        assert!(outcome.latency < SimDuration::from_millis(1));
        assert!(outcome.is_correct());
    }

    #[test]
    fn moving_device_hits_local_cache() {
        let u = universe();
        let mut d = device(SystemVariant::Full, &u);
        d.process_frame(
            &frame_for(&u, 0, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        // Moving (so no fast path) but looking at the same subject.
        let t1 = SimTime::from_millis(100);
        let outcome = d.process_frame(&frame_for(&u, 0, t1), &moving_window(100), &[], t1);
        assert_eq!(outcome.path, ResolutionPath::LocalCache);
        assert!(outcome.latency < SimDuration::from_millis(10));
    }

    #[test]
    fn peer_cache_answers_before_inference() {
        let u = universe();
        let mut warm = device(SystemVariant::Full, &u);
        warm.process_frame(
            &frame_for(&u, 3, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let config = PipelineConfig::new();
        let mut cold = DeviceBuilder::new(DeviceId(1), &config, &u, 256, 99).build();
        let t1 = SimTime::from_millis(100);
        let warm_cache = warm.cache().clone();
        let outcome = cold.process_frame(
            &frame_for(&u, 3, t1),
            &moving_window(100),
            &[&warm_cache],
            t1,
        );
        assert_eq!(outcome.path, ResolutionPath::PeerCache);
        // A peer answer costs a WiFi RTT, far below inference.
        assert!(outcome.latency < SimDuration::from_millis(30));
        // The adopted entry serves the next frame locally.
        let t2 = SimTime::from_millis(200);
        let outcome2 = cold.process_frame(&frame_for(&u, 3, t2), &moving_window(200), &[], t2);
        assert_eq!(outcome2.path, ResolutionPath::LocalCache);
    }

    #[test]
    fn no_cache_variant_always_infers() {
        let u = universe();
        let mut d = device(SystemVariant::NoCache, &u);
        for i in 0..5u64 {
            let t = SimTime::from_millis(i * 100);
            let outcome = d.process_frame(&frame_for(&u, 0, t), &still_window(i * 100), &[], t);
            assert_eq!(outcome.path, ResolutionPath::FullInference);
        }
    }

    #[test]
    fn inference_queues_an_advertisement() {
        let u = universe();
        let mut d = device(SystemVariant::Full, &u);
        d.process_frame(
            &frame_for(&u, 2, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let ad = d.take_advertisement().expect("inference advertises");
        assert_eq!(ad.key.dim(), 64);
        assert!(d.take_advertisement().is_none(), "taken once");
    }

    #[test]
    fn received_advertisement_warms_cache() {
        let u = universe();
        let mut producer = device(SystemVariant::Full, &u);
        producer.process_frame(
            &frame_for(&u, 4, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let ad = producer.take_advertisement().unwrap();
        let config = PipelineConfig::new();
        let mut consumer = DeviceBuilder::new(DeviceId(1), &config, &u, 256, 99).build();
        consumer.receive_advertisement(&ad, SimTime::from_millis(50));
        let t = SimTime::from_millis(100);
        let outcome = consumer.process_frame(&frame_for(&u, 4, t), &moving_window(100), &[], t);
        assert_eq!(outcome.path, ResolutionPath::LocalCache);
    }

    #[test]
    fn outcomes_accumulate() {
        let u = universe();
        let mut d = device(SystemVariant::Full, &u);
        for i in 0..3u64 {
            let t = SimTime::from_millis(i * 100);
            d.process_frame(&frame_for(&u, 0, t), &moving_window(i * 100), &[], t);
        }
        assert_eq!(d.outcomes().len(), 3);
        assert_eq!(d.id(), DeviceId(0));
        assert_eq!(d.variant(), SystemVariant::Full);
    }

    #[test]
    fn peer_query_budget_follows_model_economics() {
        // Over BLE (≈50 ms RTT) querying peers is a bad trade for a 75 ms
        // model (budget 37.5 ms) but a good one for a 380 ms model
        // (budget 190 ms). The budget guard must make that call.
        let u = universe();
        let mut warm = device(SystemVariant::Full, &u);
        warm.process_frame(
            &frame_for(&u, 3, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let warm_cache = warm.cache().clone();

        let mut ble_config = PipelineConfig::new();
        ble_config.peer.as_mut().expect("peers").link = p2pnet::LinkSpec::ble();

        // Fast model: no peer traffic at all.
        let mut fast = DeviceBuilder::new(DeviceId(1), &ble_config, &u, 256, 99).build();
        let t = SimTime::from_millis(100);
        let outcome =
            fast.process_frame(&frame_for(&u, 3, t), &moving_window(100), &[&warm_cache], t);
        assert_eq!(outcome.path, ResolutionPath::FullInference);
        assert_eq!(
            fast.transport_counters().messages_sent,
            0,
            "BLE query skipped"
        );

        // Heavy model: the same query is worth it.
        let heavy_config = ble_config.clone().with_model(dnnsim::zoo::resnet50());
        let mut heavy = DeviceBuilder::new(DeviceId(2), &heavy_config, &u, 256, 99).build();
        let outcome =
            heavy.process_frame(&frame_for(&u, 3, t), &moving_window(100), &[&warm_cache], t);
        assert_eq!(outcome.path, ResolutionPath::PeerCache);
        assert!(heavy.transport_counters().messages_sent >= 2);
    }

    #[test]
    fn audits_tighten_a_grossly_loose_threshold() {
        // Start with a threshold so loose that cross-class keys hit, and a
        // high audit rate: the controller must pull it down. k = 1
        // disables the homogeneity vote (which would otherwise mask the
        // loose threshold as NotHomogeneous misses), so wrong hits — the
        // audit's target — actually occur.
        let u = universe();
        let mut config = PipelineConfig::new();
        config.cache = config.cache.clone().with_aknn(ann::AknnConfig {
            distance_threshold: 1e3,
            k: 1,
            ..ann::AknnConfig::default()
        });
        config.adaptive = Some(crate::adaptive::AdaptiveConfig {
            audit_prob: 0.5,
            ..crate::adaptive::AdaptiveConfig::default()
        });
        let mut d = DeviceBuilder::new(DeviceId(0), &config, &u, 256, 7).build();
        let start_threshold = d.current_threshold();
        for i in 0..200u64 {
            let t = SimTime::from_millis(i * 100);
            // Rotate subjects so loose-threshold hits are usually wrong.
            d.process_frame(
                &frame_for(&u, (i % 20) as u32, t),
                &moving_window(i * 100),
                &[],
                t,
            );
        }
        let controller = d.adaptive().expect("adaptation enabled");
        assert!(controller.audits > 10, "audits {}", controller.audits);
        assert!(
            controller.false_hits > 0,
            "loose threshold must produce disagreeing audits"
        );
        assert!(
            d.current_threshold() < start_threshold / 4.0,
            "threshold {} barely moved from {start_threshold}",
            d.current_threshold()
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceId(3).to_string(), "device-3");
        assert_eq!(ResolutionPath::ImuReuse.to_string(), "imu-reuse");
        assert_eq!(ResolutionPath::all().len(), 4);
    }

    #[test]
    fn trace_is_disabled_by_default() {
        let u = universe();
        let mut d = device(SystemVariant::Full, &u);
        d.process_frame(
            &frame_for(&u, 0, SimTime::ZERO),
            &still_window(0),
            &[],
            SimTime::ZERO,
        );
        assert!(!d.trace().is_enabled());
        assert!(d.trace().is_empty());
    }

    #[test]
    fn stationary_run_traces_infer_then_imu_fast_path() {
        let u = universe();
        let config = PipelineConfig::new().with_trace_capacity(Some(16));
        let mut d = DeviceBuilder::new(DeviceId(0), &config, &u, 256, 99).build();
        for i in 0..3u64 {
            let t = SimTime::from_millis(i * 100);
            d.process_frame(&frame_for(&u, 0, t), &still_window(i * 100), &[], t);
        }
        let traces = d.trace().to_vec();
        let paths: Vec<simcore::TracePath> = traces.iter().map(|t| t.path).collect();
        assert_eq!(
            paths,
            vec![
                simcore::TracePath::Infer,
                simcore::TracePath::ImuFastPath,
                simcore::TracePath::ImuFastPath,
            ]
        );
        // The first frame has no model to reuse: the gate demands a
        // lookup and the empty cache reports an empty-index miss.
        assert_eq!(traces[0].gate, simcore::TraceGate::LookupLocal);
        assert_eq!(
            traces[0].local,
            simcore::TraceLookup::Miss(simcore::TraceMissReason::EmptyIndex)
        );
        assert!(traces[0].latency.as_millis() > 20);
        // Fast-path frames skip the lookup entirely but pass the
        // scene-change check.
        for t in &traces[1..] {
            assert_eq!(t.gate, simcore::TraceGate::ReusePrevious);
            assert_eq!(t.scene_changed, Some(false));
            assert_eq!(t.local, simcore::TraceLookup::NotAttempted);
            assert_eq!(t.peer, simcore::TracePeer::default());
        }
    }

    #[test]
    fn trace_records_local_hit_distance_and_peer_attempts() {
        let u = universe();
        let config = PipelineConfig::new().with_trace_capacity(Some(16));
        let mut d = DeviceBuilder::new(DeviceId(0), &config, &u, 256, 99).build();
        d.process_frame(
            &frame_for(&u, 0, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let t1 = SimTime::from_millis(100);
        d.process_frame(&frame_for(&u, 0, t1), &moving_window(100), &[], t1);
        let traces = d.trace().to_vec();
        assert_eq!(traces.len(), 2);
        match traces[1].local {
            simcore::TraceLookup::Hit { distance } => assert!(distance >= 0.0),
            other => panic!("second frame should hit locally, got {other:?}"),
        }
        assert_eq!(traces[1].path, simcore::TracePath::LocalHit);

        // A cold device with a warm peer records the peer attempt and
        // the bytes it cost.
        let mut warm = device(SystemVariant::Full, &u);
        warm.process_frame(
            &frame_for(&u, 3, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let warm_cache = warm.cache().clone();
        let mut cold = DeviceBuilder::new(DeviceId(1), &config, &u, 256, 99).build();
        let outcome = cold.process_frame(
            &frame_for(&u, 3, t1),
            &moving_window(100),
            &[&warm_cache],
            t1,
        );
        assert_eq!(outcome.path, ResolutionPath::PeerCache);
        let trace = cold.trace().to_vec()[0];
        assert_eq!(trace.path, simcore::TracePath::PeerHit);
        assert_eq!(trace.peer.attempts, 1);
        assert_eq!(trace.peer.timeouts, 0);
        assert!(
            trace.peer.bytes > 0,
            "peer bytes must come from the transport counters"
        );
        assert!(!trace.radio_dark);
        assert!(!trace.peer_fallback);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_matches_builder() {
        let u = universe();
        let config = PipelineConfig::new();
        let mut old = Device::new(DeviceId(0), SystemVariant::Full, &config, &u, 256, 99);
        let mut new = DeviceBuilder::new(DeviceId(0), &config, &u, 256, 99).build();
        let t = SimTime::ZERO;
        let a = old.process_frame(&frame_for(&u, 0, t), &still_window(0), &[], t);
        let b = new.process_frame(&frame_for(&u, 0, t), &still_window(0), &[], t);
        assert_eq!(a, b, "the shim must be behaviour-identical");
    }

    #[test]
    fn radio_dark_frames_never_query_peers() {
        let u = universe();
        let mut warm = device(SystemVariant::Full, &u);
        warm.process_frame(
            &frame_for(&u, 3, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let warm_cache = warm.cache().clone();
        let config = PipelineConfig::new().with_trace_capacity(Some(16));
        let mut cold = DeviceBuilder::new(DeviceId(1), &config, &u, 256, 99).build();
        cold.set_radio_dark(true);
        let t1 = SimTime::from_millis(100);
        let outcome = cold.process_frame(
            &frame_for(&u, 3, t1),
            &moving_window(100),
            &[&warm_cache],
            t1,
        );
        // The peer held the answer, but the radio was dark.
        assert_eq!(outcome.path, ResolutionPath::FullInference);
        assert_eq!(cold.transport_counters().messages_sent, 0);
        assert_eq!(cold.resilience_counters().outage_frames, 1);
        let trace = cold.trace().to_vec()[0];
        assert!(trace.radio_dark);
        assert_eq!(trace.peer.attempts, 0);

        // Out of the outage, the same query goes through again.
        cold.set_radio_dark(false);
        let t2 = SimTime::from_millis(200);
        let outcome = cold.process_frame(
            &frame_for(&u, 3, t2),
            &moving_window(200),
            &[&warm_cache],
            t2,
        );
        assert_eq!(outcome.path, ResolutionPath::PeerCache);
    }

    #[test]
    fn dark_fallback_opens_after_consecutive_timeouts() {
        let u = universe();
        let mut warm = device(SystemVariant::Full, &u);
        warm.process_frame(
            &frame_for(&u, 0, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let warm_cache = warm.cache().clone();

        // Every exchange is lost, so every peer-tier frame is a timeout.
        let mut config = PipelineConfig::new().with_trace_capacity(Some(64));
        let peer = config.peer.as_mut().expect("peers enabled");
        peer.link.loss_prob = 1.0;
        peer.resilience = Some(p2pnet::ResilienceConfig {
            dark_fallback: Some(p2pnet::DarkFallback {
                threshold: 2,
                cooldown: SimDuration::from_secs(30),
            }),
            ..p2pnet::ResilienceConfig::default()
        });
        let mut d = DeviceBuilder::new(DeviceId(1), &config, &u, 256, 99).build();
        // Distinct subjects so the local cache never short-circuits the
        // peer tier.
        for i in 0..6u64 {
            let t = SimTime::from_millis((i + 1) * 100);
            d.process_frame(
                &frame_for(&u, (i % 20) as u32, t),
                &moving_window((i + 1) * 100),
                &[&warm_cache],
                t,
            );
        }
        let counters = d.resilience_counters();
        assert!(
            counters.peer_fallbacks >= 3,
            "fallback must suppress the peer tier after 2 dark frames: {counters:?}"
        );
        let traces = d.trace().to_vec();
        let fallback_frames = traces.iter().filter(|t| t.peer_fallback).count() as u64;
        assert_eq!(fallback_frames, counters.peer_fallbacks);
        // Suppressed frames really skipped the radio.
        for t in traces.iter().filter(|t| t.peer_fallback) {
            assert_eq!(t.peer.attempts, 0);
        }
    }

    #[test]
    fn edge_tier_is_off_by_default() {
        let u = universe();
        let d = device(SystemVariant::Full, &u);
        assert!(d.edge_counters().is_none());
        assert!(d.edge_cache().is_none());
    }

    #[test]
    fn edge_cache_answers_after_peers_and_warms_local() {
        let u = universe();
        let shared = edge::EdgeCache::new(edge::EdgeCacheConfig::default()).unwrap();
        let config = PipelineConfig::new()
            .with_peer(None)
            .with_edge(Some(crate::config::EdgeConfig::default()))
            .with_trace_capacity(Some(8));

        // A device somewhere else in the fleet infers once and pushes
        // the result up to the edge.
        let mut warm = DeviceBuilder::new(DeviceId(0), &config, &u, 256, 99)
            .edge_cache(shared.clone())
            .build();
        let first = warm.process_frame(
            &frame_for(&u, 3, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        assert_eq!(first.path, ResolutionPath::FullInference);
        assert_eq!(
            shared.counters().inserts,
            1,
            "inference uploads to the edge"
        );

        // Whether that upload was *admitted* depends on the sampled
        // inference confidence (the edge applies the same 0.75 floor as
        // any cache). Seed one entry that clears it so the lookup half
        // of the test is deterministic.
        let key = warm.projection().project(u.center(ClassId(3)));
        shared
            .apply_batch(
                &edge::BatchRequest {
                    device: 7,
                    frames: vec![edge::Frame::Insert {
                        key,
                        label: 3,
                        confidence: 0.95,
                    }],
                },
                SimTime::ZERO,
            )
            .expect("seed batch");

        // A cold device with no peers in range resolves the same subject
        // over the WAN.
        let mut cold = DeviceBuilder::new(DeviceId(1), &config, &u, 256, 99)
            .edge_cache(shared.clone())
            .build();
        let t1 = SimTime::from_millis(100);
        let outcome = cold.process_frame(&frame_for(&u, 3, t1), &moving_window(100), &[], t1);
        assert_eq!(outcome.path, ResolutionPath::PeerCache);
        // One WAN round-trip (~50 ms) undercuts MobileNet's 75 ms.
        assert!(outcome.latency < SimDuration::from_millis(75));
        let counters = cold.edge_counters().expect("edge configured");
        assert_eq!(counters.queries_sent, 1);
        assert_eq!(counters.hits_adopted, 1);
        assert_eq!(cold.trace().to_vec()[0].path, simcore::TracePath::EdgeHit);

        // The adopted entry serves the next frame without the modem.
        let t2 = SimTime::from_millis(200);
        let outcome2 = cold.process_frame(&frame_for(&u, 3, t2), &moving_window(200), &[], t2);
        assert_eq!(outcome2.path, ResolutionPath::LocalCache);
        assert_eq!(
            cold.edge_counters().expect("edge configured").queries_sent,
            1,
            "local hits never wake the modem"
        );
    }

    #[test]
    fn peer_hit_relays_a_gossip_ad_to_the_edge() {
        let u = universe();
        let mut warm = device(SystemVariant::Full, &u);
        warm.process_frame(
            &frame_for(&u, 3, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let warm_cache = warm.cache().clone();

        let shared = edge::EdgeCache::new(edge::EdgeCacheConfig::default()).unwrap();
        let config = PipelineConfig::new().with_edge(Some(crate::config::EdgeConfig::default()));
        let mut cold = DeviceBuilder::new(DeviceId(1), &config, &u, 256, 99)
            .edge_cache(shared.clone())
            .build();
        let t1 = SimTime::from_millis(100);
        let outcome = cold.process_frame(
            &frame_for(&u, 3, t1),
            &moving_window(100),
            &[&warm_cache],
            t1,
        );
        // The nearby peer wins (cheaper than the WAN), and the answer is
        // relayed up so the rest of the fleet can find it.
        assert_eq!(outcome.path, ResolutionPath::PeerCache);
        assert_eq!(shared.counters().gossip_entries, 1);
        assert_eq!(
            cold.edge_counters().expect("edge configured").queries_sent,
            0,
            "a peer hit never reaches the edge lookup"
        );
    }

    #[test]
    fn radio_dark_suppresses_the_edge_tier_too() {
        let u = universe();
        let shared = edge::EdgeCache::new(edge::EdgeCacheConfig::default()).unwrap();
        let config = PipelineConfig::new()
            .with_peer(None)
            .with_edge(Some(crate::config::EdgeConfig::default()));
        let mut d = DeviceBuilder::new(DeviceId(0), &config, &u, 256, 99)
            .edge_cache(shared.clone())
            .build();
        d.set_radio_dark(true);
        d.process_frame(
            &frame_for(&u, 0, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        assert_eq!(d.edge_counters().expect("edge configured").queries_sent, 0);
        assert_eq!(shared.counters().batches, 0, "dark frames upload nothing");
    }

    #[test]
    fn crash_loses_cache_and_last_result() {
        let u = universe();
        let mut d = device(SystemVariant::Full, &u);
        d.process_frame(
            &frame_for(&u, 0, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let t1 = SimTime::from_millis(100);
        let hit = d.process_frame(&frame_for(&u, 0, t1), &moving_window(100), &[], t1);
        assert_eq!(hit.path, ResolutionPath::LocalCache);

        d.crash();
        assert_eq!(d.resilience_counters().crashes, 1);
        // Even a perfectly still device must re-infer: the validated
        // result died with the process.
        let t2 = SimTime::from_millis(200);
        let cold = d.process_frame(&frame_for(&u, 0, t2), &still_window(200), &[], t2);
        assert_eq!(cold.path, ResolutionPath::FullInference);
    }

    #[test]
    fn ad_retry_recovers_lost_advertisements() {
        let u = universe();
        let mut config = PipelineConfig::new();
        let peer = config.peer.as_mut().expect("peers enabled");
        peer.link.loss_prob = 0.6;
        peer.resilience = Some(p2pnet::ResilienceConfig {
            ad_retry: Some(p2pnet::RetryPolicy::default()),
            ..p2pnet::ResilienceConfig::default()
        });
        let mut d = DeviceBuilder::new(DeviceId(0), &config, &u, 256, 99).build();
        let mut attempts = 0u32;
        let mut delivered = 0u32;
        for i in 0..60u64 {
            let t = SimTime::from_millis((i + 1) * 100);
            d.process_frame(
                &frame_for(&u, (i % 20) as u32, t),
                &moving_window((i + 1) * 100),
                &[],
                t,
            );
            if let Some(entry) = d.take_advertisement() {
                let message = P2pMessage::Advertise {
                    entries: vec![entry],
                };
                attempts += 1;
                if d.charge_advertisement(&message).is_some() {
                    delivered += 1;
                }
            }
        }
        let counters = d.resilience_counters();
        assert!(counters.ad_retries > 0, "60% loss must trigger retries");
        // 2 retries turn p=0.4 per attempt into ~78% delivery — well
        // above the 40% a single attempt would manage.
        assert!(attempts >= 20, "only {attempts} ads attempted");
        assert!(
            delivered * 2 > attempts,
            "delivered {delivered}/{attempts}; retries should beat 50%"
        );
    }
}
