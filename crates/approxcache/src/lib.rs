//! Approximate caching for mobile image recognition.
//!
//! This crate is the reproduction's primary contribution: an in-memory
//! caching paradigm for smartphone image recognition that reuses previous
//! recognition results instead of re-running the DNN, exploiting three
//! signals (Mariani, Han & Xiao, ICDCS 2021):
//!
//! 1. **Inertial movement** — if the IMU says the device has not moved,
//!    the previous result is returned at near-zero cost; if it says the
//!    view swung far away, the local lookup is skipped as hopeless.
//! 2. **Video-stream locality** — consecutive frames are near-duplicates in
//!    feature space, so an adaptive k-NN cache keyed on compact signatures
//!    answers most of them.
//! 3. **Nearby peer devices** — infrastructure-less BLE/WiFi-Direct
//!    queries let one device's inference warm its neighbours' caches.
//!
//! The crate exposes:
//!
//! - [`PipelineConfig`] — every knob of the system, with calibrated
//!   defaults ([`PipelineConfig::calibrated`]).
//! - [`Device`] / [`DeviceBuilder`] — one smartphone running the full
//!   pipeline.
//! - [`SystemVariant`] — the baselines every experiment compares against
//!   (no cache, exact-match cache, local-only, ablations).
//! - [`Scenario`] / [`run`] — the multi-device collaborative simulation
//!   driver, with deterministic fault injection
//!   ([`Scenario::with_faults`]) and the resilience machinery that
//!   answers it ([`p2pnet::ResilienceConfig`]).
//! - [`RunReport`] — latency / accuracy / energy / traffic summaries.
//! - [`ConfigError`] — the typed rejection every validation returns.
//!
//! # Example
//!
//! ```
//! use approxcache::prelude::*;
//!
//! let scenario = Scenario::single_device(MotionProfile::Stationary)
//!     .with_duration(SimDuration::from_secs(10));
//! let config = PipelineConfig::calibrated(&scenario, 42);
//! let report = run(&scenario, &config, SystemVariant::Full, 42, Detail::Summary)
//!     .expect("valid scenario")
//!     .report;
//! assert!(report.frames > 0);
//! // A stationary camera reuses almost everything.
//! assert!(report.reuse_rate() > 0.8);
//! ```

pub mod adaptive;
pub mod baseline;
pub mod config;
pub mod device;
pub mod error;
pub mod fleet;
pub mod prelude;
pub mod report;
pub mod sim;

pub use adaptive::{AdaptiveConfig, AdaptiveController};
pub use baseline::SystemVariant;
pub use config::{CacheExpiry, CostModel, EdgeConfig, PeerConfig, PipelineConfig};
pub use device::{Device, DeviceBuilder, DeviceId, FrameOutcome, ResolutionPath};
pub use error::ConfigError;
pub use fleet::{run_fleet, FleetOptions};
pub use report::RunReport;
pub use sim::{run, ChurnSpec, Detail, Scenario, SimResult};
