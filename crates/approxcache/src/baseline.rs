//! System variants: the full system and every baseline / ablation.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use features::FeatureVector;
use scene::ClassId;

use crate::config::PipelineConfig;

/// Which system runs on a device.
///
/// `NoCache`, `ExactCache` and `LocalApprox` are the comparison baselines
/// of the headline experiment; `NoImu` / `NoPeer` / `NoTemporal` are the
/// ablations that remove one mechanism each from the full system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemVariant {
    /// Run the DNN on every frame (the status quo the paper improves on).
    NoCache,
    /// Conventional caching: reuse only on (hash-)identical keys.
    ExactCache,
    /// Approximate cache with IMU gating but no peer collaboration
    /// (a Potluck-style single-device system).
    LocalApprox,
    /// Full system minus the inertial gate.
    NoImu,
    /// Full system minus peer collaboration (alias of `LocalApprox` in
    /// behaviour; kept separate so ablation tables read clearly).
    NoPeer,
    /// Full system minus the local cache: IMU fast path and peers only.
    NoTemporal,
    /// The complete system: IMU + local approximate cache + peers.
    Full,
}

impl SystemVariant {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            SystemVariant::NoCache => "no-cache",
            SystemVariant::ExactCache => "exact-cache",
            SystemVariant::LocalApprox => "local-approx",
            SystemVariant::NoImu => "no-imu",
            SystemVariant::NoPeer => "no-peer",
            SystemVariant::NoTemporal => "no-temporal",
            SystemVariant::Full => "full",
        }
    }

    /// The comparison set of the headline latency experiment.
    pub fn headline_set() -> [SystemVariant; 4] {
        [
            SystemVariant::NoCache,
            SystemVariant::ExactCache,
            SystemVariant::LocalApprox,
            SystemVariant::Full,
        ]
    }

    /// The ablation set.
    pub fn ablation_set() -> [SystemVariant; 5] {
        [
            SystemVariant::Full,
            SystemVariant::NoImu,
            SystemVariant::NoPeer,
            SystemVariant::NoTemporal,
            SystemVariant::ExactCache,
        ]
    }

    /// Whether the inertial gate runs.
    pub fn imu_enabled(&self) -> bool {
        !matches!(
            self,
            SystemVariant::NoCache | SystemVariant::NoImu | SystemVariant::ExactCache
        )
    }

    /// Whether any local cache runs.
    pub fn local_cache_enabled(&self) -> bool {
        !matches!(self, SystemVariant::NoCache | SystemVariant::NoTemporal)
    }

    /// Whether lookups require exact (hash) key equality.
    pub fn exact_match_only(&self) -> bool {
        matches!(self, SystemVariant::ExactCache)
    }

    /// Whether peer collaboration runs.
    pub fn peers_enabled(&self) -> bool {
        matches!(
            self,
            SystemVariant::Full | SystemVariant::NoImu | SystemVariant::NoTemporal
        )
    }

    /// Projects a full-system configuration onto this variant (e.g.
    /// removing the peer config where peers are disabled). The returned
    /// config is what the device actually runs.
    pub fn apply(&self, config: &PipelineConfig) -> PipelineConfig {
        let mut effective = config.clone();
        if !self.peers_enabled() {
            effective.peer = None;
        }
        if !self.imu_enabled() {
            effective.gate = imu::ImuGate::disabled();
        }
        effective
    }
}

impl std::fmt::Display for SystemVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The exact-match cache baseline: keys are 64-bit content digests and a
/// lookup succeeds only on digest equality. This is what a conventional
/// memoization layer can do for image recognition — and, as the
/// experiments show, sensor noise makes identical keys so rare that it
/// barely helps, which is the motivation for *approximate* caching.
///
/// The digest is an avalanche hash (FNV-1a over the key's raw `f32` bit
/// patterns), not a locality-sensitive one: flipping a single bit of any
/// dimension yields an unrelated digest, exactly like a conventional
/// content-addressed cache.
#[derive(Debug, Clone)]
pub struct ExactCache {
    key_dim: usize,
    salt: u64,
    entries: HashMap<u64, ClassId>,
}

impl ExactCache {
    /// Creates the digest cache for keys of dimension `key_dim`.
    pub fn new(key_dim: usize, seed: u64) -> ExactCache {
        ExactCache {
            key_dim,
            salt: seed,
            entries: HashMap::new(),
        }
    }

    /// 64-bit FNV-1a content digest of the key, salted by the cache seed.
    fn digest(&self, key: &FeatureVector) -> u64 {
        assert_eq!(
            key.dim(),
            self.key_dim,
            "exact-cache key dimension mismatch"
        );
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET ^ self.salt;
        for &x in key.as_slice() {
            for byte in x.to_bits().to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    /// Number of cached hashes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the cached label for exactly this key's digest.
    pub fn lookup(&self, key: &FeatureVector) -> Option<ClassId> {
        self.entries.get(&self.digest(key)).copied()
    }

    /// Caches a label under the key's digest.
    pub fn insert(&mut self, key: &FeatureVector, label: ClassId) {
        let digest = self.digest(key);
        self.entries.insert(digest, label);
    }

    /// Drops every cached digest (what a process crash does to an
    /// in-memory cache).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    #[test]
    fn variant_flags_are_consistent() {
        assert!(!SystemVariant::NoCache.local_cache_enabled());
        assert!(!SystemVariant::NoCache.imu_enabled());
        assert!(!SystemVariant::NoCache.peers_enabled());

        assert!(SystemVariant::ExactCache.local_cache_enabled());
        assert!(SystemVariant::ExactCache.exact_match_only());
        assert!(!SystemVariant::ExactCache.peers_enabled());

        assert!(SystemVariant::LocalApprox.local_cache_enabled());
        assert!(SystemVariant::LocalApprox.imu_enabled());
        assert!(!SystemVariant::LocalApprox.peers_enabled());

        assert!(!SystemVariant::NoImu.imu_enabled());
        assert!(SystemVariant::NoImu.peers_enabled());

        assert!(!SystemVariant::NoTemporal.local_cache_enabled());
        assert!(SystemVariant::NoTemporal.peers_enabled());
        assert!(SystemVariant::NoTemporal.imu_enabled());

        assert!(SystemVariant::Full.imu_enabled());
        assert!(SystemVariant::Full.local_cache_enabled());
        assert!(SystemVariant::Full.peers_enabled());
        assert!(!SystemVariant::Full.exact_match_only());
    }

    #[test]
    fn apply_strips_disabled_mechanisms() {
        let config = PipelineConfig::new();
        let no_peer = SystemVariant::NoPeer.apply(&config);
        assert!(no_peer.peer.is_none());
        let no_imu = SystemVariant::NoImu.apply(&config);
        assert_eq!(no_imu.gate, imu::ImuGate::disabled());
        let full = SystemVariant::Full.apply(&config);
        assert!(full.peer.is_some());
    }

    #[test]
    fn sets_and_names() {
        assert_eq!(SystemVariant::headline_set().len(), 4);
        assert_eq!(SystemVariant::ablation_set().len(), 5);
        assert_eq!(SystemVariant::Full.to_string(), "full");
        assert_eq!(SystemVariant::ExactCache.name(), "exact-cache");
    }

    #[test]
    fn exact_cache_hits_identical_key_only() {
        let mut cache = ExactCache::new(8, 1);
        let key = FeatureVector::from_vec(vec![1.0; 8]).unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(&key), None);
        cache.insert(&key, ClassId(3));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&key), Some(ClassId(3)));
        // A clearly different key misses.
        let other = FeatureVector::from_vec(vec![-1.0; 8]).unwrap();
        assert_eq!(cache.lookup(&other), None);
    }

    #[test]
    fn exact_cache_rarely_absorbs_noisy_rerenders() {
        // The motivating failure: per-shot sensor noise perturbs the key,
        // and hash equality almost never survives it.
        let mut cache = ExactCache::new(64, 2);
        let mut rng = SimRng::seed(3);
        let mut hits = 0;
        for trial in 0..200 {
            let base: Vec<f32> = (0..64).map(|_| rng.normal(0.0, 1.0) as f32).collect();
            let base = FeatureVector::from_vec(base).unwrap();
            cache.insert(&base, ClassId(trial % 5));
            let noise: Vec<f32> = (0..64).map(|_| rng.normal(0.0, 0.1) as f32).collect();
            let noisy = base.add(&FeatureVector::from_vec(noise).unwrap()).unwrap();
            if cache.lookup(&noisy).is_some() {
                hits += 1;
            }
        }
        assert!(
            hits < 100,
            "exact cache absorbed {hits}/200 noisy re-renders"
        );
    }
}
