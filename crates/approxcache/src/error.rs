//! Typed configuration errors.
//!
//! Scenario and pipeline validation used to panic mid-setup; experiment
//! harnesses that sweep generated configurations need to *reject* a bad
//! point and move on instead. [`ConfigError`] carries enough structure to
//! name the offending field, and wraps the network layer's own
//! [`p2pnet::ConfigError`] so one error type covers the whole stack.

/// Why a scenario or pipeline configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// A field that must be strictly positive was zero or negative.
    NotPositive {
        /// The validated type ("Scenario", …).
        context: &'static str,
        /// The offending field.
        field: &'static str,
    },
    /// A field fell outside its closed range.
    OutOfRange {
        /// The validated type.
        context: &'static str,
        /// The offending field.
        field: &'static str,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Fields are individually fine but mutually inconsistent.
    Inconsistent {
        /// The validated type.
        context: &'static str,
        /// What is inconsistent.
        message: &'static str,
    },
    /// The network layer rejected its part of the configuration.
    Network(p2pnet::ConfigError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NotPositive { context, field } => {
                write!(f, "{context}: {field} must be positive")
            }
            ConfigError::OutOfRange {
                context,
                field,
                min,
                max,
            } => {
                write!(f, "{context}: {field} must be in [{min}, {max}]")
            }
            ConfigError::Inconsistent { context, message } => {
                write!(f, "{context}: {message}")
            }
            ConfigError::Network(inner) => write!(f, "{inner}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<p2pnet::ConfigError> for ConfigError {
    fn from(inner: p2pnet::ConfigError) -> ConfigError {
        ConfigError::Network(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_field() {
        let e = ConfigError::NotPositive {
            context: "Scenario",
            field: "devices",
        };
        assert_eq!(e.to_string(), "Scenario: devices must be positive");
        let e = ConfigError::OutOfRange {
            context: "Scenario",
            field: "churn fraction",
            min: 0.0,
            max: 1.0,
        };
        assert!(e.to_string().contains("churn fraction"));
        assert!(e.to_string().contains("[0, 1]"));
    }

    #[test]
    fn network_errors_pass_through() {
        let inner = p2pnet::ConfigError::NotPositive {
            context: "LinkSpec",
            field: "bandwidth",
        };
        let wrapped = ConfigError::from(inner);
        assert_eq!(wrapped, ConfigError::Network(inner));
        assert_eq!(wrapped.to_string(), inner.to_string());
    }
}
