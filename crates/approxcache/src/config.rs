//! System configuration and threshold calibration.

use serde::{Deserialize, Serialize};

use ann::AknnConfig;
use dnnsim::{DeviceClass, ModelProfile};
use features::RandomProjection;
use imu::{ImuGate, MotionProfile, MotionTrace};
use p2pnet::LinkSpec;
use reuse::{CacheConfig, EvictionPolicy, FrequencyConfig};
use scene::{ClassUniverse, FrameRenderer, SceneConfig, World};
use simcore::{SimDuration, SimRng, SimTime};

use crate::sim::Scenario;

/// CPU-side costs of the caching machinery itself (charged on every frame
/// that reaches the respective stage). Values are typical for a mid-range
/// phone: a downsample + small matrix multiply for features, and a short
/// in-memory scan for the lookup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Extracting the cache key from a frame.
    pub feature_extract: SimDuration,
    /// Fixed cost of a cache lookup.
    pub lookup_base: SimDuration,
    /// Additional lookup cost per cached entry (linear index).
    pub lookup_per_entry: SimDuration,
    /// Cost of evaluating the IMU gate.
    pub gate_check: SimDuration,
    /// Cost of the cheap scene-change check guarding the fast path (a
    /// low-dimensional sketch of the frame, the simulator's analogue of
    /// frame differencing).
    pub scene_check: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            feature_extract: SimDuration::from_millis(4),
            lookup_base: SimDuration::from_micros(150),
            lookup_per_entry: SimDuration::from_micros(2),
            gate_check: SimDuration::from_micros(80),
            scene_check: SimDuration::from_micros(300),
        }
    }
}

impl CostModel {
    /// The lookup cost at a given cache occupancy.
    pub fn lookup_cost(&self, entries: usize) -> SimDuration {
        self.lookup_base + self.lookup_per_entry * entries as u64
    }
}

/// Peer-collaboration parameters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PeerConfig {
    /// The radio technology used between devices.
    pub link: LinkSpec,
    /// Maximum peers queried per miss (nearest first, sequentially, until
    /// one answers).
    pub max_peers_queried: usize,
    /// Latency budget for peer querying, as a fraction of the model's
    /// nominal inference latency. Querying stops once the expected next
    /// round-trip would push the frame past the budget — the economics
    /// guard that keeps slow radios (BLE) from costing more than the
    /// inference they try to avoid.
    pub query_budget_fraction: f64,
    /// Push fresh inference results to neighbours.
    pub advertise_on_inference: bool,
    /// How many nearest neighbours receive each advertisement.
    pub advertise_fanout: usize,
    /// Quantize advertised keys to 8-bit codes before transmission —
    /// ~4× fewer payload bytes at a reconstruction error far below the
    /// sensor-noise floor.
    pub compress_advertisements: bool,
    /// `None`: the simulation gives devices oracle knowledge of who is in
    /// radio range. `Some`: devices discover each other with periodic
    /// beacons (see [`p2pnet::discovery`]) — what a real deployment runs;
    /// freshly arrived peers are invisible until a beacon lands and
    /// beaconing costs radio bytes.
    pub discovery: Option<p2pnet::DiscoveryConfig>,
    /// Resilience machinery (advertisement retry, dead-peer circuit
    /// breaker, dark-peer fallback — see [`p2pnet::faults`]). `None`
    /// disables all of it: the hardened pipeline is byte-identical to the
    /// pre-resilience one until this is set.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub resilience: Option<p2pnet::ResilienceConfig>,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            link: LinkSpec::wifi_direct(),
            max_peers_queried: 3,
            query_budget_fraction: 0.5,
            advertise_on_inference: true,
            advertise_fanout: 2,
            compress_advertisements: false,
            discovery: None,
            resilience: None,
        }
    }
}

/// Edge-tier parameters: one shared cache a WAN hop away from every
/// device (the third tier between the local cache and the P2P
/// neighbourhood — see `crates/edge`).
///
/// `None` on [`PipelineConfig::edge`] (the default) keeps the pipeline
/// byte-identical to the edge-free system; when set, a device that
/// missed both its local cache and its peers batches a lookup to the
/// edge before falling back to inference, and pushes fresh inference
/// results (plus optional gossip ads) back up.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EdgeConfig {
    /// The WAN link between a device and the edge server.
    pub link: LinkSpec,
    /// Edge cache capacity in entries.
    pub capacity: usize,
    /// Most request frames the edge admits in flight before shedding
    /// with an overload rejection.
    pub queue_limit: usize,
    /// Latency budget for the edge round-trip, as a fraction of the
    /// model's nominal inference latency — the same economics guard as
    /// [`PeerConfig::query_budget_fraction`], but permissive by default
    /// because one WAN round-trip replaces an entire inference.
    pub query_budget_fraction: f64,
    /// Push fresh inference results up to the edge.
    pub insert_on_inference: bool,
    /// Also relay peer-learned results as gossip advertisements.
    pub gossip_ads: bool,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            link: LinkSpec::wan(),
            capacity: 4_096,
            queue_limit: 4_096,
            query_budget_fraction: 0.8,
            insert_on_inference: true,
            gossip_ads: true,
        }
    }
}

/// The cheap scene-change check that guards the IMU fast path.
///
/// "Inertially still" does not imply "scene unchanged": an occluder can
/// walk into a stationary camera's view. Real systems guard reuse with a
/// frame-differencing test; the simulator's analogue is a low-dimensional
/// random-projection sketch of the frame descriptor, compared against the
/// sketch taken when the previous result was last *validated*. A large
/// distance demotes the fast path to a real cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneCheck {
    /// Sketch dimensionality (small: the check must be much cheaper than
    /// feature extraction).
    pub sketch_dim: usize,
    /// Sketch distance above which the scene is considered changed.
    /// Same-subject re-renders of the default scene sit well below 10;
    /// subject changes sit well above 15.
    pub distance_threshold: f64,
}

impl Default for SceneCheck {
    fn default() -> Self {
        SceneCheck {
            sketch_dim: 16,
            distance_threshold: 12.0,
        }
    }
}

/// Periodic age-based cache expiry.
///
/// In a drifting environment (lighting change, object churn) old entries
/// stop matching anything yet still occupy capacity and dilute k-NN
/// votes; a periodic sweep drops them. Disabled by default — the standard
/// scenarios are stationary in appearance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheExpiry {
    /// Time between sweeps.
    pub interval: SimDuration,
    /// Entries older than this are dropped by a sweep.
    pub max_age: SimDuration,
}

/// The full configuration of one deployment.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The network being accelerated (the *big* model when a cascade is
    /// configured).
    pub model: ModelProfile,
    /// Optional big/little cascade: the little profile plus the
    /// confidence below which it escalates to [`model`](Self::model).
    pub cascade_little: Option<(ModelProfile, f64)>,
    /// The phone class it runs on.
    pub device_class: DeviceClass,
    /// Dimension of cache keys (projection output).
    pub key_dim: usize,
    /// Seed of the shared random projection (all devices must agree).
    pub projection_seed: u64,
    /// The cache configuration (capacity, hit test, eviction, admission).
    pub cache: CacheConfig,
    /// The inertial gate.
    pub gate: ImuGate,
    /// Peer collaboration (None disables the mechanism).
    pub peer: Option<PeerConfig>,
    /// CPU cost model of the caching machinery.
    pub costs: CostModel,
    /// Periodic age-based cache expiry (None disables sweeps).
    pub expiry: Option<CacheExpiry>,
    /// Runtime threshold adaptation via sampled audits (None disables).
    pub adaptive: Option<crate::adaptive::AdaptiveConfig>,
    /// Activity-adaptive gating: classify the device's activity
    /// (still/handheld/walking/turning/vehicle) from each IMU window and
    /// swap in the per-activity gate preset, instead of one static gate.
    pub activity_adaptive_gate: bool,
    /// Scene-change guard on the IMU fast path (None disables the check
    /// and restores blind "still ⇒ reuse" behaviour).
    pub scene_check: Option<SceneCheck>,
    /// Per-device decision-trace ring capacity (None disables tracing;
    /// the disabled path costs one branch per frame).
    pub trace_capacity: Option<usize>,
    /// Number of shards in the concurrent cache core. `1` (the default)
    /// is operation-for-operation identical to the pre-sharding
    /// single-lock store; at `S > 1` lookups probe only the key's home
    /// shard, trading boundary-bucket misses for a `~n/S`-entry index.
    pub cache_shards: usize,
    /// TinyLFU frequency admission at the eviction point (None disables
    /// the sketch entirely, preserving golden-result byte identity).
    pub frequency_admission: Option<FrequencyConfig>,
    /// Weigh eviction victims by bytes × expected recompute latency of
    /// the configured model instead of pure recency/frequency.
    pub cost_aware_eviction: bool,
    /// Edge cache tier over a WAN link (None — the default — disables
    /// the tier entirely, preserving golden-result byte identity).
    pub edge: Option<EdgeConfig>,
}

impl PipelineConfig {
    /// A configuration with uncalibrated defaults: MobileNetV2 on a
    /// mid-range phone, 64-dim keys, 256-entry LRU cache, default gate and
    /// WiFi-Direct peers. The A-kNN distance threshold defaults to 1.0 and
    /// generally **should be calibrated** — see
    /// [`calibrated`](Self::calibrated).
    pub fn new() -> PipelineConfig {
        PipelineConfig {
            model: dnnsim::zoo::mobilenet_v2(),
            cascade_little: None,
            device_class: DeviceClass::MidRange,
            key_dim: 64,
            projection_seed: 0xcafe,
            cache: CacheConfig::new(256),
            gate: ImuGate::default(),
            peer: Some(PeerConfig::default()),
            costs: CostModel::default(),
            expiry: None,
            adaptive: None,
            activity_adaptive_gate: false,
            scene_check: Some(SceneCheck::default()),
            trace_capacity: None,
            cache_shards: 1,
            frequency_admission: None,
            cost_aware_eviction: false,
            edge: None,
        }
    }

    /// A configuration whose distance threshold has been calibrated for
    /// the scenario's scene statistics (see [`calibrate_threshold_for`]).
    pub fn calibrated(scenario: &Scenario, seed: u64) -> PipelineConfig {
        let mut config = PipelineConfig::new();
        let threshold = calibrate_threshold_for(
            &scenario.scene,
            config.key_dim,
            config.projection_seed,
            seed,
        );
        config.cache = config.cache.with_aknn(AknnConfig {
            distance_threshold: threshold,
            ..AknnConfig::default()
        });
        config
    }

    /// Replaces the model profile.
    pub fn with_model(mut self, model: ModelProfile) -> PipelineConfig {
        self.model = model;
        self
    }

    /// Configures a big/little cascade: `little` answers when its
    /// confidence is at least `escalation_threshold`, otherwise the
    /// configured [`model`](Self::model) also runs.
    pub fn with_cascade(
        mut self,
        little: ModelProfile,
        escalation_threshold: f64,
    ) -> PipelineConfig {
        self.cascade_little = Some((little, escalation_threshold));
        self
    }

    /// Replaces the cache configuration.
    pub fn with_cache(mut self, cache: CacheConfig) -> PipelineConfig {
        self.cache = cache;
        self
    }

    /// Replaces the gate.
    pub fn with_gate(mut self, gate: ImuGate) -> PipelineConfig {
        self.gate = gate;
        self
    }

    /// Replaces or disables peer collaboration.
    pub fn with_peer(mut self, peer: Option<PeerConfig>) -> PipelineConfig {
        self.peer = peer;
        self
    }

    /// Sets the peer tier's resilience machinery (no-op when peers are
    /// disabled; `None` turns the machinery off again).
    pub fn with_resilience(
        mut self,
        resilience: Option<p2pnet::ResilienceConfig>,
    ) -> PipelineConfig {
        if let Some(peer) = self.peer.as_mut() {
            peer.resilience = resilience;
        }
        self
    }

    /// Replaces the eviction policy, keeping everything else.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> PipelineConfig {
        self.cache = self.cache.clone().with_eviction(eviction);
        self
    }

    /// Replaces the cache's nearest-neighbour index backend, keeping
    /// everything else. `IndexConfig::Linear` is the default and the only
    /// backend with exhaustive recall; approximate backends (LSH, NSW)
    /// trade recall for sublinear lookups at large cache sizes.
    pub fn with_index(mut self, index: reuse::IndexConfig) -> PipelineConfig {
        self.cache = self.cache.clone().with_index(index);
        self
    }

    /// Enables or disables periodic cache expiry.
    pub fn with_expiry(mut self, expiry: Option<CacheExpiry>) -> PipelineConfig {
        self.expiry = expiry;
        self
    }

    /// Enables or disables runtime threshold adaptation.
    pub fn with_adaptive(
        mut self,
        adaptive: Option<crate::adaptive::AdaptiveConfig>,
    ) -> PipelineConfig {
        self.adaptive = adaptive;
        self
    }

    /// Enables or disables activity-adaptive gating.
    pub fn with_activity_adaptive_gate(mut self, enabled: bool) -> PipelineConfig {
        self.activity_adaptive_gate = enabled;
        self
    }

    /// Replaces or disables the fast-path scene-change guard.
    pub fn with_scene_check(mut self, scene_check: Option<SceneCheck>) -> PipelineConfig {
        self.scene_check = scene_check;
        self
    }

    /// Enables per-frame decision tracing with the given ring capacity
    /// per device (None disables).
    pub fn with_trace_capacity(mut self, capacity: Option<usize>) -> PipelineConfig {
        self.trace_capacity = capacity;
        self
    }

    /// Sets the number of shards in the concurrent cache core.
    pub fn with_cache_shards(mut self, shards: usize) -> PipelineConfig {
        self.cache_shards = shards;
        self
    }

    /// Enables or disables TinyLFU frequency admission.
    pub fn with_frequency_admission(
        mut self,
        frequency: Option<FrequencyConfig>,
    ) -> PipelineConfig {
        self.frequency_admission = frequency;
        self
    }

    /// Enables or disables cost-aware (bytes × recompute-latency)
    /// eviction weighting.
    pub fn with_cost_aware_eviction(mut self, enabled: bool) -> PipelineConfig {
        self.cost_aware_eviction = enabled;
        self
    }

    /// Enables or disables the edge cache tier.
    pub fn with_edge(mut self, edge: Option<EdgeConfig>) -> PipelineConfig {
        self.edge = edge;
        self
    }

    /// Builds the shared projection for this configuration over raw
    /// descriptors of `descriptor_dim`.
    pub fn build_projection(&self, descriptor_dim: usize) -> RandomProjection {
        RandomProjection::new(descriptor_dim, self.key_dim, self.projection_seed)
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::new()
    }
}

/// Calibrates the A-kNN distance threshold for a scene configuration by
/// sampling same-subject re-render distances vs cross-class distances in
/// the *projected key space* and running the error-minimizing cut from
/// [`reuse::calibrate`].
///
/// This is what a real deployment does with a small labelled warm-up set.
pub fn calibrate_threshold_for(
    scene_config: &SceneConfig,
    key_dim: usize,
    projection_seed: u64,
    seed: u64,
) -> f64 {
    let mut rng = SimRng::seed(seed).split("threshold-calibration");
    let universe = ClassUniverse::generate(scene_config, &mut rng);
    let world = World::generate(&universe, scene_config, &mut rng);
    let renderer = FrameRenderer::new(scene_config);
    let projection = RandomProjection::new(scene_config.descriptor_dim, key_dim, projection_seed);

    let mut same = Vec::new();
    let mut cross = Vec::new();
    let objects: Vec<_> = world.objects().iter().take(24).cloned().collect();
    for (i, obj) in objects.iter().enumerate() {
        // Two slightly different views of the same object.
        let base_pose = imu::Pose {
            x: obj.x - 4.0,
            y: obj.y,
            yaw: 0.0,
            pitch: 0.0,
        };
        let nudged_pose = imu::Pose {
            yaw: 1.0f64.to_radians(),
            ..base_pose
        };
        let a = renderer.render(&world, &base_pose, SimTime::ZERO, &mut rng);
        let b = renderer.render(&world, &nudged_pose, SimTime::ZERO, &mut rng);
        if a.subject != obj.id || b.subject != a.subject {
            continue; // camera resolved something else; skip the pair
        }
        let ka = projection.project(&a.descriptor);
        let kb = projection.project(&b.descriptor);
        same.push(features::distance::euclidean(&ka, &kb));
        // Cross-class pair: this object vs the next object of a different
        // class.
        if let Some(other) = objects.iter().skip(i + 1).find(|o| o.class != obj.class) {
            let other_pose = imu::Pose {
                x: other.x - 4.0,
                y: other.y,
                yaw: 0.0,
                pitch: 0.0,
            };
            let c = renderer.render(&world, &other_pose, SimTime::ZERO, &mut rng);
            if c.truth != a.truth {
                let kc = projection.project(&c.descriptor);
                cross.push(features::distance::euclidean(&ka, &kc));
            }
        }
    }
    if same.is_empty() || cross.is_empty() {
        // Degenerate scene (e.g. one class): fall back to a permissive cut.
        return 1.0;
    }
    reuse::calibrate::calibrate_threshold(&same, &cross).threshold
}

/// Derives a per-device spawn position so that `count` devices share the
/// world without stacking on one point: a grid with `spacing` metres
/// between neighbours, centred on the origin.
pub fn spawn_position(device: usize, count: usize, spacing: f64) -> (f64, f64) {
    let cols = (count as f64).sqrt().ceil() as usize;
    let col = device % cols;
    let row = device / cols;
    let offset = (cols as f64 - 1.0) / 2.0;
    (
        (col as f64 - offset) * spacing,
        (row as f64 - offset) * spacing,
    )
}

/// Convenience: per-device motion traces for a scenario (same profile,
/// independent randomness, shifted spawn points).
pub fn device_traces(
    profile: MotionProfile,
    devices: usize,
    duration: SimDuration,
    imu_rate_hz: f64,
    spacing: f64,
    rng: &SimRng,
) -> Vec<MotionTrace> {
    (0..devices)
        .map(|d| {
            let mut device_rng = rng.split_index("motion-trace", d as u64);
            let trace = MotionTrace::generate(profile, duration, imu_rate_hz, &mut device_rng);
            let (dx, dy) = spawn_position(d, devices, spacing);
            trace.translated(dx, dy)
        })
        .collect()
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_coherent() {
        let config = PipelineConfig::new();
        assert_eq!(config.model.name, "mobilenet_v2");
        assert_eq!(config.key_dim, 64);
        config.cache.validate();
        let projection = config.build_projection(256);
        assert_eq!(projection.dim_out(), 64);
    }

    #[test]
    fn builders_replace_fields() {
        let config = PipelineConfig::new()
            .with_model(dnnsim::zoo::resnet50())
            .with_peer(None)
            .with_eviction(EvictionPolicy::Lfu);
        assert_eq!(config.model.name, "resnet50");
        assert!(config.peer.is_none());
        assert_eq!(config.cache.eviction.name(), "lfu");
    }

    #[test]
    fn cost_model_scales_with_entries() {
        let costs = CostModel::default();
        let empty = costs.lookup_cost(0);
        let full = costs.lookup_cost(1000);
        assert!(full > empty);
        assert_eq!(
            (full - empty).as_micros(),
            2_000,
            "1000 entries at 2 µs each"
        );
    }

    #[test]
    fn calibrated_threshold_separates_scene_scales() {
        let scene = SceneConfig::default();
        let threshold = calibrate_threshold_for(&scene, 64, 0xcafe, 7);
        // Same-view distances in key space are ~noise scale; cross-class
        // are ~spread scale. The cut must sit strictly between.
        assert!(threshold > 0.5, "threshold {threshold} too tight");
        assert!(threshold < 14.0, "threshold {threshold} too loose");
    }

    #[test]
    fn calibration_is_deterministic_in_seed() {
        let scene = SceneConfig::default();
        let a = calibrate_threshold_for(&scene, 64, 1, 9);
        let b = calibrate_threshold_for(&scene, 64, 1, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn spawn_positions_are_distinct_and_centred() {
        let positions: Vec<(f64, f64)> = (0..9).map(|d| spawn_position(d, 9, 4.0)).collect();
        let mut unique = positions.clone();
        unique.sort_by(|a, b| a.partial_cmp(b).unwrap());
        unique.dedup();
        assert_eq!(unique.len(), 9);
        let cx: f64 = positions.iter().map(|p| p.0).sum::<f64>() / 9.0;
        let cy: f64 = positions.iter().map(|p| p.1).sum::<f64>() / 9.0;
        assert!(cx.abs() < 1e-9 && cy.abs() < 1e-9);
    }

    #[test]
    fn device_traces_are_offset_and_independent() {
        let rng = SimRng::seed(3);
        let traces = device_traces(
            MotionProfile::Stationary,
            4,
            SimDuration::from_secs(1),
            50.0,
            5.0,
            &rng,
        );
        assert_eq!(traces.len(), 4);
        let starts: Vec<(f64, f64)> = traces
            .iter()
            .map(|t| (t.poses()[0].x, t.poses()[0].y))
            .collect();
        let mut unique = starts.clone();
        unique.sort_by(|a, b| a.partial_cmp(b).unwrap());
        unique.dedup();
        assert_eq!(unique.len(), 4, "devices must not stack");
    }
}
