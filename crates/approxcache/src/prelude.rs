//! One-line import for experiment binaries and examples.
//!
//! Every bench binary wants the same dozen names: the scenario builder,
//! the run entry point, the variant enum and the handful of foreign types
//! (motion profiles, durations, fault and resilience configs) that appear
//! in almost every experiment. `use approxcache::prelude::*;` brings in
//! exactly that set and nothing else.

pub use crate::baseline::SystemVariant;
pub use crate::config::PipelineConfig;
pub use crate::device::{Device, DeviceBuilder, DeviceId, ResolutionPath};
pub use crate::error::ConfigError;
pub use crate::report::RunReport;
pub use crate::sim::{run, ChurnSpec, Detail, Scenario, SimResult};

pub use imu::MotionProfile;
pub use p2pnet::{FaultConfig, ResilienceConfig};
pub use simcore::{SimDuration, SimRng, SimTime};
