//! The shard-merge algebra the fleet engine relies on.
//!
//! `fleet::run_fleet` folds per-shard results with `merge` and claims
//! the outcome is independent of shard count and completion order.
//! That holds iff every merged structure forms a commutative monoid:
//! `merge` must be commutative and associative with the default value
//! as identity. These properties are checked here for every structure
//! the fleet merges — cache stats, transport counters, resilience
//! counters and the fixed-bucket latency digest — plus the headline
//! theorem itself: an N-shard run's report is byte-for-byte the
//! 1-shard run's report.

use std::num::NonZeroUsize;

use approxcache::{run_fleet, FleetOptions, PipelineConfig, Scenario, SystemVariant};
use imu::MotionProfile;
use p2pnet::{ResilienceCounters, TransportCounters};
use proptest::prelude::*;
use reuse::CacheStats;
use simcore::{LatencyDigest, SimDuration};

/// A balanced `CacheStats`: `lookups == hits + misses()` is an invariant
/// the structure debug-asserts, so the generator derives `lookups`.
fn arb_cache_stats() -> impl Strategy<Value = CacheStats> {
    (
        proptest::collection::vec(0u64..1_000, 5),
        proptest::collection::vec(0u64..1_000, 8),
    )
        .prop_map(|(balance, rest)| {
            let mut stats = CacheStats::default();
            let mut balance = balance.into_iter();
            stats.hits = balance.next().unwrap_or(0);
            stats.miss_empty = balance.next().unwrap_or(0);
            stats.miss_too_far = balance.next().unwrap_or(0);
            stats.miss_not_homogeneous = balance.next().unwrap_or(0);
            stats.miss_insufficient_support = balance.next().unwrap_or(0);
            stats.lookups = stats.hits + stats.misses();
            let mut rest = rest.into_iter();
            stats.inserts = rest.next().unwrap_or(0);
            stats.refreshes = rest.next().unwrap_or(0);
            stats.rejected = rest.next().unwrap_or(0);
            stats.evictions = rest.next().unwrap_or(0);
            stats.removals = rest.next().unwrap_or(0);
            stats.expirations = rest.next().unwrap_or(0);
            stats.sketch_rejected = rest.next().unwrap_or(0);
            stats.weight_evictions = rest.next().unwrap_or(0);
            stats
        })
}

fn arb_transport() -> impl Strategy<Value = TransportCounters> {
    (0u64..10_000, 0u64..10_000, 0u64..10_000, 0u64..1 << 32).prop_map(
        |(sent, delivered, lost, bytes)| TransportCounters {
            messages_sent: sent,
            messages_delivered: delivered,
            messages_lost: lost,
            bytes_sent: bytes,
        },
    )
}

fn arb_resilience() -> impl Strategy<Value = ResilienceCounters> {
    proptest::collection::vec(0u64..1_000, 9).prop_map(|v| {
        let mut it = v.into_iter();
        let mut next = || it.next().unwrap_or(0);
        ResilienceCounters {
            outage_frames: next(),
            crashes: next(),
            poisoned_ads: next(),
            ad_retries: next(),
            ad_abandoned: next(),
            quarantines: next(),
            reprobes: next(),
            breaker_skips: next(),
            peer_fallbacks: next(),
        }
    })
}

fn arb_digest() -> impl Strategy<Value = LatencyDigest> {
    proptest::collection::vec(0.0f64..5_000.0, 0..64).prop_map(|samples| {
        let mut digest = LatencyDigest::new();
        for ms in samples {
            digest.record_ms(ms);
        }
        digest
    })
}

fn merged<T: Clone>(a: &T, b: &T, merge: impl Fn(&mut T, &T)) -> T {
    let mut out = a.clone();
    merge(&mut out, b);
    out
}

/// Checks the commutative-monoid laws for one `(T, merge, identity)`.
fn monoid_laws<T: Clone + PartialEq + std::fmt::Debug>(
    a: &T,
    b: &T,
    c: &T,
    identity: &T,
    merge: impl Fn(&mut T, &T) + Copy,
) -> Result<(), TestCaseError> {
    // Commutativity, associativity, and identity — in that order.
    prop_assert_eq!(merged(a, b, merge), merged(b, a, merge));
    prop_assert_eq!(
        merged(&merged(a, b, merge), c, merge),
        merged(a, &merged(b, c, merge), merge)
    );
    prop_assert_eq!(merged(a, identity, merge), a.clone());
    Ok(())
}

proptest! {
    #[test]
    fn cache_stats_merge_is_a_commutative_monoid(
        a in arb_cache_stats(),
        b in arb_cache_stats(),
        c in arb_cache_stats(),
    ) {
        monoid_laws(&a, &b, &c, &CacheStats::default(), |x, y| x.merge(y))?;
    }

    #[test]
    fn transport_counters_merge_is_a_commutative_monoid(
        a in arb_transport(),
        b in arb_transport(),
        c in arb_transport(),
    ) {
        monoid_laws(&a, &b, &c, &TransportCounters::default(), |x, y| x.merge(y))?;
    }

    #[test]
    fn resilience_counters_merge_is_a_commutative_monoid(
        a in arb_resilience(),
        b in arb_resilience(),
        c in arb_resilience(),
    ) {
        monoid_laws(&a, &b, &c, &ResilienceCounters::default(), |x, y| x.merge(y))?;
    }

    #[test]
    fn latency_digest_merge_is_a_commutative_monoid(
        a in arb_digest(),
        b in arb_digest(),
        c in arb_digest(),
    ) {
        monoid_laws(&a, &b, &c, &LatencyDigest::new(), |x, y| x.merge(y))?;
    }

    /// Merging two digests gives exactly the digest of the concatenated
    /// sample streams — the property that lets shards record latencies
    /// independently.
    #[test]
    fn digest_merge_equals_single_stream(
        xs in proptest::collection::vec(0.0f64..5_000.0, 0..48),
        ys in proptest::collection::vec(0.0f64..5_000.0, 0..48),
    ) {
        let mut left = LatencyDigest::new();
        for &ms in &xs {
            left.record_ms(ms);
        }
        let mut right = LatencyDigest::new();
        for &ms in &ys {
            right.record_ms(ms);
        }
        left.merge(&right);
        let mut whole = LatencyDigest::new();
        for &ms in xs.iter().chain(&ys) {
            whole.record_ms(ms);
        }
        prop_assert_eq!(left, whole);
    }
}

proptest! {
    // Each case plays out two full fleet simulations; a handful of
    // random (seed, population, shard-count) draws is plenty on top of
    // the pinned unit tests in `fleet::tests`.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline theorem: N shards on several workers produce the
    /// same bytes as 1 shard on 1 worker, for arbitrary seeds and
    /// populations.
    #[test]
    fn sharded_report_matches_single_shard(
        seed in 0u64..1_000,
        devices in 2usize..7,
        shards in 2usize..8,
    ) {
        let scenario = Scenario::multi_device(
            MotionProfile::SlowPan { deg_per_sec: 20.0 },
            devices,
        )
        .with_duration(SimDuration::from_secs(3));
        let config = PipelineConfig::calibrated(&scenario, seed);
        let single = run_fleet(
            &scenario,
            &config,
            SystemVariant::Full,
            seed,
            &FleetOptions::single(),
        )
        .expect("valid scenario");
        let sharded = run_fleet(
            &scenario,
            &config,
            SystemVariant::Full,
            seed,
            &FleetOptions {
                shards,
                threads: NonZeroUsize::new(3).expect("positive"),
            },
        )
        .expect("valid scenario");
        prop_assert_eq!(sharded.to_json(), single.to_json());
    }
}
