//! Statistical summaries for experiment reporting.
//!
//! [`Summary`] condenses a sample set into the numbers the paper-style
//! tables report (mean, std, percentiles); [`Cdf`] produces the series
//! behind CDF figures; [`OnlineStats`] is a constant-memory Welford
//! accumulator for hot loops that only need mean/variance.

use serde::{Deserialize, Serialize};

/// Point statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0.0 for an empty set).
    pub mean: f64,
    /// Population standard deviation (0.0 for fewer than two samples).
    pub std_dev: f64,
    /// Smallest sample (0.0 for an empty set).
    pub min: f64,
    /// Largest sample (0.0 for an empty set).
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarizes `samples`. An empty slice yields an all-zero summary with
    /// `count == 0`.
    ///
    /// # Panics
    ///
    /// Panics if any sample is not finite.
    pub fn from_samples(samples: &[f64]) -> Summary {
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "from_samples: samples must be finite"
        );
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        Summary {
            count: n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
        }
    }
}

/// The `q`-quantile (`0.0..=1.0`) of an ascending-sorted slice, using linear
/// interpolation between adjacent ranks.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile_sorted: empty input");
    assert!(
        (0.0..=1.0).contains(&q),
        "percentile_sorted: q out of range: {q}"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// An empirical cumulative distribution function.
///
/// # Example
///
/// ```
/// use simcore::Cdf;
///
/// let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert!((cdf.fraction_at_or_below(2.0) - 0.5).abs() < 1e-12);
/// assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
/// assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the empirical CDF of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if any sample is not finite.
    pub fn from_samples(samples: &[f64]) -> Cdf {
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "from_samples: samples must be finite"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Cdf { sorted }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the CDF was built from no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (0.0 for an empty CDF).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The value at quantile `q`.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q)
    }

    /// Evaluates the CDF at `points` evenly spaced quantiles, returning
    /// `(value, cumulative_fraction)` pairs — the series a CDF figure plots.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `points < 2`.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "series: need at least 2 points");
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }
}

/// Constant-memory running mean/variance (Welford's algorithm).
///
/// # Example
///
/// ```
/// use simcore::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "push: value must be finite, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0.0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_set() {
        let s = Summary::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.p50 - 2.5).abs() < 1e-12);
        let expected_std = (1.25f64).sqrt();
        assert!((s.std_dev - expected_std).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_set_is_zeroed() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert!((percentile_sorted(&sorted, 0.0) - 10.0).abs() < 1e-12);
        assert!((percentile_sorted(&sorted, 1.0) - 50.0).abs() < 1e-12);
        assert!((percentile_sorted(&sorted, 0.5) - 30.0).abs() < 1e-12);
        assert!((percentile_sorted(&sorted, 0.25) - 20.0).abs() < 1e-12);
        assert!((percentile_sorted(&sorted, 0.125) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_of_single_sample() {
        assert_eq!(percentile_sorted(&[7.0], 0.5), 7.0);
    }

    #[test]
    #[should_panic(expected = "q out of range")]
    fn percentile_rejects_bad_quantile() {
        percentile_sorted(&[1.0], 1.5);
    }

    #[test]
    fn cdf_fraction_and_quantile_agree() {
        let cdf = Cdf::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(cdf.len(), 5);
        assert!((cdf.fraction_at_or_below(3.0) - 0.6).abs() < 1e-12);
        assert!((cdf.quantile(0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let samples: Vec<f64> = (0..100).map(|i| (i * 7 % 100) as f64).collect();
        let cdf = Cdf::from_samples(&samples);
        let series = cdf.series(11);
        assert_eq!(series.len(), 11);
        for w in series.windows(2) {
            assert!(w[1].0 >= w[0].0, "values non-decreasing");
            assert!(w[1].1 > w[0].1, "fractions increasing");
        }
        assert_eq!(series[0].1, 0.0);
        assert_eq!(series[10].1, 1.0);
    }

    #[test]
    fn cdf_empty_behaves() {
        let cdf = Cdf::from_samples(&[]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
    }

    #[test]
    fn online_matches_batch() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut online = OnlineStats::new();
        for &x in &samples {
            online.push(x);
        }
        let batch = Summary::from_samples(&samples);
        assert_eq!(online.count() as usize, batch.count);
        assert!((online.mean() - batch.mean).abs() < 1e-12);
        assert!((online.std_dev() - batch.std_dev).abs() < 1e-12);
        assert_eq!(online.min(), batch.min);
        assert_eq!(online.max(), batch.max);
    }

    #[test]
    fn online_merge_matches_single_stream() {
        let a_samples = [1.0, 2.0, 3.0];
        let b_samples = [10.0, 20.0];
        let mut a = OnlineStats::new();
        a_samples.iter().for_each(|&x| a.push(x));
        let mut b = OnlineStats::new();
        b_samples.iter().for_each(|&x| b.push(x));
        a.merge(&b);
        let mut all = OnlineStats::new();
        a_samples
            .iter()
            .chain(&b_samples)
            .for_each(|&x| all.push(x));
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn online_merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn online_empty_reads_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }
}
