//! Virtual time for the simulation.
//!
//! [`SimTime`] is an instant on the simulated clock and [`SimDuration`] a
//! span between instants. Both have nanosecond resolution backed by `u64`,
//! which covers ~584 years of simulated time — far beyond any experiment in
//! this repository.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, measured in nanoseconds since the
/// start of the simulation.
///
/// # Example
///
/// ```
/// use simcore::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(1_500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
///
/// # Example
///
/// ```
/// use simcore::SimDuration;
///
/// let d = SimDuration::from_millis(20) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 20_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after the simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `millis` milliseconds after the simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span; used as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from a float number of seconds, saturating below at
    /// zero (negative inputs become [`SimDuration::ZERO`]).
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a span from a float number of milliseconds, saturating below
    /// at zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero rather than underflowing.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by a non-negative float factor, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "mul_f64: factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_construction_and_accessors() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
        assert_eq!(SimTime::ZERO.as_nanos(), 0);
    }

    #[test]
    fn duration_construction_and_accessors() {
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_nanos(1).is_zero());
    }

    #[test]
    fn duration_float_round_trip() {
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d.as_millis(), 250);
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
        let d = SimDuration::from_millis_f64(1.5);
        assert_eq!(d.as_micros(), 1_500);
    }

    #[test]
    fn from_secs_f64_saturates_on_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
        assert_eq!((t - SimDuration::from_millis(15)), SimTime::ZERO);
        let mut d = SimDuration::from_millis(4);
        d += SimDuration::from_millis(6);
        assert_eq!(d.as_millis(), 10);
        d -= SimDuration::from_millis(3);
        assert_eq!(d.as_millis(), 7);
        assert_eq!((SimDuration::from_millis(3) * 4).as_millis(), 12);
        assert_eq!((SimDuration::from_millis(12) / 4).as_millis(), 3);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_millis(1));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let d = SimTime::ZERO.saturating_duration_since(SimTime::from_millis(1));
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10).mul_f64(0.26);
        assert_eq!(d.as_nanos(), 3);
    }

    #[test]
    #[should_panic(expected = "mul_f64")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_nanos(10).mul_f64(-1.0);
    }

    #[test]
    fn display_formats_pick_unit() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(2)), "2ns");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_millis(), 10);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }
}
