//! Deterministic discrete-event simulation substrate.
//!
//! Everything in this reproduction that has a notion of *time*, *randomness*
//! or *measurement* goes through this crate so that entire multi-device
//! experiments are reproducible from a single seed:
//!
//! - [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! - [`EventQueue`] — a monotone event queue with deterministic FIFO
//!   tie-breaking for events scheduled at the same instant.
//! - [`SimRng`] — a seeded, *splittable* random source: child streams derived
//!   from a parent are independent of the order in which other children are
//!   used, which keeps per-device randomness stable as scenarios grow.
//! - [`metrics`] — counters and histograms collected during a run.
//! - [`stats`] — summaries (mean/std/percentiles/CDF) used by every
//!   experiment binary.
//! - [`table`] — aligned-text and CSV emission for experiment reports.
//!
//! # Example
//!
//! ```
//! use simcore::{EventQueue, SimDuration, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(2), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "a");
//! assert_eq!(t.as_millis(), 2);
//! ```

pub mod digest;
pub mod event;
pub mod metrics;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;
pub mod trace;
pub mod units;

pub use digest::LatencyDigest;
pub use event::EventQueue;
pub use metrics::{Counter, Histogram, MetricSet};
pub use rng::SimRng;
pub use stats::{Cdf, OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{
    FrameTrace, TraceGate, TraceLookup, TraceMissReason, TracePath, TracePeer, TraceRing,
};
pub use units::{Micros, Millijoules, Millis};
