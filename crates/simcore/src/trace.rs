//! Per-frame decision traces.
//!
//! Aggregate counters say *how often* a pipeline took each path; when a
//! headline claim regresses they cannot say *why*. A [`FrameTrace`]
//! records every decision one frame went through — the motion estimate,
//! the gate's verdict, the cache lookup outcome with its miss reason,
//! peer-query attempts and their radio bytes, and the final resolution
//! with its latency and energy — into a fixed-capacity [`TraceRing`].
//!
//! The types here are deliberately domain-neutral (plain enums and
//! numbers) so `simcore` stays at the bottom of the dependency stack;
//! the pipeline crates map their own vocabulary onto them.
//!
//! Tracing is opt-in: a ring built with [`TraceRing::disabled`] drops
//! every record behind a single branch, so the frame path pays nothing
//! measurable when observability is off.

use std::collections::VecDeque;

use crate::units::Millijoules;
use crate::{SimDuration, SimTime};

/// What the inertial gate decided for a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceGate {
    /// No gate ran (the variant disables it).
    Disabled,
    /// Reuse the previous result without touching the frame.
    ReusePrevious,
    /// Proceed to a local cache lookup.
    LookupLocal,
    /// Motion too violent even for the cache: skip straight past it.
    SkipLocal,
}

/// Why a cache lookup missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceMissReason {
    /// Nothing cached yet.
    EmptyIndex,
    /// The nearest neighbour sat beyond the distance threshold.
    TooFar,
    /// In-threshold neighbours disagreed about the label.
    NotHomogeneous,
    /// Too few in-threshold neighbours to trust a vote.
    InsufficientSupport,
}

impl TraceMissReason {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            TraceMissReason::EmptyIndex => "empty-index",
            TraceMissReason::TooFar => "too-far",
            TraceMissReason::NotHomogeneous => "not-homogeneous",
            TraceMissReason::InsufficientSupport => "insufficient-support",
        }
    }
}

/// Outcome of the local cache tier for one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceLookup {
    /// The frame never reached the local cache (fast path, skip, or the
    /// variant has no local cache).
    NotAttempted,
    /// The cache answered; `distance` is the nearest-neighbour distance
    /// (0.0 for exact-match caches).
    Hit {
        /// Distance to the nearest neighbour that produced the answer.
        distance: f64,
    },
    /// The cache missed for the given reason.
    Miss(TraceMissReason),
}

/// Peer-tier activity for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TracePeer {
    /// Queries sent (one per peer tried).
    pub attempts: u32,
    /// Exchanges that timed out (message lost either way).
    pub timeouts: u32,
    /// Radio bytes charged to this frame's peer queries.
    pub bytes: u64,
}

/// How a frame was finally resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracePath {
    /// The inertial fast path echoed the previous result.
    ImuFastPath,
    /// The local cache answered.
    LocalHit,
    /// A peer's cache answered.
    PeerHit,
    /// The edge-tier cache answered over the WAN.
    EdgeHit,
    /// The full model ran.
    Infer,
}

impl TracePath {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            TracePath::ImuFastPath => "imu-fast-path",
            TracePath::LocalHit => "local-hit",
            TracePath::PeerHit => "peer-hit",
            TracePath::EdgeHit => "edge-hit",
            TracePath::Infer => "infer",
        }
    }

    /// All paths, cheapest first.
    pub fn all() -> [TracePath; 5] {
        [
            TracePath::ImuFastPath,
            TracePath::LocalHit,
            TracePath::PeerHit,
            TracePath::EdgeHit,
            TracePath::Infer,
        ]
    }
}

/// Everything one frame went through, end to end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameTrace {
    /// When the frame arrived.
    pub at: SimTime,
    /// Instantaneous motion score from the IMU window.
    pub motion_score: f64,
    /// Motion accumulated since the last validated result.
    pub cumulative_motion: f64,
    /// The gate's verdict.
    pub gate: TraceGate,
    /// Scene-change check verdict on the fast path: `None` when the check
    /// did not run, `Some(true)` when it demoted the fast path.
    pub scene_changed: Option<bool>,
    /// Local cache tier outcome.
    pub local: TraceLookup,
    /// Peer tier activity.
    pub peer: TracePeer,
    /// Whether an injected radio outage covered this frame (the peer
    /// tier was unreachable regardless of what the device wanted).
    pub radio_dark: bool,
    /// Whether the device skipped the peer tier because its dark-peer
    /// fallback was in force (graceful degradation, no peer-wait paid).
    pub peer_fallback: bool,
    /// Final resolution.
    pub path: TracePath,
    /// End-to-end frame latency.
    pub latency: SimDuration,
    /// Energy charged to the frame.
    pub energy: Millijoules,
}

/// A fixed-capacity ring of [`FrameTrace`]s (oldest evicted first).
///
/// Capacity 0 is the disabled state: [`record`](TraceRing::record)
/// returns immediately and callers can skip building traces entirely by
/// checking [`is_enabled`](TraceRing::is_enabled).
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    capacity: usize,
    buf: VecDeque<FrameTrace>,
}

impl TraceRing {
    /// A ring keeping the last `capacity` traces.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity,
            // Bound the eager allocation: a huge capacity only ever holds
            // what is actually recorded.
            buf: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// The disabled ring: records nothing, costs one branch per record.
    pub fn disabled() -> TraceRing {
        TraceRing::new(0)
    }

    /// Whether records are kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum traces retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records one trace, evicting the oldest when full. No-op when
    /// disabled.
    #[inline]
    pub fn record(&mut self, trace: FrameTrace) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(trace);
    }

    /// Iterates retained traces, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FrameTrace> {
        self.buf.iter()
    }

    /// Copies the retained traces out, oldest first.
    pub fn to_vec(&self) -> Vec<FrameTrace> {
        self.buf.iter().copied().collect()
    }

    /// Drops all retained traces (capacity unchanged).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_at(ms: u64) -> FrameTrace {
        FrameTrace {
            at: SimTime::from_millis(ms),
            motion_score: 0.0,
            cumulative_motion: 0.0,
            gate: TraceGate::LookupLocal,
            scene_changed: None,
            local: TraceLookup::Miss(TraceMissReason::EmptyIndex),
            peer: TracePeer::default(),
            radio_dark: false,
            peer_fallback: false,
            path: TracePath::Infer,
            latency: SimDuration::from_millis(80),
            energy: Millijoules::new(1.0),
        }
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = TraceRing::disabled();
        assert!(!ring.is_enabled());
        ring.record(trace_at(0));
        assert!(ring.is_empty());
        assert_eq!(ring.len(), 0);
    }

    #[test]
    fn ring_keeps_the_newest_traces() {
        let mut ring = TraceRing::new(3);
        assert!(ring.is_enabled());
        for ms in 0..5 {
            ring.record(trace_at(ms));
        }
        assert_eq!(ring.len(), 3);
        let kept: Vec<u64> = ring.iter().map(|t| t.at.as_millis()).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest evicted first");
        assert_eq!(ring.to_vec().len(), 3);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn names_and_orders() {
        assert_eq!(TracePath::all().len(), 5);
        assert_eq!(TracePath::ImuFastPath.name(), "imu-fast-path");
        assert_eq!(TracePath::EdgeHit.name(), "edge-hit");
        assert_eq!(TraceMissReason::TooFar.name(), "too-far");
    }
}
