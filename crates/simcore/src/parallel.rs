//! A dependency-free deterministic job pool.
//!
//! Experiments, claim checks and fleet shards are embarrassingly
//! parallel: every job is a self-contained computation with its own
//! seed, and nothing about a job's *result* depends on when or where it
//! ran. [`run_jobs_on`] exploits that: jobs are claimed from a shared
//! cursor by a fixed set of scoped worker threads, and results land in
//! a slot per job index — so the returned `Vec` is always in submission
//! order, byte-identical to running the jobs sequentially, no matter
//! how the scheduler interleaves the workers. Wall-clock drops from the
//! sum of job times to roughly the longest chain a single worker picks
//! up.
//!
//! Jobs may carry a label ([`run_labeled_jobs_on`]); a panicking job
//! then surfaces as `job '<label>' panicked: <payload>` on the calling
//! thread instead of an anonymous worker-thread abort, which is the
//! difference between "shard 37 of the sweep diverged" and a bare
//! backtrace.

use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count [`run_jobs`] uses: one per available core.
pub fn default_threads() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Runs `jobs` across [`default_threads`] workers; results come back in
/// submission order. See [`run_jobs_on`].
pub fn run_jobs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_jobs_on(default_threads(), jobs)
}

/// Runs `jobs` on up to `threads` scoped worker threads and returns the
/// results in submission order (index `i` of the output is job `i`'s
/// result, regardless of which worker ran it or when it finished).
///
/// With one thread — or one job — this degenerates to a plain sequential
/// loop on the calling thread, so a single-core runner pays no
/// synchronization cost.
///
/// # Panics
///
/// If a job panics, the panic is re-raised on the calling thread as
/// `job '#<index>' panicked: <payload>`.
pub fn run_jobs_on<T, F>(threads: NonZeroUsize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let labeled = jobs
        .into_iter()
        .enumerate()
        .map(|(i, job)| (format!("#{i}"), job))
        .collect();
    run_labeled_jobs_on(threads, labeled)
}

/// Like [`run_jobs_on`], but each job carries a label that identifies it
/// in the pool's panic message should it panic.
///
/// # Panics
///
/// If a job panics, the panic is re-raised on the calling thread as
/// `job '<label>' panicked: <payload>` once every worker has stopped.
/// When several jobs panic, the one with the lowest submission index is
/// reported.
pub fn run_labeled_jobs_on<T, F>(threads: NonZeroUsize, jobs: Vec<(String, F)>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let total = jobs.len();
    let workers = threads.get().min(total);
    if workers <= 1 {
        return jobs
            .into_iter()
            .map(|(label, job)| run_one(&label, job))
            .collect();
    }

    // One take-once cell per job, one write-once slot per result. The
    // cursor hands out job indexes; a worker runs its claimed job
    // *outside* any lock, then deposits the result at the same index. A
    // panicking job deposits its label + payload instead, and the first
    // (by submission order) failure is re-raised after the scope joins.
    let queue: Vec<Mutex<Option<(String, F)>>> =
        jobs.into_iter().map(|job| Mutex::new(Some(job))).collect();
    let slots: Vec<Mutex<Option<JobResult<T>>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let job = queue
                    .get(i)
                    .and_then(|cell| cell.lock().ok())
                    .and_then(|mut guard| guard.take());
                let Some((label, job)) = job else { continue };
                let result = match std::panic::catch_unwind(AssertUnwindSafe(job)) {
                    Ok(value) => JobResult::Done(value),
                    Err(payload) => JobResult::Panicked(label, payload_message(payload.as_ref())),
                };
                if let Some(slot) = slots.get(i) {
                    if let Ok(mut guard) = slot.lock() {
                        *guard = Some(result);
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| match slot.into_inner() {
            Ok(Some(JobResult::Done(result))) => result,
            Ok(Some(JobResult::Panicked(label, message))) => {
                panic!("job '{label}' panicked: {message}")
            }
            // Unreachable: every index below `total` is claimed exactly
            // once and deposits exactly one result.
            _ => unreachable!("job result missing"),
        })
        .collect()
}

enum JobResult<T> {
    Done(T),
    Panicked(String, String),
}

fn run_one<T, F>(label: &str, job: F) -> T
where
    F: FnOnce() -> T,
{
    match std::panic::catch_unwind(AssertUnwindSafe(job)) {
        Ok(value) => value,
        Err(payload) => {
            let message = payload_message(payload.as_ref());
            panic!("job '{label}' panicked: {message}")
        }
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_owned()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threads(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).expect("positive")
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs: Vec<_> = (0..50u64).map(|i| move || i * i).collect();
        let results = run_jobs_on(threads(4), jobs);
        let expected: Vec<u64> = (0..50).map(|i| i * i).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn parallel_matches_sequential() {
        let make = || {
            (0..32u64)
                .map(|i| move || i.wrapping_mul(2654435761))
                .collect::<Vec<_>>()
        };
        let sequential = run_jobs_on(threads(1), make());
        let parallel = run_jobs_on(threads(8), make());
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let jobs: Vec<_> = (0..3u64).map(|i| move || i + 1).collect();
        assert_eq!(run_jobs_on(threads(16), jobs), vec![1, 2, 3]);
    }

    #[test]
    fn empty_job_list_returns_empty() {
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = Vec::new();
        assert!(run_jobs_on(threads(4), jobs).is_empty());
    }

    #[test]
    fn boxed_jobs_heterogeneous_closures() {
        // The harness submits boxed closures of differing captures.
        let jobs: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new(|| "alpha".to_owned()),
            Box::new(|| format!("beta-{}", 2)),
        ];
        assert_eq!(
            run_jobs(jobs),
            vec!["alpha".to_owned(), "beta-2".to_owned()]
        );
    }

    #[test]
    fn panicking_job_reports_its_label() {
        let jobs: Vec<(String, Box<dyn FnOnce() -> u64 + Send>)> = vec![
            ("fine".to_owned(), Box::new(|| 1)),
            (
                "shard-3".to_owned(),
                Box::new(|| panic!("divergent checksum")),
            ),
            ("also-fine".to_owned(), Box::new(|| 3)),
        ];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_labeled_jobs_on(threads(4), jobs);
        }))
        .expect_err("pool should propagate the job panic");
        let message = payload_message(err.as_ref());
        assert!(
            message.contains("shard-3") && message.contains("divergent checksum"),
            "panic message should carry the job label: {message}"
        );
    }

    #[test]
    fn panicking_job_reports_its_label_sequentially() {
        // The single-thread fast path must label panics the same way.
        let jobs: Vec<(String, Box<dyn FnOnce() -> u64 + Send>)> =
            vec![("lonely".to_owned(), Box::new(|| panic!("boom")))];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_labeled_jobs_on(threads(1), jobs);
        }))
        .expect_err("sequential path should propagate the job panic");
        let message = payload_message(err.as_ref());
        assert!(
            message.contains("lonely") && message.contains("boom"),
            "panic message should carry the job label: {message}"
        );
    }

    #[test]
    fn unlabeled_panics_fall_back_to_job_index() {
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> =
            vec![Box::new(|| 0), Box::new(|| panic!("oops"))];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_jobs_on(threads(2), jobs);
        }))
        .expect_err("pool should propagate the job panic");
        let message = payload_message(err.as_ref());
        assert!(
            message.contains("#1") && message.contains("oops"),
            "panic message should carry the job index: {message}"
        );
    }
}
