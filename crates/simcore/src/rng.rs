//! Seeded, splittable randomness for reproducible experiments.
//!
//! Every experiment takes a single `u64` master seed. Components derive
//! independent child streams by *splitting* with a label
//! ([`SimRng::split`]), so adding a new consumer of randomness (say, a 17th
//! device) never perturbs the streams of existing consumers — a property a
//! single shared RNG does not have.
//!
//! Besides uniform draws (via the [`rand`] traits), this module provides the
//! handful of distributions the simulators need — normal, log-normal,
//! exponential — implemented directly so the repository needs no extra
//! distribution crate.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random stream.
///
/// Implements [`RngCore`], so it can be used anywhere a `rand` RNG is
/// expected.
///
/// # Example
///
/// ```
/// use simcore::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed(42).split("device-0");
/// let mut b = SimRng::seed(42).split("device-0");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // same seed + label => same stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates the root stream for a master seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from (the master seed for a root
    /// stream, a derived seed for a split child).
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// Splitting is a pure function of `(parent seed, label)`: it does not
    /// consume state from the parent, so children can be created in any
    /// order without affecting each other.
    ///
    /// Sibling labels must be unique within one derivation scope: calling
    /// `split("x")` twice on the same parent yields the *same* stream, not
    /// two independent ones, silently correlating whatever the two copies
    /// feed (`xtask lint` rule S flags duplicate sibling labels). Derive
    /// once and bind the child, or disambiguate via [`SimRng::split_index`].
    pub fn split(&self, label: &str) -> SimRng {
        let child_seed = derive_seed(self.seed, label.as_bytes());
        SimRng::seed(child_seed)
    }

    /// Derives an independent child stream identified by an index, for
    /// per-entity streams (devices, peers, classes).
    ///
    /// The same sibling-uniqueness rule as [`SimRng::split`] applies to the
    /// `(label, index)` pair: repeating a pair on one parent re-derives the
    /// identical stream.
    pub fn split_index(&self, label: &str, index: u64) -> SimRng {
        let mut bytes = Vec::with_capacity(label.len() + 8);
        bytes.extend_from_slice(label.as_bytes());
        bytes.extend_from_slice(&index.to_le_bytes());
        SimRng::seed(derive_seed(self.seed, &bytes))
    }

    /// A standard-normal draw (mean 0, variance 1) via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        // Box–Muller: two uniforms -> one normal (the second is discarded to
        // keep the stream's consumption rate independent of caller pattern).
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "normal: std_dev must be finite and non-negative, got {std_dev}"
        );
        mean + std_dev * self.std_normal()
    }

    /// A log-normal draw parameterized by the mean and standard deviation of
    /// the *underlying* normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// An exponential draw with the given rate `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "exponential: lambda must be positive, got {lambda}"
        );
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / lambda
    }

    /// A uniform draw in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        self.inner.gen_range(low..high)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: n must be positive");
        self.inner.gen_range(0..n)
    }

    /// Samples an index from a discrete distribution given by non-negative
    /// `weights` (not necessarily normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(
            !weights.is_empty(),
            "weighted_index: weights must be non-empty"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(
                    w.is_finite() && w >= 0.0,
                    "weighted_index: weight must be finite and non-negative, got {w}"
                );
                w
            })
            .sum();
        assert!(total > 0.0, "weighted_index: weights must not all be zero");
        let mut target = self.inner.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// A unit vector with `dim` components, drawn uniformly on the sphere.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn unit_vector(&mut self, dim: usize) -> Vec<f64> {
        assert!(dim > 0, "unit_vector: dim must be positive");
        loop {
            let v: Vec<f64> = (0..dim).map(|_| self.std_normal()).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-12 {
                return v.into_iter().map(|x| x / norm).collect();
            }
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// FNV-1a-style seed derivation mixing a parent seed with a label.
fn derive_seed(parent: u64, label: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ parent.rotate_left(17);
    for &b in label {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    // Final avalanche (splitmix64 finisher) so nearby labels diverge fully.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(8);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_order_independent() {
        let root = SimRng::seed(99);
        let mut a1 = root.split("alpha");
        let _ = root.split("beta");
        let mut a2 = SimRng::seed(99).split("alpha");
        assert_eq!(a1.next_u64(), a2.next_u64());
    }

    #[test]
    fn split_children_are_distinct() {
        let root = SimRng::seed(99);
        let mut a = root.split("alpha");
        let mut b = root.split("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_index_distinguishes_indices() {
        let root = SimRng::seed(1);
        let mut d0 = root.split_index("device", 0);
        let mut d1 = root.split_index("device", 1);
        assert_ne!(d0.next_u64(), d1.next_u64());
    }

    #[test]
    fn duplicate_sibling_labels_correlate_streams() {
        // The hazard rule S exists for: two derivations under the same
        // label are the same stream, so components that believe they hold
        // independent randomness draw identical sequences.
        let root = SimRng::seed(42);
        let mut first = root.split("noise");
        let mut second = root.split("noise");
        for _ in 0..16 {
            assert_eq!(first.next_u64(), second.next_u64());
        }
        let mut a = root.split_index("peer", 3);
        let mut b = root.split_index("peer", 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SimRng::seed(5);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = SimRng::seed(6);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = SimRng::seed(7);
        assert!((0..1000).all(|_| rng.log_normal(0.0, 1.0) > 0.0));
    }

    #[test]
    fn chance_respects_probability() {
        let mut rng = SimRng::seed(8);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn weighted_index_matches_weights() {
        let mut rng = SimRng::seed(9);
        let weights = [1.0, 3.0, 0.0, 6.0];
        let mut counts = [0usize; 4];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!((counts[1] as f64 / counts[0] as f64 - 3.0).abs() < 0.5);
        assert!((counts[3] as f64 / counts[0] as f64 - 6.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn weighted_index_rejects_all_zero() {
        SimRng::seed(1).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed(10);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "astronomically unlikely identity shuffle"
        );
    }

    #[test]
    fn unit_vector_has_unit_norm() {
        let mut rng = SimRng::seed(11);
        for dim in [1, 2, 8, 64] {
            let v = rng.unit_vector(dim);
            assert_eq!(v.len(), dim);
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SimRng::seed(12);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
