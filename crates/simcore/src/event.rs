//! A deterministic discrete-event queue.
//!
//! Events are delivered in timestamp order; events scheduled for the same
//! instant are delivered in the order they were scheduled (FIFO), which
//! makes multi-device simulations reproducible regardless of hash-map
//! iteration order or other incidental sources of nondeterminism.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of simulation events.
///
/// `E` is the caller's event payload type. The queue imposes no trait bounds
/// on `E` beyond what the caller needs.
///
/// # Example
///
/// ```
/// use simcore::{EventQueue, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { FrameReady, PeerReply }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(10), Ev::PeerReply);
/// q.schedule(SimTime::from_millis(1), Ev::FrameReady);
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), Ev::FrameReady)));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(10), Ev::PeerReply)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (and, on ties,
        // the first-scheduled) entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event, or [`SimTime::ZERO`] before any pop.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` for delivery at instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](Self::now) — scheduling into
    /// the past indicates a bug in the caller's model.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "schedule: event at {at} is in the past (now = {})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// The timestamp of the earliest pending event, if any, without
    /// removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_millis(7), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule(q.now(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 2)));
    }

    #[test]
    fn peek_len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(3), "x");
        q.schedule(SimTime::from_millis(1), "y");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn arbitrary_schedules_deliver_in_order() {
        // Deterministic pseudo-random sweep: across many schedules, pops
        // come out sorted by (time, scheduling order).
        let mut state = 0x1234_5678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 1_000
        };
        for round in 0..50 {
            let mut q = EventQueue::new();
            let n = 1 + (round * 7) % 64;
            let mut scheduled: Vec<(u64, usize)> = Vec::new();
            for seq in 0..n {
                let at = next();
                q.schedule(SimTime::from_millis(at), seq);
                scheduled.push((at, seq));
            }
            let mut last = (0u64, 0usize);
            let mut popped = 0;
            while let Some((t, seq)) = q.pop() {
                let key = (
                    t.as_millis(),
                    scheduled.iter().position(|&(_, s)| s == seq).unwrap(),
                );
                assert!(
                    key >= last,
                    "round {round}: out-of-order delivery {key:?} after {last:?}"
                );
                last = key;
                popped += 1;
            }
            assert_eq!(popped, n);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        q.schedule(t + SimDuration::from_millis(1), 2);
        q.schedule(t + SimDuration::from_millis(3), 4);
        q.schedule(t + SimDuration::from_millis(2), 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 3, 4]);
    }
}
