//! Physical-unit newtypes for latency and energy figures.
//!
//! Raw `f64`s with a unit baked into the *name* (`base_ms`, `energy_mj`)
//! are the classic source of silent unit-mixing bugs: nothing stops a
//! millisecond value from being added to a microsecond one. These
//! newtypes move the unit into the *type*, so mixing units is a compile
//! error and the `xtask lint` unit-safety rule (U) can insist that raw
//! suffix-named floats never participate in arithmetic outside this
//! module.
//!
//! All three wrap an `f64` with `#[serde(transparent)]`, so serialized
//! reports (the golden JSON files under `results/`) are byte-identical
//! to the pre-newtype encoding.
//!
//! # Example
//!
//! ```
//! use simcore::units::{Micros, Millijoules, Millis};
//!
//! let base = Millis::new(45.0);
//! let throttled = base * 2.6;
//! assert_eq!(throttled.value(), 117.0);
//! assert_eq!(Micros::from(base).value(), 45_000.0);
//!
//! let total: Millijoules = [Millijoules::new(8.0), Millijoules::new(0.5)]
//!     .into_iter()
//!     .sum();
//! assert_eq!(total.value(), 8.5);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

macro_rules! unit_newtype {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw magnitude.
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// The raw magnitude (in this type's unit).
            pub const fn value(self) -> f64 {
                self.0
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        /// Scaling by a dimensionless factor.
        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        /// Scaling by a dimensionless divisor.
        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// The dimensionless ratio of two quantities of the same unit.
        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, |a, b| a + b)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.3}", $suffix), self.0)
            }
        }
    };
}

unit_newtype!(
    /// A latency figure in milliseconds.
    Millis,
    "ms"
);
unit_newtype!(
    /// A latency figure in microseconds.
    Micros,
    "us"
);
unit_newtype!(
    /// An energy figure in millijoules.
    Millijoules,
    "mJ"
);

impl From<Millis> for Micros {
    fn from(ms: Millis) -> Micros {
        Micros(ms.0 * 1e3)
    }
}

impl From<Micros> for Millis {
    fn from(us: Micros) -> Millis {
        Millis(us.0 / 1e3)
    }
}

impl Millis {
    /// Converts to a [`SimDuration`], saturating below at zero.
    pub fn to_duration(self) -> SimDuration {
        SimDuration::from_millis_f64(self.0)
    }

    /// The exact float milliseconds of a [`SimDuration`].
    pub fn from_duration(d: SimDuration) -> Millis {
        Millis(d.as_millis_f64())
    }
}

impl Micros {
    /// Converts to a [`SimDuration`], saturating below at zero.
    pub fn to_duration(self) -> SimDuration {
        SimDuration::from_secs_f64(self.0 / 1e6)
    }

    /// The exact float microseconds of a [`SimDuration`].
    pub fn from_duration(d: SimDuration) -> Micros {
        Micros(d.as_nanos() as f64 / 1e3)
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn conversions_between_scales() {
        assert_eq!(Micros::from(Millis::new(1.5)).value(), 1_500.0);
        assert_eq!(Millis::from(Micros::new(250.0)).value(), 0.25);
    }

    #[test]
    fn arithmetic_and_ratio() {
        let mut total = Millijoules::ZERO;
        total += Millijoules::new(2.0);
        total += Millijoules::new(0.5);
        assert_eq!(total.value(), 2.5);
        assert_eq!((total - Millijoules::new(0.5)).value(), 2.0);
        assert_eq!((total * 2.0).value(), 5.0);
        assert_eq!((total / 2.0).value(), 1.25);
        assert_eq!(Millijoules::new(1.0) / Millijoules::new(4.0), 0.25);
    }

    #[test]
    fn summation_matches_fold() {
        let xs = [0.1, 0.2, 0.3, 0.4];
        let sum: Millijoules = xs.iter().map(|&x| Millijoules::new(x)).sum();
        assert_eq!(sum.value(), xs.iter().sum::<f64>());
    }

    #[test]
    fn duration_bridges() {
        let ms = Millis::new(20.5);
        assert_eq!(ms.to_duration().as_micros(), 20_500);
        assert_eq!(
            Millis::from_duration(SimDuration::from_micros(1_500)).value(),
            1.5
        );
        assert_eq!(Micros::new(750.0).to_duration().as_nanos(), 750_000);
        assert_eq!(
            Micros::from_duration(SimDuration::from_nanos(2_500)).value(),
            2.5
        );
    }

    #[test]
    fn serde_is_transparent() {
        let j = serde_json::to_string(&Millis::new(45.0)).unwrap();
        assert_eq!(j, "45.0");
        let back: Millis = serde_json::from_str("45.0").unwrap();
        assert_eq!(back, Millis::new(45.0));
    }

    #[test]
    fn display_shows_unit() {
        assert_eq!(format!("{}", Millis::new(1.5)), "1.500ms");
        assert_eq!(format!("{}", Micros::new(2.0)), "2.000us");
        assert_eq!(format!("{}", Millijoules::new(3.25)), "3.250mJ");
    }
}
