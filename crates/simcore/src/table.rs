//! Aligned-text tables and CSV emission for experiment reports.
//!
//! Every experiment binary prints its table with [`Table`] and also writes
//! the same rows as CSV so results can be post-processed. Keeping this in
//! `simcore` means one formatting implementation serves every `R-*`
//! experiment.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// An in-memory table: a header row plus data rows of equal width.
///
/// # Example
///
/// ```
/// use simcore::table::Table;
///
/// let mut t = Table::new(vec!["scenario", "latency_ms"]);
/// t.row(vec!["stationary".into(), "3.1".into()]);
/// let text = t.to_string();
/// assert!(text.contains("scenario"));
/// assert!(text.contains("stationary"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "Table::new: header must be non-empty");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row: expected {} cells, got {}",
            self.header.len(),
            cells.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The header cells.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as RFC-4180-style CSV (quotes cells containing
    /// commas, quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let encoded: Vec<String> = cells.iter().map(|c| csv_escape(c)).collect();
            out.push_str(&encoded.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, w) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                write!(f, "{cell:<w$}", w = *w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `prec` decimal places — shorthand used by all
/// experiment binaries when filling table cells.
pub fn fnum(value: f64, prec: usize) -> String {
    format!("{value:.prec$}")
}

/// Formats a fraction as a percentage with one decimal place, e.g. `0.941`
/// becomes `"94.1%"`.
pub fn fpct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a-long-name".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Column two starts at the same offset in every row.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(lines[3].find("22").unwrap(), col);
    }

    #[test]
    fn csv_round_trips_simple_cells() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn csv_escapes_specials() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["has,comma".into()]);
        t.row(vec!["has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "expected 2 cells")]
    fn row_width_is_enforced() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join(format!("simcore-table-test-{}", std::process::id()));
        let path = dir.join("nested").join("out.csv");
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into()]);
        t.write_csv(&path).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "a\n1\n");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnum_and_fpct_format() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fpct(0.941), "94.1%");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
    }
}
