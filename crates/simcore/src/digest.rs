//! A mergeable fixed-bucket latency digest.
//!
//! [`Summary`](crate::Summary) needs the raw sample set, which a
//! sharded or swept run no longer has in one place. [`LatencyDigest`]
//! is the mergeable counterpart: samples land in a *fixed* bank of
//! log-spaced buckets (HDR-style: exact below 16 ns, eight sub-buckets
//! per octave above, ≤ 12.5 % relative width), and every piece of state
//! is an integer — bucket counts, nanosecond sum, nanosecond min/max.
//! Merging two digests is therefore plain integer addition and min/max,
//! which makes [`merge`](LatencyDigest::merge) exactly commutative and
//! associative: any tree of shard-merges yields the bit-identical
//! digest, independent of order. Derived statistics (mean, quantiles,
//! [`to_summary`](LatencyDigest::to_summary)) are pure functions of that
//! state, so they inherit the same order-independence.

use serde::{Deserialize, Serialize};

use crate::stats::Summary;

/// Sub-bucket resolution: eight sub-buckets per power-of-two octave.
const SUB_BITS: u32 = 3;
const SUBS: u64 = 1 << SUB_BITS;
/// Values below `2 * SUBS` get one exact bucket each.
const EXACT: u64 = SUBS * 2;
/// Total bucket count for the full `u64` nanosecond range.
const NUM_BUCKETS: usize = EXACT as usize + ((63 - SUB_BITS) as usize) * (SUBS as usize);

/// Bucket index for a nanosecond value. Monotone in `v`.
fn bucket_of(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    let sub = (v >> (octave - SUB_BITS)) - SUBS;
    EXACT as usize + ((octave - SUB_BITS - 1) as usize) * (SUBS as usize) + sub as usize
}

/// Inclusive lower edge (ns) of bucket `b`.
fn bucket_lower(b: usize) -> u64 {
    if (b as u64) < EXACT {
        return b as u64;
    }
    let rel = b - EXACT as usize;
    let octave = SUB_BITS + 1 + (rel / SUBS as usize) as u32;
    let sub = (rel % SUBS as usize) as u64;
    (SUBS + sub) << (octave - SUB_BITS)
}

/// Representative value (ns) reported for samples in bucket `b`: the
/// exact value for exact buckets, the bucket midpoint otherwise.
fn bucket_representative(b: usize) -> f64 {
    if (b as u64) < EXACT {
        return b as f64;
    }
    let lower = bucket_lower(b);
    let upper = if b + 1 < NUM_BUCKETS {
        bucket_lower(b + 1)
    } else {
        u64::MAX
    };
    (lower as f64 + upper as f64) / 2.0
}

const NS_PER_MS: f64 = 1e6;

/// A mergeable fixed-bucket latency histogram (state is all-integer, so
/// merge order can never change the result).
///
/// # Example
///
/// ```
/// use simcore::LatencyDigest;
///
/// let mut a = LatencyDigest::new();
/// let mut b = LatencyDigest::new();
/// a.record_ms(1.5);
/// b.record_ms(40.0);
/// a.merge(&b);
/// assert_eq!(a.count(), 2);
/// assert!((a.mean_ms() - 20.75).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "DigestRepr", into = "DigestRepr")]
pub struct LatencyDigest {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyDigest {
    fn default() -> Self {
        LatencyDigest::new()
    }
}

impl LatencyDigest {
    /// Creates an empty digest.
    pub fn new() -> LatencyDigest {
        LatencyDigest {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample in milliseconds (quantized to whole
    /// nanoseconds, which is below the digest's bucket resolution).
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn record_ms(&mut self, ms: f64) {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "record_ms: sample must be finite and non-negative, got {ms}"
        );
        // `as u64` saturates, so absurdly large samples land in the top
        // bucket instead of wrapping.
        let ns = (ms * NS_PER_MS).round() as u64;
        self.counts[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another digest into this one. Pure integer sums and
    /// min/max: exactly commutative and associative.
    pub fn merge(&mut self, other: &LatencyDigest) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean in milliseconds (0.0 if empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_ns as f64 / self.count as f64) / NS_PER_MS
        }
    }

    /// Exact minimum in milliseconds (0.0 if empty).
    pub fn min_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_ns as f64 / NS_PER_MS
        }
    }

    /// Exact maximum in milliseconds (0.0 if empty).
    pub fn max_ms(&self) -> f64 {
        self.max_ns as f64 / NS_PER_MS
    }

    /// Approximate `q`-quantile in milliseconds (bucket representative,
    /// ≤ 12.5 % relative error; exact min/max clamp the tails).
    ///
    /// # Panics
    ///
    /// Panics if the digest is empty or `q` is outside `[0, 1]`.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        assert!(self.count > 0, "quantile_ms: empty digest");
        assert!((0.0..=1.0).contains(&q), "quantile_ms: q out of range: {q}");
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                let rep = bucket_representative(b) / NS_PER_MS;
                return rep.clamp(self.min_ms(), self.max_ms());
            }
        }
        self.max_ms()
    }

    /// Approximate population standard deviation in milliseconds,
    /// computed from bucket representatives (deterministic given the
    /// digest state).
    pub fn std_dev_ms(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let mean = self.mean_ms();
        let mut var = 0.0;
        for (b, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let rep = bucket_representative(b) / NS_PER_MS;
            var += n as f64 * (rep - mean) * (rep - mean);
        }
        (var / self.count as f64).sqrt()
    }

    /// Condenses the digest into a [`Summary`]-shaped record: count,
    /// mean, min and max are exact; percentiles and std-dev carry the
    /// bucket approximation.
    pub fn to_summary(&self) -> Summary {
        if self.count == 0 {
            return Summary::from_samples(&[]);
        }
        Summary {
            count: usize::try_from(self.count).unwrap_or(usize::MAX),
            mean: self.mean_ms(),
            std_dev: self.std_dev_ms(),
            min: self.min_ms(),
            max: self.max_ms(),
            p50: self.quantile_ms(0.50),
            p90: self.quantile_ms(0.90),
            p95: self.quantile_ms(0.95),
            p99: self.quantile_ms(0.99),
        }
    }
}

/// Sparse on-disk form: only non-empty buckets are written, so a job
/// state file stays readable.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DigestRepr {
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
    buckets: Vec<(u32, u64)>,
}

impl From<LatencyDigest> for DigestRepr {
    fn from(digest: LatencyDigest) -> DigestRepr {
        DigestRepr {
            sum_ns: digest.sum_ns,
            min_ns: digest.min_ns,
            max_ns: digest.max_ns,
            buckets: digest
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(b, &n)| (b as u32, n))
                .collect(),
        }
    }
}

impl From<DigestRepr> for LatencyDigest {
    fn from(repr: DigestRepr) -> LatencyDigest {
        let mut digest = LatencyDigest::new();
        for (b, n) in repr.buckets {
            let slot = (b as usize).min(NUM_BUCKETS - 1);
            digest.counts[slot] += n;
            digest.count += n;
        }
        digest.sum_ns = repr.sum_ns;
        digest.min_ns = repr.min_ns;
        digest.max_ns = repr.max_ns;
        digest
    }
}

#[cfg(test)]
// Tests compare exactly-constructed integer-backed floats.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn bucket_function_is_monotone_and_in_range() {
        for shift in 0..64u32 {
            for nudge in [0u64, 1, 3] {
                let v = (1u64 << shift).saturating_add(nudge);
                let b = bucket_of(v);
                assert!(b < NUM_BUCKETS, "bucket {b} out of range for {v}");
                if v < u64::MAX {
                    assert!(
                        bucket_of(v + 1) >= b,
                        "bucket must be monotone at {v} -> {}",
                        v + 1
                    );
                }
                if v > 0 {
                    assert!(
                        bucket_of(v - 1) <= b,
                        "bucket must be monotone at {} -> {v}",
                        v - 1
                    );
                }
            }
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_lower_inverts_bucket_of() {
        for b in 0..NUM_BUCKETS {
            let lower = bucket_lower(b);
            assert_eq!(bucket_of(lower), b, "lower edge of bucket {b}");
            if lower > 0 {
                assert_eq!(bucket_of(lower - 1), b - 1, "below lower edge of {b}");
            }
        }
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut d = LatencyDigest::new();
        for ms in [1.0, 2.0, 3.0, 10.0] {
            d.record_ms(ms);
        }
        assert_eq!(d.count(), 4);
        assert_eq!(d.mean_ms(), 4.0);
        assert_eq!(d.min_ms(), 1.0);
        assert_eq!(d.max_ms(), 10.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let samples: Vec<f64> = (1..200).map(|i| (i * i) as f64 * 0.013).collect();
        let mut whole = LatencyDigest::new();
        samples.iter().for_each(|&x| whole.record_ms(x));
        let mut left = LatencyDigest::new();
        let mut right = LatencyDigest::new();
        for (i, &x) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record_ms(x);
            } else {
                right.record_ms(x);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut d = LatencyDigest::new();
        d.record_ms(5.0);
        let before = d.clone();
        d.merge(&LatencyDigest::new());
        assert_eq!(d, before);
        let mut empty = LatencyDigest::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantiles_are_close_to_exact() {
        let samples: Vec<f64> = (0..1000).map(|i| 1.0 + (i as f64) * 0.25).collect();
        let mut d = LatencyDigest::new();
        samples.iter().for_each(|&x| d.record_ms(x));
        let exact = Summary::from_samples(&samples);
        let approx = d.to_summary();
        for (a, e) in [
            (approx.p50, exact.p50),
            (approx.p90, exact.p90),
            (approx.p99, exact.p99),
        ] {
            let rel = (a - e).abs() / e;
            assert!(rel < 0.13, "quantile off by {rel}: approx {a} vs exact {e}");
        }
        assert_eq!(approx.count, exact.count);
        assert_eq!(approx.min, exact.min);
        assert_eq!(approx.max, exact.max);
    }

    #[test]
    fn empty_digest_summarizes_to_zeros() {
        let d = LatencyDigest::new();
        assert!(d.is_empty());
        let s = d.to_summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn serde_round_trip_is_lossless() {
        let mut d = LatencyDigest::new();
        for ms in [0.0, 0.5, 3.25, 17.0, 400.0, 12345.6] {
            d.record_ms(ms);
        }
        let json = serde_json::to_string(&d).expect("serialize");
        let back: LatencyDigest = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, d);
    }
}
