//! Run-time measurement collection.
//!
//! Simulations record what happened through [`Counter`]s (monotone event
//! counts) and [`Histogram`]s (distributions of per-event values such as
//! latency). A [`MetricSet`] groups named metrics for an experiment run and
//! renders them for reports.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::stats::Summary;

/// A monotonically increasing event count.
///
/// # Example
///
/// ```
/// use simcore::Counter;
///
/// let mut hits = Counter::new();
/// hits.incr();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A distribution of observed values.
///
/// Stores every sample (experiments here are small enough that exact
/// percentiles beat approximate sketches) and summarizes on demand.
///
/// # Example
///
/// ```
/// use simcore::Histogram;
///
/// let mut lat = Histogram::new();
/// for ms in [1.0, 2.0, 3.0, 4.0] {
///     lat.record(ms);
/// }
/// assert_eq!(lat.count(), 4);
/// assert!((lat.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn record(&mut self, value: f64) {
        assert!(
            value.is_finite(),
            "record: value must be finite, got {value}"
        );
        self.samples.push(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// The recorded samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// A full statistical summary of the recorded values.
    pub fn summary(&self) -> Summary {
        Summary::from_samples(&self.samples)
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// A named collection of counters and histograms for one run.
///
/// Metric names are free-form strings; `BTreeMap` keeps report output in a
/// stable order.
///
/// # Example
///
/// ```
/// use simcore::MetricSet;
///
/// let mut m = MetricSet::new();
/// m.counter("cache.hit").incr();
/// m.histogram("latency_ms").record(12.5);
/// assert_eq!(m.counter_value("cache.hit"), 1);
/// assert_eq!(m.counter_value("cache.miss"), 0); // absent reads as zero
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricSet {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricSet {
    /// Creates an empty metric set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero if absent.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_owned()).or_default()
    }

    /// The histogram named `name`, created empty if absent.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// The current value of counter `name`, or 0 if it was never touched.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.get())
    }

    /// A read-only view of histogram `name`, if it exists.
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over `(name, count)` for all counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Iterates over `(name, histogram)` for all histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another set into this one: counters add, histograms append.
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, c) in &other.counters {
            self.counters.entry(name.clone()).or_default().add(c.get());
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// The fraction `numerator / (numerator + …rest)` over counters, a
    /// convenience for hit-rate style ratios. Returns 0.0 when all counters
    /// are zero.
    pub fn ratio(&self, numerator: &str, denominator_terms: &[&str]) -> f64 {
        let num = self.counter_value(numerator) as f64;
        let den: f64 = denominator_terms
            .iter()
            .map(|n| self.counter_value(n) as f64)
            .sum();
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

impl fmt::Display for MetricSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for (name, value) in self.counters() {
            writeln!(f, "  {name} = {value}")?;
        }
        writeln!(f, "histograms:")?;
        for (name, h) in self.histograms() {
            let s = h.summary();
            writeln!(
                f,
                "  {name}: n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
                s.count, s.mean, s.p50, s.p95, s.p99, s.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(5);
        assert_eq!(c.get(), 6);
        assert_eq!(c.to_string(), "6");
    }

    #[test]
    fn histogram_mean_and_count() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        h.record(10.0);
        h.record(20.0);
        assert_eq!(h.count(), 2);
        assert!((h.mean() - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn histogram_rejects_nan() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    fn histogram_merge_appends() {
        let mut a = Histogram::new();
        a.record(1.0);
        let mut b = Histogram::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn metric_set_autocreates_and_reads_absent_as_zero() {
        let mut m = MetricSet::new();
        m.counter("a").add(3);
        assert_eq!(m.counter_value("a"), 3);
        assert_eq!(m.counter_value("never"), 0);
        assert!(m.histogram_ref("never").is_none());
    }

    #[test]
    fn metric_set_merge_adds_and_appends() {
        let mut a = MetricSet::new();
        a.counter("hits").add(1);
        a.histogram("lat").record(1.0);
        let mut b = MetricSet::new();
        b.counter("hits").add(2);
        b.counter("misses").add(4);
        b.histogram("lat").record(3.0);
        a.merge(&b);
        assert_eq!(a.counter_value("hits"), 3);
        assert_eq!(a.counter_value("misses"), 4);
        assert_eq!(a.histogram_ref("lat").unwrap().count(), 2);
    }

    #[test]
    fn ratio_computes_hit_rate() {
        let mut m = MetricSet::new();
        m.counter("hit").add(3);
        m.counter("miss").add(1);
        let r = m.ratio("hit", &["hit", "miss"]);
        assert!((r - 0.75).abs() < 1e-12);
        assert_eq!(MetricSet::new().ratio("hit", &["hit", "miss"]), 0.0);
    }

    #[test]
    fn display_is_nonempty_and_ordered() {
        let mut m = MetricSet::new();
        m.counter("b").incr();
        m.counter("a").incr();
        m.histogram("lat").record(1.0);
        let out = m.to_string();
        let a_pos = out.find("a =").unwrap();
        let b_pos = out.find("b =").unwrap();
        assert!(a_pos < b_pos, "BTreeMap order expected");
        assert!(out.contains("lat:"));
    }
}
