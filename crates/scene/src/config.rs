//! Knobs of the synthetic world.

use serde::{Deserialize, Serialize};

/// Parameters of the class universe, object layout and frame rendering.
///
/// The defaults give a world where approximate caching behaves like it
/// does on real mobile-vision workloads: descriptors of the same subject
/// from similar views are ~an order of magnitude closer than descriptors
/// of different classes, so a distance threshold separates them cleanly —
/// until views diverge or churn replaces the subject.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Number of recognition classes.
    pub num_classes: usize,
    /// Dimension of raw frame descriptors.
    pub descriptor_dim: usize,
    /// Radius of the sphere class centres are drawn on. Larger ⇒ classes
    /// further apart ⇒ easier recognition and safer reuse.
    pub class_spread: f64,
    /// Standard deviation of per-object offsets from the class centre
    /// (distinct instances of one class are not identical).
    pub object_offset_std: f64,
    /// Magnitude of the smooth view-dependent descriptor component (how
    /// much the appearance changes per radian of viewing-angle change).
    pub view_dependence: f64,
    /// Standard deviation of per-shot sensor noise added to every frame.
    pub sensor_noise_std: f64,
    /// Number of objects placed in the world.
    pub num_objects: usize,
    /// Half-width of the square world, metres (objects placed in
    /// `[-extent, extent]²`).
    pub world_extent: f64,
    /// Camera field of view, radians.
    pub fov: f64,
    /// Maximum recognition distance, metres (subjects further away than
    /// this are not preferred, but the nearest-bearing fallback still
    /// applies so every frame has a subject).
    pub max_view_distance: f64,
    /// Global appearance drift, descriptor units per second: a slow,
    /// shared shift of every frame's descriptor along a fixed direction,
    /// modelling gradual lighting change. Ages cached entries — a key
    /// cached at `t₀` is `drift_rate · (t − t₀)` away from a fresh
    /// same-view key. `0.0` (the default) disables drift.
    pub drift_rate: f64,
    /// Fraction of time the view is blocked by a transient occluder (a
    /// passer-by, a hand). During an occlusion episode the frame shows —
    /// and is ground-truth-labelled as — the occluder's class, so cached
    /// entries for the real subject neither match nor help. `0.0` (the
    /// default) disables occlusions; episodes last ~[`OCCLUSION_EPISODE_SECS`]
    /// seconds each.
    pub occlusion_fraction: f64,
}

/// Length of one occlusion episode, seconds.
pub const OCCLUSION_EPISODE_SECS: f64 = 0.7;

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            num_classes: 20,
            descriptor_dim: 256,
            class_spread: 10.0,
            object_offset_std: 0.8,
            view_dependence: 2.0,
            sensor_noise_std: 0.25,
            num_objects: 60,
            world_extent: 25.0,
            fov: 70.0f64.to_radians(),
            max_view_distance: 20.0,
            drift_rate: 0.0,
            occlusion_fraction: 0.0,
        }
    }
}

impl SceneConfig {
    /// Validates the invariants every consumer assumes.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or any scale is negative/non-finite.
    pub fn validate(&self) {
        assert!(
            self.num_classes > 0,
            "SceneConfig: num_classes must be positive"
        );
        assert!(
            self.descriptor_dim > 0,
            "SceneConfig: descriptor_dim must be positive"
        );
        assert!(
            self.num_objects > 0,
            "SceneConfig: num_objects must be positive"
        );
        for (name, v) in [
            ("class_spread", self.class_spread),
            ("object_offset_std", self.object_offset_std),
            ("view_dependence", self.view_dependence),
            ("sensor_noise_std", self.sensor_noise_std),
            ("world_extent", self.world_extent),
            ("fov", self.fov),
            ("max_view_distance", self.max_view_distance),
            ("drift_rate", self.drift_rate),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "SceneConfig: {name} must be finite and non-negative, got {v}"
            );
        }
        assert!(self.fov > 0.0, "SceneConfig: fov must be positive");
        assert!(
            (0.0..=1.0).contains(&self.occlusion_fraction),
            "SceneConfig: occlusion_fraction must be in [0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SceneConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "num_classes must be positive")]
    fn zero_classes_rejected() {
        SceneConfig {
            num_classes: 0,
            ..SceneConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "sensor_noise_std")]
    fn negative_noise_rejected() {
        SceneConfig {
            sensor_noise_std: -1.0,
            ..SceneConfig::default()
        }
        .validate();
    }

    #[test]
    fn serde_round_trip() {
        let c = SceneConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<SceneConfig>(&json).unwrap(), c);
    }
}
