//! The rendered camera frame.

use serde::{Deserialize, Serialize};

use features::FeatureVector;
use simcore::SimTime;

use crate::camera::ViewGeometry;
use crate::classes::ClassId;
use crate::world::ObjectId;

/// One captured frame: what the recognition pipeline consumes, plus the
/// ground truth the evaluation scores against (the pipeline never reads
/// `truth` — only the experiment harness does).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Capture instant.
    pub at: SimTime,
    /// Raw frame descriptor (the stand-in for pixels / an early DNN layer).
    pub descriptor: FeatureVector,
    /// Ground-truth class of the viewed subject.
    pub truth: ClassId,
    /// Identity of the viewed object instance.
    pub subject: ObjectId,
    /// Geometry of the view that produced this frame.
    pub geometry: ViewGeometry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_is_plain_data() {
        let f = Frame {
            at: SimTime::from_millis(33),
            descriptor: FeatureVector::zeros(4),
            truth: ClassId(2),
            subject: ObjectId(9),
            geometry: ViewGeometry {
                bearing_offset: 0.1,
                distance: 3.0,
            },
        };
        let clone = f.clone();
        assert_eq!(f, clone);
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(serde_json::from_str::<Frame>(&json).unwrap(), f);
    }
}
