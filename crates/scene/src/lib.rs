//! A synthetic visual world for approximate-caching experiments.
//!
//! Approximate caching exploits exactly one property of camera frames:
//! *similar views produce nearby feature descriptors, different subjects
//! produce distant ones*. This crate makes that property explicit and
//! tunable instead of depending on image files:
//!
//! - [`ClassUniverse`] — recognition classes as well-separated cluster
//!   centres in descriptor space, with controlled intra-class variation.
//! - [`World`] — class instances placed in a 2-D environment, with
//!   optional churn (objects being swapped out over time).
//! - [`Camera`] — resolves which object a pose is looking at.
//! - [`FrameRenderer`] — produces a [`Frame`]: the descriptor of the
//!   viewed object under smooth view-dependent variation plus per-shot
//!   sensor noise, together with the ground-truth label.
//!
//! The camera consumes poses from [`imu::MotionTrace`], so synthetic video
//! and synthetic inertial data always describe the same physical motion.
//!
//! # Example
//!
//! ```
//! use scene::{ClassUniverse, FrameRenderer, SceneConfig, World};
//! use imu::Pose;
//! use simcore::{SimRng, SimTime};
//!
//! let mut rng = SimRng::seed(7);
//! let config = SceneConfig::default();
//! let universe = ClassUniverse::generate(&config, &mut rng);
//! let world = World::generate(&universe, &config, &mut rng);
//! let renderer = FrameRenderer::new(&config);
//! let frame = renderer.render(&world, &Pose::default(), SimTime::ZERO, &mut rng);
//! assert_eq!(frame.descriptor.dim(), config.descriptor_dim);
//! ```

pub mod camera;
pub mod classes;
pub mod config;
pub mod frame;
pub mod render;
pub mod world;

pub use camera::Camera;
pub use classes::{ClassId, ClassUniverse};
pub use config::SceneConfig;
pub use frame::Frame;
pub use render::FrameRenderer;
pub use world::{ObjectId, World, WorldObject};
