//! Object placement and churn.

use serde::{Deserialize, Serialize};

use features::FeatureVector;
use simcore::SimRng;

use crate::classes::{ClassId, ClassUniverse};
use crate::config::SceneConfig;

/// Identifier of an object instance in the world. Monotonically assigned;
/// churn retires old ids and mints new ones, so an id seen twice always
/// denotes the same physical object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj-{}", self.0)
    }
}

/// One recognizable object instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldObject {
    /// Stable instance identifier.
    pub id: ObjectId,
    /// Ground-truth class.
    pub class: ClassId,
    /// East position, metres.
    pub x: f64,
    /// North position, metres.
    pub y: f64,
    /// This instance's descriptor offset from its class centre (instances
    /// of one class look similar, not identical).
    pub offset: FeatureVector,
    /// Seed for this instance's view-dependent appearance basis.
    pub appearance_seed: u64,
}

/// The environment a device (or several devices) observes: a set of
/// objects in a square arena, with optional churn.
///
/// # Example
///
/// ```
/// use scene::{ClassUniverse, SceneConfig, World};
/// use simcore::SimRng;
///
/// let mut rng = SimRng::seed(3);
/// let config = SceneConfig::default();
/// let universe = ClassUniverse::generate(&config, &mut rng);
/// let mut world = World::generate(&universe, &config, &mut rng);
/// let before: Vec<_> = world.objects().iter().map(|o| o.id).collect();
/// world.churn(0.5, &mut rng);
/// let after: Vec<_> = world.objects().iter().map(|o| o.id).collect();
/// assert_eq!(before.len(), after.len());
/// assert_ne!(before, after);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct World {
    objects: Vec<WorldObject>,
    universe: ClassUniverse,
    config: SceneConfig,
    next_id: u64,
}

impl World {
    /// Places `config.num_objects` objects uniformly in the arena with
    /// classes drawn uniformly from `universe`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn generate(universe: &ClassUniverse, config: &SceneConfig, rng: &mut SimRng) -> World {
        config.validate();
        let mut world = World {
            objects: Vec::with_capacity(config.num_objects),
            universe: universe.clone(),
            config: config.clone(),
            next_id: 0,
        };
        let mut place_rng = rng.split("world-placement");
        for _ in 0..config.num_objects {
            let obj = world.new_object(&mut place_rng);
            world.objects.push(obj);
        }
        world
    }

    fn new_object(&mut self, rng: &mut SimRng) -> WorldObject {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        let class = ClassId(rng.index(self.universe.len()) as u32);
        let e = self.config.world_extent;
        let offset: Vec<f32> = (0..self.config.descriptor_dim)
            .map(|_| rng.normal(0.0, self.config.object_offset_std) as f32)
            .collect();
        WorldObject {
            id,
            class,
            x: rng.uniform(-e, e),
            y: rng.uniform(-e, e),
            offset: FeatureVector::from_vec(offset).expect("finite normal draws"),
            appearance_seed: rng.split_index("appearance", id.0).seed_value(),
        }
    }

    /// The objects currently in the world.
    pub fn objects(&self) -> &[WorldObject] {
        &self.objects
    }

    /// The class universe the world draws from.
    pub fn universe(&self) -> &ClassUniverse {
        &self.universe
    }

    /// The configuration the world was generated with.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Replaces a uniformly chosen `fraction` of objects with fresh ones
    /// (new identity, class, position and appearance) — the "object churn"
    /// workload ingredient that ages cached results.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn churn(&mut self, fraction: f64, rng: &mut SimRng) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "churn: fraction must be in [0, 1], got {fraction}"
        );
        let n = ((self.objects.len() as f64) * fraction).round() as usize;
        let mut indices: Vec<usize> = (0..self.objects.len()).collect();
        rng.shuffle(&mut indices);
        for &i in indices.iter().take(n) {
            self.objects[i] = self.new_object(rng);
        }
    }

    /// Looks up an object by id.
    pub fn object(&self, id: ObjectId) -> Option<&WorldObject> {
        self.objects.iter().find(|o| o.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_world(seed: u64) -> World {
        let mut rng = SimRng::seed(seed);
        let config = SceneConfig::default();
        let universe = ClassUniverse::generate(&config, &mut rng);
        World::generate(&universe, &config, &mut rng)
    }

    #[test]
    fn generates_requested_objects_in_bounds() {
        let w = make_world(1);
        assert_eq!(w.objects().len(), 60);
        for o in w.objects() {
            assert!(o.x.abs() <= 25.0 && o.y.abs() <= 25.0);
            assert!((o.class.as_index()) < w.universe().len());
            assert_eq!(o.offset.dim(), 256);
        }
    }

    #[test]
    fn object_ids_are_unique() {
        let w = make_world(2);
        let mut ids: Vec<u64> = w.objects().iter().map(|o| o.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 60);
    }

    #[test]
    fn churn_replaces_exactly_the_requested_fraction() {
        let mut w = make_world(3);
        let before: std::collections::HashSet<u64> = w.objects().iter().map(|o| o.id.0).collect();
        let mut rng = SimRng::seed(4);
        w.churn(0.25, &mut rng);
        let after: std::collections::HashSet<u64> = w.objects().iter().map(|o| o.id.0).collect();
        let surviving = before.intersection(&after).count();
        assert_eq!(surviving, 45); // 60 - 15
        assert_eq!(after.len(), 60);
    }

    #[test]
    fn churn_zero_is_identity_churn_one_replaces_all() {
        let mut w = make_world(5);
        let snapshot = w.clone();
        let mut rng = SimRng::seed(6);
        w.churn(0.0, &mut rng);
        assert_eq!(w, snapshot);
        w.churn(1.0, &mut rng);
        let before: std::collections::HashSet<u64> =
            snapshot.objects().iter().map(|o| o.id.0).collect();
        assert!(w.objects().iter().all(|o| !before.contains(&o.id.0)));
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn churn_validates_fraction() {
        let mut w = make_world(7);
        let mut rng = SimRng::seed(8);
        w.churn(1.5, &mut rng);
    }

    #[test]
    fn new_ids_keep_increasing_across_churn() {
        let mut w = make_world(9);
        let max_before = w.objects().iter().map(|o| o.id.0).max().unwrap();
        let mut rng = SimRng::seed(10);
        w.churn(0.5, &mut rng);
        let fresh: Vec<u64> = w
            .objects()
            .iter()
            .map(|o| o.id.0)
            .filter(|&id| id > max_before)
            .collect();
        assert_eq!(fresh.len(), 30);
    }

    #[test]
    fn object_lookup_by_id() {
        let w = make_world(11);
        let first = &w.objects()[0];
        assert_eq!(w.object(first.id), Some(first));
        assert!(w.object(ObjectId(u64::MAX)).is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(make_world(12), make_world(12));
    }
}
