//! View resolution: which object is the camera looking at?

use serde::{Deserialize, Serialize};

use imu::Pose;

use crate::config::SceneConfig;
use crate::world::{World, WorldObject};

/// Geometry of one resolved view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewGeometry {
    /// Bearing from camera to subject minus camera yaw, radians, wrapped
    /// to `(-π, π]`. Zero means dead centre.
    pub bearing_offset: f64,
    /// Distance to the subject, metres.
    pub distance: f64,
}

/// Resolves poses to viewed objects under a pinhole-ish model: the subject
/// is the object closest to the view axis within the field of view and
/// range; if none qualifies, the object closest to the view axis overall
/// (something is always in frame — a far wall, a shelf edge).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    fov: f64,
    max_distance: f64,
}

impl Camera {
    /// A camera using `config`'s field of view and range.
    pub fn new(config: &SceneConfig) -> Camera {
        config.validate();
        Camera {
            fov: config.fov,
            max_distance: config.max_view_distance,
        }
    }

    /// Field of view, radians.
    pub fn fov(&self) -> f64 {
        self.fov
    }

    /// Maximum preferred subject distance, metres.
    pub fn max_distance(&self) -> f64 {
        self.max_distance
    }

    /// The object the camera at `pose` is looking at, with its view
    /// geometry. Returns `None` only for an empty world.
    pub fn subject<'w>(
        &self,
        world: &'w World,
        pose: &Pose,
    ) -> Option<(&'w WorldObject, ViewGeometry)> {
        let mut best_in_fov: Option<(&WorldObject, ViewGeometry, f64)> = None;
        let mut best_any: Option<(&WorldObject, ViewGeometry, f64)> = None;
        for obj in world.objects() {
            let dx = obj.x - pose.x;
            let dy = obj.y - pose.y;
            let distance = (dx * dx + dy * dy).sqrt();
            let bearing = dy.atan2(dx);
            let bearing_offset = wrap_angle(bearing - pose.yaw);
            let geometry = ViewGeometry {
                bearing_offset,
                distance,
            };
            // Score: angular offset dominates; nearer objects win ties.
            let score = bearing_offset.abs() + 0.01 * distance;
            if bearing_offset.abs() <= self.fov / 2.0
                && distance <= self.max_distance
                && best_in_fov.as_ref().is_none_or(|(_, _, s)| score < *s)
            {
                best_in_fov = Some((obj, geometry, score));
            }
            if best_any.as_ref().is_none_or(|(_, _, s)| score < *s) {
                best_any = Some((obj, geometry, score));
            }
        }
        best_in_fov
            .or(best_any)
            .map(|(obj, geometry, _)| (obj, geometry))
    }
}

/// Wraps an angle to `(-π, π]`.
pub fn wrap_angle(angle: f64) -> f64 {
    let mut a = angle % std::f64::consts::TAU;
    if a <= -std::f64::consts::PI {
        a += std::f64::consts::TAU;
    } else if a > std::f64::consts::PI {
        a -= std::f64::consts::TAU;
    }
    a
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::classes::ClassUniverse;
    use simcore::SimRng;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn world_with_objects(positions: &[(f64, f64)]) -> World {
        let mut rng = SimRng::seed(1);
        let config = SceneConfig {
            num_objects: positions.len(),
            ..SceneConfig::default()
        };
        let universe = ClassUniverse::generate(&config, &mut rng);
        let mut world = World::generate(&universe, &config, &mut rng);
        // Re-pin positions deterministically for the test.
        let objects: Vec<_> = world
            .objects()
            .iter()
            .cloned()
            .zip(positions)
            .map(|(mut o, &(x, y))| {
                o.x = x;
                o.y = y;
                o
            })
            .collect();
        // Rebuild through churn-free reconstruction: no setter exists, so
        // serialize-deserialize via serde keeps the type's invariants.
        let mut value = serde_json::to_value(&world).unwrap();
        value["objects"] = serde_json::to_value(&objects).unwrap();
        world = serde_json::from_value(value).unwrap();
        world
    }

    #[test]
    fn wrap_angle_stays_in_range() {
        for mult in -8i32..=8 {
            let a = wrap_angle(mult as f64 * 1.7);
            assert!(a > -PI - 1e-12 && a <= PI + 1e-12);
        }
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn picks_object_on_view_axis() {
        // Object A straight ahead (east), object B to the north.
        let world = world_with_objects(&[(5.0, 0.0), (0.0, 5.0)]);
        let camera = Camera::new(world.config());
        let east = Pose::default(); // yaw 0 = facing +x
        let (subject, geometry) = camera.subject(&world, &east).unwrap();
        assert_eq!(subject.x, 5.0);
        assert!(geometry.bearing_offset.abs() < 1e-9);
        assert!((geometry.distance - 5.0).abs() < 1e-9);

        let north = Pose {
            yaw: FRAC_PI_2,
            ..Pose::default()
        };
        let (subject, _) = camera.subject(&world, &north).unwrap();
        assert_eq!(subject.y, 5.0);
    }

    #[test]
    fn nearer_object_wins_equal_bearing() {
        let world = world_with_objects(&[(5.0, 0.0), (10.0, 0.0)]);
        let camera = Camera::new(world.config());
        let (subject, _) = camera.subject(&world, &Pose::default()).unwrap();
        assert_eq!(subject.x, 5.0);
    }

    #[test]
    fn falls_back_to_nearest_bearing_outside_fov() {
        // Single object behind the camera: still resolved via fallback.
        let world = world_with_objects(&[(-5.0, 0.0)]);
        let camera = Camera::new(world.config());
        let (subject, geometry) = camera.subject(&world, &Pose::default()).unwrap();
        assert_eq!(subject.x, -5.0);
        assert!((geometry.bearing_offset.abs() - PI).abs() < 1e-9);
    }

    #[test]
    fn distant_object_prefers_in_range_one() {
        // One object in view but beyond max distance, one slightly off-axis
        // but close: the close, in-FOV one is preferred.
        let world = world_with_objects(&[(100.0, 0.0), (5.0, 1.0)]);
        let camera = Camera::new(world.config());
        let (subject, _) = camera.subject(&world, &Pose::default()).unwrap();
        assert_eq!(subject.x, 5.0);
    }

    #[test]
    fn small_pose_change_keeps_subject() {
        // Temporal locality: a half-degree turn does not switch subjects.
        let world = world_with_objects(&[(8.0, 0.0), (0.0, 8.0), (-8.0, 0.0)]);
        let camera = Camera::new(world.config());
        let before = camera.subject(&world, &Pose::default()).unwrap().0.id;
        let nudged = Pose {
            yaw: 0.5f64.to_radians(),
            ..Pose::default()
        };
        let after = camera.subject(&world, &nudged).unwrap().0.id;
        assert_eq!(before, after);
    }

    #[test]
    fn accessors() {
        let config = SceneConfig::default();
        let camera = Camera::new(&config);
        assert_eq!(camera.fov(), config.fov);
        assert_eq!(camera.max_distance(), config.max_view_distance);
    }
}
