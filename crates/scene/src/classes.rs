//! Recognition classes as clusters in descriptor space.

use serde::{Deserialize, Serialize};

use features::FeatureVector;
use simcore::SimRng;

use crate::config::SceneConfig;

/// Identifier of a recognition class (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClassId(pub u32);

impl ClassId {
    /// The class index as a usize, for table lookups.
    pub fn as_index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class-{}", self.0)
    }
}

/// The set of classes a deployment recognizes, with each class's centre in
/// descriptor space.
///
/// Centres are drawn as `class_spread · u` for a uniformly random unit
/// vector `u`, giving pairwise distances concentrated around
/// `√2 · class_spread` in high dimension — well separated relative to the
/// intra-class scales in [`SceneConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassUniverse {
    centers: Vec<FeatureVector>,
    spread: f64,
}

impl ClassUniverse {
    /// Generates `config.num_classes` class centres of dimension
    /// `config.descriptor_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`SceneConfig::validate`]).
    pub fn generate(config: &SceneConfig, rng: &mut SimRng) -> ClassUniverse {
        config.validate();
        let mut class_rng = rng.split("class-universe");
        let centers = (0..config.num_classes)
            .map(|_| {
                let u = class_rng.unit_vector(config.descriptor_dim);
                let scaled: Vec<f32> = u
                    .into_iter()
                    .map(|c| (c * config.class_spread) as f32)
                    .collect();
                FeatureVector::from_vec(scaled).expect("finite scaled unit vector")
            })
            .collect();
        ClassUniverse {
            centers,
            spread: config.class_spread,
        }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// True if the universe has no classes (never produced by `generate`).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// The centre of class `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn center(&self, id: ClassId) -> &FeatureVector {
        &self.centers[id.as_index()]
    }

    /// Iterates over all class ids.
    pub fn ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.centers.len() as u32).map(ClassId)
    }

    /// The configured spread (distance scale of the centres).
    pub fn spread(&self) -> f64 {
        self.spread
    }

    /// The class whose centre is nearest to `descriptor` — the "ideal
    /// classifier" the DNN simulator perturbs.
    pub fn nearest_class(&self, descriptor: &FeatureVector) -> ClassId {
        let (best, _) = self
            .centers
            .iter()
            .enumerate()
            .map(|(i, c)| (i, features::distance::squared_euclidean(c, descriptor)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("universe is non-empty");
        ClassId(best as u32)
    }

    /// For class `id`, the other classes ordered by centre distance —
    /// the "confusable classes" the stochastic classifier prefers when it
    /// errs.
    pub fn confusable(&self, id: ClassId) -> Vec<ClassId> {
        let center = self.center(id);
        let mut others: Vec<(ClassId, f64)> = self
            .ids()
            .filter(|&other| other != id)
            .map(|other| {
                (
                    other,
                    features::distance::squared_euclidean(self.center(other), center),
                )
            })
            .collect();
        others.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        others.into_iter().map(|(c, _)| c).collect()
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use features::distance::euclidean;

    fn universe(seed: u64) -> ClassUniverse {
        let mut rng = SimRng::seed(seed);
        ClassUniverse::generate(&SceneConfig::default(), &mut rng)
    }

    #[test]
    fn generates_requested_count_and_dim() {
        let u = universe(1);
        assert_eq!(u.len(), 20);
        assert!(!u.is_empty());
        assert_eq!(u.center(ClassId(0)).dim(), 256);
        assert_eq!(u.ids().count(), 20);
        assert_eq!(u.spread(), 10.0);
    }

    #[test]
    fn centers_lie_on_spread_sphere() {
        let u = universe(2);
        for id in u.ids() {
            let norm = u.center(id).l2_norm();
            assert!((norm - 10.0).abs() < 0.01, "norm {norm}");
        }
    }

    #[test]
    fn centers_are_well_separated() {
        let u = universe(3);
        let ids: Vec<ClassId> = u.ids().collect();
        let expected = 10.0 * 2.0f64.sqrt();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let d = euclidean(u.center(ids[i]), u.center(ids[j]));
                assert!(
                    d > expected * 0.6,
                    "classes {i} and {j} too close: {d} (expected ≈ {expected})"
                );
            }
        }
    }

    #[test]
    fn nearest_class_recovers_center() {
        let u = universe(4);
        for id in u.ids() {
            assert_eq!(u.nearest_class(u.center(id)), id);
        }
    }

    #[test]
    fn nearest_class_tolerates_small_perturbation() {
        let u = universe(5);
        let mut rng = SimRng::seed(6);
        for id in u.ids().take(5) {
            let noise: Vec<f32> = (0..256).map(|_| rng.normal(0.0, 0.3) as f32).collect();
            let perturbed = u
                .center(id)
                .add(&FeatureVector::from_vec(noise).unwrap())
                .unwrap();
            assert_eq!(u.nearest_class(&perturbed), id);
        }
    }

    #[test]
    fn confusable_is_sorted_and_excludes_self() {
        let u = universe(7);
        let id = ClassId(3);
        let conf = u.confusable(id);
        assert_eq!(conf.len(), 19);
        assert!(!conf.contains(&id));
        let d = |c: &ClassId| euclidean(u.center(*c), u.center(id));
        for w in conf.windows(2) {
            assert!(d(&w[0]) <= d(&w[1]));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(universe(8), universe(8));
    }

    #[test]
    fn class_id_display_and_index() {
        assert_eq!(ClassId(4).to_string(), "class-4");
        assert_eq!(ClassId(4).as_index(), 4);
    }
}
