//! Frame rendering: pose → descriptor + ground truth.
//!
//! The descriptor of a frame looking at object `o` from geometry `g` is
//!
//! ```text
//! descriptor = center(o.class)            // which class it is
//!            + o.offset                   // which instance it is
//!            + view(o, g)                 // smooth view-dependent term
//!            + sensor noise               // fresh per shot
//! ```
//!
//! The view term is a linear combination of per-object random basis
//! vectors weighted by smooth functions of the bearing offset and
//! distance, so consecutive frames of a slowly moving camera produce
//! near-identical descriptors — the temporal locality approximate caching
//! feeds on — while a different vantage point of the *same* object still
//! drifts away gradually.

use features::FeatureVector;
use simcore::{SimRng, SimTime};

use crate::camera::{Camera, ViewGeometry};
use crate::config::SceneConfig;
use crate::frame::Frame;
use crate::world::{World, WorldObject};

/// Renders frames from poses.
///
/// # Example
///
/// ```
/// use scene::{ClassUniverse, FrameRenderer, SceneConfig, World};
/// use imu::Pose;
/// use simcore::{SimRng, SimTime};
///
/// let mut rng = SimRng::seed(5);
/// let config = SceneConfig::default();
/// let universe = ClassUniverse::generate(&config, &mut rng);
/// let world = World::generate(&universe, &config, &mut rng);
/// let renderer = FrameRenderer::new(&config);
/// let frame = renderer.render(&world, &Pose::default(), SimTime::ZERO, &mut rng);
/// assert!((frame.truth.as_index()) < config.num_classes);
/// ```
#[derive(Debug, Clone)]
pub struct FrameRenderer {
    camera: Camera,
    view_dependence: f64,
    sensor_noise_std: f64,
    /// Number of appearance basis vectors per object.
    basis_count: usize,
    /// Global lighting-drift term: `direction · rate · t` is added to
    /// every frame. The direction is a fixed pseudo-random unit vector, so
    /// all devices (and re-runs) drift identically.
    drift_rate: f64,
    /// Fraction of time an occluder blocks the view (see
    /// [`SceneConfig::occlusion_fraction`]).
    occlusion_fraction: f64,
    /// Std of the occluder instance's appearance offset.
    object_offset_std: f64,
}

impl FrameRenderer {
    /// Creates a renderer for worlds generated with `config`.
    pub fn new(config: &SceneConfig) -> FrameRenderer {
        config.validate();
        FrameRenderer {
            camera: Camera::new(config),
            view_dependence: config.view_dependence,
            sensor_noise_std: config.sensor_noise_std,
            basis_count: 4,
            drift_rate: config.drift_rate,
            occlusion_fraction: config.occlusion_fraction,
            object_offset_std: config.object_offset_std,
        }
    }

    /// The camera model in use.
    pub fn camera(&self) -> &Camera {
        &self.camera
    }

    /// Renders the frame seen from `pose` at instant `at`.
    ///
    /// `rng` supplies only the per-shot sensor noise; everything else is a
    /// pure function of world and pose, so two devices at the same pose see
    /// (noise apart) the same frame.
    ///
    /// # Panics
    ///
    /// Panics if the world has no objects (cannot happen for worlds from
    /// [`World::generate`]).
    pub fn render(&self, world: &World, pose: &imu::Pose, at: SimTime, rng: &mut SimRng) -> Frame {
        if let Some(frame) = self.render_occlusion(world, pose, at, rng) {
            return frame;
        }
        let (subject, geometry) = self
            .camera
            .subject(world, pose)
            .expect("render: world must contain at least one object");
        let dim = world.config().descriptor_dim;
        let mut descriptor = world.universe().center(subject.class).clone();
        descriptor = descriptor.add(&subject.offset).expect("matching dims");
        descriptor = descriptor
            .add(&self.view_component(subject, &geometry, dim))
            .expect("matching dims");
        if self.drift_rate > 0.0 {
            let magnitude = self.drift_rate * at.as_secs_f64();
            descriptor = descriptor
                .add(&drift_direction(dim).scale(magnitude as f32))
                .expect("matching dims");
        }
        if self.sensor_noise_std > 0.0 {
            let noise: Vec<f32> = (0..dim)
                .map(|_| rng.normal(0.0, self.sensor_noise_std) as f32)
                .collect();
            descriptor = descriptor
                .add(&FeatureVector::from_vec(noise).expect("finite noise"))
                .expect("matching dims");
        }
        Frame {
            at,
            descriptor,
            truth: subject.class,
            subject: subject.id,
            geometry,
        }
    }

    /// The occluded frame for this instant, if an occlusion episode is in
    /// progress at this viewer's position. Episodes are a deterministic
    /// function of (time bucket, coarse position), so consecutive frames
    /// of one viewer share an episode while distant viewers have
    /// independent ones.
    fn render_occlusion(
        &self,
        world: &World,
        pose: &imu::Pose,
        at: SimTime,
        rng: &mut SimRng,
    ) -> Option<Frame> {
        if self.occlusion_fraction <= 0.0 {
            return None;
        }
        let bucket = (at.as_secs_f64() / crate::config::OCCLUSION_EPISODE_SECS).floor() as u64;
        // Coarse viewer cell so co-located devices share the occluder but
        // distant ones do not.
        let cell = ((pose.x / 2.0).round() as i64, (pose.y / 2.0).round() as i64);
        let mut episode_rng = SimRng::seed(0x0cc1)
            .split_index("occlusion-bucket", bucket)
            .split_index("cell-x", cell.0 as u64)
            .split_index("cell-y", cell.1 as u64);
        if !episode_rng.chance(self.occlusion_fraction) {
            return None;
        }
        let universe = world.universe();
        let class = crate::classes::ClassId(episode_rng.index(universe.len()) as u32);
        let dim = world.config().descriptor_dim;
        // The occluder is a fresh instance of its class, filling the frame.
        let offset: Vec<f32> = (0..dim)
            .map(|_| episode_rng.normal(0.0, self.object_offset_std) as f32)
            .collect();
        let mut descriptor = universe
            .center(class)
            .add(&FeatureVector::from_vec(offset).expect("finite offset"))
            .expect("matching dims");
        if self.sensor_noise_std > 0.0 {
            let noise: Vec<f32> = (0..dim)
                .map(|_| rng.normal(0.0, self.sensor_noise_std) as f32)
                .collect();
            descriptor = descriptor
                .add(&FeatureVector::from_vec(noise).expect("finite noise"))
                .expect("matching dims");
        }
        Some(Frame {
            at,
            descriptor,
            truth: class,
            // Synthetic instance id derived from the episode; never
            // collides with world object ids (which count up from 0).
            subject: crate::world::ObjectId(u64::MAX - bucket),
            geometry: ViewGeometry {
                bearing_offset: 0.0,
                distance: 0.5,
            },
        })
    }

    /// The smooth view-dependent appearance term.
    fn view_component(
        &self,
        subject: &WorldObject,
        geometry: &ViewGeometry,
        dim: usize,
    ) -> FeatureVector {
        // Per-object deterministic basis from its appearance seed.
        let mut basis_rng = SimRng::seed(subject.appearance_seed);
        // Smooth scalar weights of the view geometry. Bounded, slowly
        // varying, and distinct per basis vector.
        let b = geometry.bearing_offset;
        let d = geometry.distance;
        let weights = [
            b.sin(),
            b.cos() - 1.0,           // 0 when dead-centre
            (d / 10.0).tanh() - 0.5, // distance attenuation
            (2.0 * b).sin() * (d / 20.0).tanh(),
        ];
        let mut component = FeatureVector::zeros(dim);
        for weight in weights.iter().take(self.basis_count) {
            let v: Vec<f32> = (0..dim)
                .map(|_| basis_rng.normal(0.0, 1.0 / (dim as f64).sqrt()) as f32)
                .collect();
            let basis = FeatureVector::from_vec(v).expect("finite basis");
            component = component
                .add(&basis.scale((self.view_dependence * weight) as f32))
                .expect("matching dims");
        }
        component
    }
}

/// The fixed unit direction of global lighting drift (deterministic for a
/// given dimension, shared by all renderers).
fn drift_direction(dim: usize) -> FeatureVector {
    let mut rng = SimRng::seed(0x00d1_21f7).split("lighting-drift");
    let v = rng.unit_vector(dim);
    FeatureVector::from_vec(v.into_iter().map(|c| c as f32).collect()).expect("finite unit vector")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassUniverse;
    use features::distance::euclidean;
    use imu::Pose;

    struct Fixture {
        world: World,
        renderer: FrameRenderer,
        rng: SimRng,
    }

    fn fixture(seed: u64) -> Fixture {
        let mut rng = SimRng::seed(seed);
        let config = SceneConfig::default();
        let universe = ClassUniverse::generate(&config, &mut rng);
        let world = World::generate(&universe, &config, &mut rng);
        let renderer = FrameRenderer::new(&config);
        Fixture {
            world,
            renderer,
            rng,
        }
    }

    #[test]
    fn ground_truth_matches_camera_subject() {
        let mut fx = fixture(1);
        let pose = Pose::default();
        let frame = fx
            .renderer
            .render(&fx.world, &pose, SimTime::ZERO, &mut fx.rng);
        let (subject, _) = fx.renderer.camera().subject(&fx.world, &pose).unwrap();
        assert_eq!(frame.truth, subject.class);
        assert_eq!(frame.subject, subject.id);
    }

    #[test]
    fn same_pose_same_frame_up_to_sensor_noise() {
        let mut fx = fixture(2);
        let pose = Pose::default();
        let a = fx
            .renderer
            .render(&fx.world, &pose, SimTime::ZERO, &mut fx.rng);
        let b = fx
            .renderer
            .render(&fx.world, &pose, SimTime::from_millis(33), &mut fx.rng);
        let d = euclidean(&a.descriptor, &b.descriptor);
        // Two fresh noise draws of std 0.25 in 256 dims: distance ≈
        // 0.25·√2·√256 ≈ 5.7 — far below the class spread of 10·√2 ≈ 14.
        assert!(d < 8.0, "noise-only distance {d}");
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn small_turn_moves_descriptor_smoothly() {
        let mut fx = fixture(3);
        let base = fx
            .renderer
            .render(&fx.world, &Pose::default(), SimTime::ZERO, &mut fx.rng);
        let small = Pose {
            yaw: 1.0f64.to_radians(),
            ..Pose::default()
        };
        let frame_small = fx
            .renderer
            .render(&fx.world, &small, SimTime::ZERO, &mut fx.rng);
        if frame_small.subject == base.subject {
            let d = euclidean(&base.descriptor, &frame_small.descriptor);
            assert!(d < 9.0, "1° turn moved descriptor by {d}");
        }
    }

    #[test]
    fn different_classes_are_far_apart() {
        // Render every object head-on; frames of different classes must be
        // far apart relative to same-subject re-renders.
        let mut fx = fixture(4);
        let mut frames = Vec::new();
        let objects: Vec<_> = fx.world.objects().to_vec();
        for obj in objects.iter().take(20) {
            let pose = Pose {
                x: obj.x - 3.0,
                y: obj.y,
                yaw: 0.0,
                pitch: 0.0,
            };
            // Only keep it if the camera actually resolves this object.
            let frame = fx
                .renderer
                .render(&fx.world, &pose, SimTime::ZERO, &mut fx.rng);
            if frame.subject == obj.id {
                frames.push(frame);
            }
        }
        assert!(frames.len() >= 5, "need a few clean views");
        for i in 0..frames.len() {
            for j in (i + 1)..frames.len() {
                if frames[i].truth != frames[j].truth {
                    let d = euclidean(&frames[i].descriptor, &frames[j].descriptor);
                    assert!(d > 8.0, "cross-class distance only {d}");
                }
            }
        }
    }

    #[test]
    fn noiseless_render_is_deterministic() {
        let mut rng = SimRng::seed(5);
        let config = SceneConfig {
            sensor_noise_std: 0.0,
            ..SceneConfig::default()
        };
        let universe = ClassUniverse::generate(&config, &mut rng);
        let world = World::generate(&universe, &config, &mut rng);
        let renderer = FrameRenderer::new(&config);
        let pose = Pose {
            x: 1.0,
            y: -2.0,
            yaw: 0.3,
            pitch: 0.0,
        };
        let mut r1 = SimRng::seed(6);
        let mut r2 = SimRng::seed(99);
        let a = renderer.render(&world, &pose, SimTime::ZERO, &mut r1);
        let b = renderer.render(&world, &pose, SimTime::ZERO, &mut r2);
        assert_eq!(a.descriptor, b.descriptor, "no noise ⇒ rng must not matter");
    }

    #[test]
    fn drift_separates_frames_linearly_in_time() {
        let mut rng = SimRng::seed(41);
        let config = SceneConfig {
            sensor_noise_std: 0.0,
            drift_rate: 0.5,
            ..SceneConfig::default()
        };
        let universe = ClassUniverse::generate(&config, &mut rng);
        let world = World::generate(&universe, &config, &mut rng);
        let renderer = FrameRenderer::new(&config);
        let pose = Pose::default();
        let t0 = renderer.render(&world, &pose, SimTime::ZERO, &mut rng);
        let t10 = renderer.render(&world, &pose, SimTime::from_secs(10), &mut rng);
        let t20 = renderer.render(&world, &pose, SimTime::from_secs(20), &mut rng);
        let d10 = euclidean(&t0.descriptor, &t10.descriptor);
        let d20 = euclidean(&t0.descriptor, &t20.descriptor);
        assert!(
            (d10 - 5.0).abs() < 1e-3,
            "10 s at 0.5/s should be 5.0, got {d10}"
        );
        assert!(
            (d20 - 10.0).abs() < 1e-3,
            "20 s at 0.5/s should be 10.0, got {d20}"
        );
        assert_eq!(t0.truth, t20.truth, "drift must not change ground truth");
    }

    #[test]
    fn occlusions_hit_the_configured_fraction_in_episodes() {
        let mut rng = SimRng::seed(51);
        let config = SceneConfig {
            occlusion_fraction: 0.3,
            ..SceneConfig::default()
        };
        let universe = ClassUniverse::generate(&config, &mut rng);
        let world = World::generate(&universe, &config, &mut rng);
        let renderer = FrameRenderer::new(&config);
        let pose = Pose::default();
        // 10 fps over 200 s; occluded frames carry the synthetic subject.
        let mut occluded = 0;
        let mut transitions = 0;
        let mut prev_occluded = false;
        let total = 2_000;
        for i in 1..=total {
            let frame = renderer.render(&world, &pose, SimTime::from_millis(i * 100), &mut rng);
            let is_occluded = frame.subject.0 > u64::MAX / 2;
            if is_occluded {
                occluded += 1;
            }
            if is_occluded != prev_occluded {
                transitions += 1;
            }
            prev_occluded = is_occluded;
        }
        let fraction = occluded as f64 / total as f64;
        assert!(
            (fraction - 0.3).abs() < 0.06,
            "occluded fraction {fraction}"
        );
        // Episodes are ~0.7 s = 7 frames: transition count must be far
        // below what per-frame independence (~2·0.3·0.7·N ≈ 840) gives.
        assert!(
            transitions < 400,
            "occlusions flicker instead of forming episodes: {transitions} transitions"
        );
    }

    #[test]
    fn occluded_frames_change_ground_truth_and_classify_consistently() {
        let mut rng = SimRng::seed(52);
        let config = SceneConfig {
            occlusion_fraction: 1.0, // always occluded
            ..SceneConfig::default()
        };
        let universe = ClassUniverse::generate(&config, &mut rng);
        let world = World::generate(&universe, &config, &mut rng);
        let renderer = FrameRenderer::new(&config);
        let frame = renderer.render(&world, &Pose::default(), SimTime::from_secs(1), &mut rng);
        assert!(frame.subject.0 > u64::MAX / 2, "synthetic occluder id");
        // The descriptor classifies to the occluder's class.
        assert_eq!(universe.nearest_class(&frame.descriptor), frame.truth);
    }

    #[test]
    fn zero_occlusion_fraction_changes_nothing() {
        let mut rng1 = SimRng::seed(53);
        let mut rng2 = SimRng::seed(53);
        let config = SceneConfig::default();
        let universe = ClassUniverse::generate(&config, &mut rng1);
        let _ = ClassUniverse::generate(&config, &mut rng2);
        let world = World::generate(&universe, &config, &mut rng1);
        let world2 = World::generate(&universe, &config, &mut rng2);
        let a = FrameRenderer::new(&config).render(
            &world,
            &Pose::default(),
            SimTime::from_secs(3),
            &mut rng1,
        );
        let b = FrameRenderer::new(&config).render(
            &world2,
            &Pose::default(),
            SimTime::from_secs(3),
            &mut rng2,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn zero_drift_is_time_invariant() {
        let mut rng = SimRng::seed(42);
        let config = SceneConfig {
            sensor_noise_std: 0.0,
            ..SceneConfig::default()
        };
        let universe = ClassUniverse::generate(&config, &mut rng);
        let world = World::generate(&universe, &config, &mut rng);
        let renderer = FrameRenderer::new(&config);
        let pose = Pose::default();
        let a = renderer.render(&world, &pose, SimTime::ZERO, &mut rng);
        let b = renderer.render(&world, &pose, SimTime::from_secs(100), &mut rng);
        assert_eq!(a.descriptor, b.descriptor);
    }

    #[test]
    fn ideal_classifier_recovers_truth_mostly() {
        // The nearest-class rule on rendered descriptors should be right
        // nearly always under default settings (it is the DNN's ceiling).
        let mut fx = fixture(7);
        let mut correct = 0;
        let mut total = 0;
        let poses: Vec<Pose> = (0..100)
            .map(|i| Pose {
                x: (i % 10) as f64 * 4.0 - 20.0,
                y: (i / 10) as f64 * 4.0 - 20.0,
                yaw: (i as f64) * 0.7,
                pitch: 0.0,
            })
            .collect();
        for pose in &poses {
            let frame = fx
                .renderer
                .render(&fx.world, pose, SimTime::ZERO, &mut fx.rng);
            total += 1;
            if fx.world.universe().nearest_class(&frame.descriptor) == frame.truth {
                correct += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "ideal accuracy only {acc}");
    }
}
