//! Deterministic per-round boundary exchange for sharded gossip.
//!
//! When a device population is partitioned into shards that run
//! concurrently, gossip (discovery beacons, advertisement entries)
//! raised inside a round cannot be applied to its receiver immediately:
//! the receiver may live in another shard that is mid-round on another
//! thread, and even in-shard application order would depend on
//! processing order. The fleet engine therefore routes *all* gossip
//! through a [`BoundaryExchange`]: shards emit [`Envelope`]s into
//! per-shard outboxes during the parallel phase, the coordinator posts
//! them between rounds, and [`drain_due`](BoundaryExchange::drain_due)
//! hands back everything due at the barrier in one canonical order —
//! `(deliver_at, receiver, sender, seq)` — so the applied sequence is a
//! pure function of the envelopes' *contents*, never of shard count,
//! thread interleaving or post order.

use simcore::SimTime;

/// One gossip message in flight between round barriers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Barrier time at (or after) which the message is applied.
    pub deliver_at: SimTime,
    /// Receiving device, by global device index.
    pub receiver: u64,
    /// Sending device, by global device index.
    pub sender: u64,
    /// Per-sender emission sequence number — breaks ties between two
    /// messages from the same sender to the same receiver due at the
    /// same barrier.
    pub seq: u64,
    /// The gossip payload (a beacon marker, a wire entry, …).
    pub payload: T,
}

impl<T> Envelope<T> {
    /// The canonical ordering key.
    fn key(&self) -> (SimTime, u64, u64, u64) {
        (self.deliver_at, self.receiver, self.sender, self.seq)
    }
}

/// A deterministic round-barrier mailbox. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct BoundaryExchange<T> {
    pending: Vec<Envelope<T>>,
}

impl<T> Default for BoundaryExchange<T> {
    fn default() -> Self {
        BoundaryExchange::new()
    }
}

impl<T> BoundaryExchange<T> {
    /// An empty exchange.
    pub fn new() -> BoundaryExchange<T> {
        BoundaryExchange {
            pending: Vec::new(),
        }
    }

    /// Queues one envelope.
    pub fn post(&mut self, envelope: Envelope<T>) {
        self.pending.push(envelope);
    }

    /// Queues a batch of envelopes (e.g. one shard's outbox).
    pub fn extend(&mut self, envelopes: impl IntoIterator<Item = Envelope<T>>) {
        self.pending.extend(envelopes);
    }

    /// Number of envelopes still in flight.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Removes and returns every envelope with `deliver_at <= now`,
    /// sorted by the canonical `(deliver_at, receiver, sender, seq)`
    /// key. The result is independent of the order in which envelopes
    /// were posted.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<Envelope<T>> {
        let mut due = Vec::new();
        let mut keep = Vec::with_capacity(self.pending.len());
        for envelope in self.pending.drain(..) {
            if envelope.deliver_at <= now {
                due.push(envelope);
            } else {
                keep.push(envelope);
            }
        }
        self.pending = keep;
        due.sort_by_key(Envelope::key);
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + simcore::SimDuration::from_millis(ms)
    }

    fn envelope(ms: u64, receiver: u64, sender: u64, seq: u64) -> Envelope<&'static str> {
        Envelope {
            deliver_at: at(ms),
            receiver,
            sender,
            seq,
            payload: "ad",
        }
    }

    #[test]
    fn drain_is_canonically_ordered_and_post_order_independent() {
        let batch = vec![
            envelope(5, 2, 1, 0),
            envelope(5, 1, 9, 0),
            envelope(3, 7, 7, 1),
            envelope(5, 1, 4, 2),
            envelope(5, 1, 4, 1),
        ];
        let mut forward = BoundaryExchange::new();
        forward.extend(batch.clone());
        let mut reverse = BoundaryExchange::new();
        reverse.extend(batch.into_iter().rev());
        let drained = forward.drain_due(at(5));
        assert_eq!(drained, reverse.drain_due(at(5)));
        let keys: Vec<(u64, u64, u64)> = drained
            .iter()
            .map(|e| (e.receiver, e.sender, e.seq))
            .collect();
        assert_eq!(
            keys,
            vec![(7, 7, 1), (1, 4, 1), (1, 4, 2), (1, 9, 0), (2, 1, 0)],
            "sorted by (deliver_at, receiver, sender, seq)"
        );
    }

    #[test]
    fn undue_envelopes_stay_queued() {
        let mut exchange = BoundaryExchange::new();
        exchange.post(envelope(10, 1, 2, 0));
        exchange.post(envelope(2, 3, 4, 0));
        assert_eq!(exchange.len(), 2);
        let due = exchange.drain_due(at(5));
        assert_eq!(due.len(), 1);
        assert_eq!(due.first().map(|e| e.receiver), Some(3));
        assert_eq!(exchange.len(), 1);
        assert!(!exchange.is_empty());
        let rest = exchange.drain_due(at(10));
        assert_eq!(rest.len(), 1);
        assert!(exchange.is_empty());
    }

    #[test]
    fn default_is_empty() {
        let exchange: BoundaryExchange<u8> = BoundaryExchange::default();
        assert!(exchange.is_empty());
        assert_eq!(exchange.len(), 0);
    }
}
