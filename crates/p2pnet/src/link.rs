//! Per-technology link characteristics.

use serde::{Deserialize, Serialize};

use simcore::{SimDuration, SimRng};

use crate::error::ConfigError;

/// Latency/bandwidth/loss parameters of one radio technology.
///
/// A one-way delivery of `n` bytes takes
/// `base_latency · LogNormal(1, jitter) + n / bandwidth`, and is lost with
/// probability `loss_prob`. The presets match the numbers mobile
/// peer-to-peer measurement studies report for BLE 4.2 connections and
/// WiFi-Direct links at close range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Short name for reports.
    pub name: &'static str,
    /// One-way base latency (connection already established).
    pub base_latency: SimDuration,
    /// Log-normal sigma of latency jitter.
    pub jitter_sigma: f64,
    /// Payload bandwidth, megabits per second.
    pub bandwidth_mbps: f64,
    /// Probability a message is lost (no retransmission modelled — the
    /// pipeline treats a lost query as a peer miss). For multi-fragment
    /// messages the loss applies per fragment: losing any fragment loses
    /// the message, so long payloads are proportionally more fragile.
    pub loss_prob: f64,
    /// Nominal radio range, metres.
    pub range_m: f64,
    /// Maximum payload bytes per link-layer fragment; longer messages are
    /// split and each fragment adds `fragment_overhead` wire bytes.
    pub mtu: usize,
    /// Per-fragment header/ack overhead, bytes.
    pub fragment_overhead: usize,
}

impl LinkSpec {
    /// Bluetooth Low Energy 4.2-class connection (244-byte data PDUs).
    pub fn ble() -> LinkSpec {
        LinkSpec {
            name: "ble",
            base_latency: SimDuration::from_millis(25),
            jitter_sigma: 0.25,
            bandwidth_mbps: 0.7,
            loss_prob: 0.03,
            range_m: 10.0,
            mtu: 244,
            fragment_overhead: 7,
        }
    }

    /// WiFi-Direct link at close range.
    pub fn wifi_direct() -> LinkSpec {
        LinkSpec {
            name: "wifi-direct",
            base_latency: SimDuration::from_millis(3),
            jitter_sigma: 0.3,
            bandwidth_mbps: 60.0,
            loss_prob: 0.01,
            range_m: 30.0,
            mtu: 1_400,
            fragment_overhead: 40,
        }
    }

    /// A calibrated mobile-WAN uplink to an edge server: LTE/5G
    /// radio-access latency in the tens of milliseconds, tail-heavy
    /// jitter, backhaul-grade bandwidth, and rare loss (the transport
    /// below retransmits; what the model charges is the visible stall).
    /// Range is effectively unlimited — reachability is a coverage
    /// question, not a proximity one.
    pub fn wan() -> LinkSpec {
        LinkSpec {
            name: "wan",
            base_latency: SimDuration::from_millis(25),
            jitter_sigma: 0.35,
            bandwidth_mbps: 20.0,
            loss_prob: 0.005,
            range_m: 1.0e7,
            mtu: 1_400,
            fragment_overhead: 40,
        }
    }

    /// An ideal link (zero latency, no loss) for ablations isolating
    /// protocol behaviour from network cost.
    pub fn ideal() -> LinkSpec {
        LinkSpec {
            name: "ideal",
            base_latency: SimDuration::ZERO,
            jitter_sigma: 0.0,
            bandwidth_mbps: f64::INFINITY,
            loss_prob: 0.0,
            range_m: f64::MAX,
            mtu: usize::MAX,
            fragment_overhead: 0,
        }
    }

    /// Number of link-layer fragments a `bytes`-byte message occupies.
    pub fn fragments(&self, bytes: usize) -> usize {
        if bytes == 0 {
            return 1;
        }
        bytes.div_ceil(self.mtu)
    }

    /// Validates parameter ranges: bandwidth, range and MTU must be
    /// positive, jitter non-negative, and loss inside `[0, 1]`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.bandwidth_mbps <= 0.0 || self.bandwidth_mbps.is_nan() {
            return Err(ConfigError::NotPositive {
                context: "LinkSpec",
                field: "bandwidth",
            });
        }
        if self.jitter_sigma < 0.0 || self.jitter_sigma.is_nan() {
            return Err(ConfigError::Inconsistent {
                context: "LinkSpec",
                message: "jitter_sigma must be non-negative",
            });
        }
        if !(0.0..=1.0).contains(&self.loss_prob) {
            return Err(ConfigError::OutOfRange {
                context: "LinkSpec",
                field: "loss_prob",
                min: 0.0,
                max: 1.0,
            });
        }
        if self.range_m <= 0.0 || self.range_m.is_nan() {
            return Err(ConfigError::NotPositive {
                context: "LinkSpec",
                field: "range",
            });
        }
        if self.mtu == 0 {
            return Err(ConfigError::NotPositive {
                context: "LinkSpec",
                field: "mtu",
            });
        }
        Ok(())
    }

    /// Pure serialization time for `bytes` at the link bandwidth,
    /// including per-fragment overhead bytes.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if self.bandwidth_mbps.is_infinite() {
            return SimDuration::ZERO;
        }
        let wire_bytes = bytes + self.fragments(bytes) * self.fragment_overhead;
        let bits = wire_bytes as f64 * 8.0;
        SimDuration::from_secs_f64(bits / (self.bandwidth_mbps * 1e6))
    }

    /// Samples one one-way delivery. Returns `None` when the message is
    /// lost (any lost fragment loses the message).
    pub fn sample_one_way(&self, bytes: usize, rng: &mut SimRng) -> Option<SimDuration> {
        for _ in 0..self.fragments(bytes) {
            if rng.chance(self.loss_prob) {
                return None;
            }
        }
        let jitter = if self.jitter_sigma > 0.0 {
            rng.log_normal(
                -self.jitter_sigma * self.jitter_sigma / 2.0,
                self.jitter_sigma,
            )
        } else {
            1.0
        };
        Some(self.base_latency.mul_f64(jitter) + self.transfer_time(bytes))
    }
}

impl std::fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(LinkSpec::ble().validate().is_ok());
        assert!(LinkSpec::wifi_direct().validate().is_ok());
        assert!(LinkSpec::wan().validate().is_ok());
        assert!(LinkSpec::ideal().validate().is_ok());
    }

    #[test]
    fn wan_sits_between_ble_latency_and_wifi_bandwidth() {
        // The edge tier only makes sense if a WAN round-trip undercuts
        // full inference (~75 ms MobileNet) while staying slower than a
        // short-range WiFi-Direct hop: sanity-pin the calibration.
        let wan = LinkSpec::wan();
        assert_eq!(wan.name, "wan");
        assert!(wan.base_latency > LinkSpec::wifi_direct().base_latency);
        assert!(wan.base_latency * 2 < SimDuration::from_millis(75));
        assert!(wan.loss_prob < LinkSpec::ble().loss_prob);
        // Far range: proximity never gates an edge query.
        assert!(wan.range_m > 1.0e6);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        let wifi = LinkSpec::wifi_direct();
        // 60 Mbps = 7.5 MB/s; 750 KB takes ~100 ms (+3% fragment headers).
        let t = wifi.transfer_time(750_000);
        assert!((t.as_millis_f64() - 100.0).abs() < 5.0, "{t}");
        assert_eq!(
            LinkSpec::ideal().transfer_time(1_000_000),
            SimDuration::ZERO
        );
    }

    #[test]
    fn fragmentation_counts_and_overhead() {
        let ble = LinkSpec::ble();
        assert_eq!(ble.fragments(0), 1);
        assert_eq!(ble.fragments(244), 1);
        assert_eq!(ble.fragments(245), 2);
        assert_eq!(ble.fragments(1_000), 5);
        // A 2-fragment message costs more than twice a half-size one only
        // by the extra header.
        let one = ble.transfer_time(244);
        let two = ble.transfer_time(488);
        let delta = two.as_secs_f64() - 2.0 * one.as_secs_f64();
        // Tolerance: SimDuration rounds to whole nanoseconds.
        assert!(
            delta.abs() < 5e-9,
            "overhead must scale linearly, delta {delta}"
        );
    }

    #[test]
    fn long_messages_are_more_fragile() {
        let ble = LinkSpec::ble();
        let mut rng = SimRng::seed(9);
        let mut lost_short = 0;
        let mut lost_long = 0;
        for _ in 0..4_000 {
            if ble.sample_one_way(100, &mut rng).is_none() {
                lost_short += 1;
            }
            if ble.sample_one_way(2_440, &mut rng).is_none() {
                lost_long += 1;
            }
        }
        // 10 fragments: P(loss) = 1 − 0.97¹⁰ ≈ 26% vs 3%.
        assert!(
            lost_long > lost_short * 4,
            "short {lost_short}, long {lost_long}"
        );
    }

    #[test]
    fn ble_is_much_slower_than_wifi_for_payloads() {
        let payload = 10_000;
        let ble = LinkSpec::ble().transfer_time(payload);
        let wifi = LinkSpec::wifi_direct().transfer_time(payload);
        assert!(ble.as_nanos() > 50 * wifi.as_nanos());
    }

    #[test]
    fn sampled_latency_concentrates_near_base() {
        let wifi = LinkSpec::wifi_direct();
        let mut rng = SimRng::seed(1);
        let mut sum = 0.0;
        let mut n = 0;
        for _ in 0..5_000 {
            if let Some(d) = wifi.sample_one_way(100, &mut rng) {
                sum += d.as_millis_f64();
                n += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.5, "mean one-way {mean} ms");
    }

    #[test]
    fn loss_rate_matches_spec() {
        let ble = LinkSpec::ble();
        let mut rng = SimRng::seed(2);
        let lost = (0..20_000)
            .filter(|_| ble.sample_one_way(10, &mut rng).is_none())
            .count();
        let rate = lost as f64 / 20_000.0;
        assert!((rate - 0.03).abs() < 0.01, "loss rate {rate}");
    }

    #[test]
    fn ideal_link_is_free_and_lossless() {
        let ideal = LinkSpec::ideal();
        let mut rng = SimRng::seed(3);
        for _ in 0..100 {
            assert_eq!(
                ideal.sample_one_way(1_000_000, &mut rng),
                Some(SimDuration::ZERO)
            );
        }
    }

    #[test]
    fn validates_loss() {
        let err = LinkSpec {
            loss_prob: 1.5,
            ..LinkSpec::ble()
        }
        .validate()
        .expect_err("loss outside [0, 1] must be rejected");
        assert!(err.to_string().contains("loss_prob"), "{err}");
    }

    #[test]
    fn display_is_name() {
        assert_eq!(LinkSpec::ble().to_string(), "ble");
    }
}
