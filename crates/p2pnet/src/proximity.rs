//! Who is in radio range of whom.

use serde::{Deserialize, Serialize};

/// Disk-model connectivity: two devices can talk iff their planar distance
/// is at most the radio range. Simple, standard, and sufficient — the
/// caching system only consumes the resulting neighbour lists.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProximityModel {
    range_m: f64,
}

impl ProximityModel {
    /// A model with the given radio range in metres.
    ///
    /// # Panics
    ///
    /// Panics if `range_m` is not positive and finite.
    pub fn new(range_m: f64) -> ProximityModel {
        assert!(
            range_m > 0.0 && range_m.is_finite(),
            "ProximityModel: range must be positive, got {range_m}"
        );
        ProximityModel { range_m }
    }

    /// The radio range, metres.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Whether two positions are in range.
    pub fn in_range(&self, a: (f64, f64), b: (f64, f64)) -> bool {
        let dx = a.0 - b.0;
        let dy = a.1 - b.1;
        dx * dx + dy * dy <= self.range_m * self.range_m
    }

    /// Indices of all devices in range of device `of` (excluding itself),
    /// nearest first.
    pub fn neighbors(&self, positions: &[(f64, f64)], of: usize) -> Vec<usize> {
        let Some(&me) = positions.get(of) else {
            panic!("neighbors: index {of} out of range");
        };
        let mut found: Vec<(usize, f64)> = positions
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != of)
            .filter_map(|(i, &p)| {
                let dx = me.0 - p.0;
                let dy = me.1 - p.1;
                let d2 = dx * dx + dy * dy;
                (d2 <= self.range_m * self.range_m).then_some((i, d2))
            })
            .collect();
        found.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        found.into_iter().map(|(i, _)| i).collect()
    }

    /// Full symmetric adjacency: `result[i]` holds `i`'s neighbours.
    pub fn adjacency(&self, positions: &[(f64, f64)]) -> Vec<Vec<usize>> {
        (0..positions.len())
            .map(|i| self.neighbors(positions, i))
            .collect()
    }
}

/// A grid-bucketed spatial index over one round's device positions.
///
/// [`ProximityModel::neighbors`] scans every device, which is O(n) per
/// query and O(n²) per round — fine for a handful of devices, fatal for
/// a fleet. The grid buckets positions into square cells one radio
/// range wide, so a query only examines the 3×3 cell block around the
/// querier (everything in range lies inside it by construction). With
/// bounded local density that is O(1) per query.
///
/// Results are *exactly* [`ProximityModel::neighbors`]' answer — same
/// membership, same nearest-first `(distance², index)` order — pinned
/// by test, so the fleet engine and the legacy sim agree on who talks
/// to whom.
#[derive(Debug, Clone)]
pub struct ProximityGrid {
    model: ProximityModel,
    cell: f64,
    buckets: std::collections::HashMap<(i64, i64), Vec<u32>>,
    positions: Vec<(f64, f64)>,
}

impl ProximityGrid {
    /// Buckets `positions` into range-sized cells.
    pub fn build(model: ProximityModel, positions: &[(f64, f64)]) -> ProximityGrid {
        let cell = model.range_m();
        let mut buckets: std::collections::HashMap<(i64, i64), Vec<u32>> =
            std::collections::HashMap::new();
        for (i, &p) in positions.iter().enumerate() {
            buckets.entry(cell_of(p, cell)).or_default().push(i as u32);
        }
        ProximityGrid {
            model,
            cell,
            buckets,
            positions: positions.to_vec(),
        }
    }

    /// The underlying disk model.
    pub fn model(&self) -> &ProximityModel {
        &self.model
    }

    /// Number of indexed positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if no positions were indexed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The indexed position of device `of`, if in range.
    pub fn position(&self, of: usize) -> Option<(f64, f64)> {
        self.positions.get(of).copied()
    }

    /// Indices of all devices in range of device `of` (excluding
    /// itself), nearest first — bit-identical to
    /// [`ProximityModel::neighbors`] on the same positions.
    ///
    /// # Panics
    ///
    /// Panics if `of` is out of range.
    pub fn neighbors(&self, of: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.neighbors_into(of, &mut out);
        out
    }

    /// [`neighbors`](Self::neighbors) into a caller-provided buffer
    /// (cleared first), so a per-shard scratch vector survives the whole
    /// round without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `of` is out of range.
    pub fn neighbors_into(&self, of: usize, out: &mut Vec<usize>) {
        out.clear();
        let Some(&me) = self.positions.get(of) else {
            panic!("neighbors: index {of} out of range");
        };
        let r2 = self.model.range_m() * self.model.range_m();
        let (cx, cy) = cell_of(me, self.cell);
        let mut found: Vec<(u32, f64)> = Vec::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                let Some(bucket) = self.buckets.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &i in bucket {
                    if i as usize == of {
                        continue;
                    }
                    let Some(&p) = self.positions.get(i as usize) else {
                        continue;
                    };
                    let ddx = me.0 - p.0;
                    let ddy = me.1 - p.1;
                    let d2 = ddx * ddx + ddy * ddy;
                    if d2 <= r2 {
                        found.push((i, d2));
                    }
                }
            }
        }
        found.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out.extend(found.iter().map(|&(i, _)| i as usize));
    }
}

/// The grid cell containing `p` for the given cell width.
fn cell_of(p: (f64, f64), cell: f64) -> (i64, i64) {
    ((p.0 / cell).floor() as i64, (p.1 / cell).floor() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_is_a_disk() {
        let model = ProximityModel::new(10.0);
        assert!(model.in_range((0.0, 0.0), (10.0, 0.0)));
        assert!(!model.in_range((0.0, 0.0), (10.01, 0.0)));
        assert!(model.in_range((0.0, 0.0), (6.0, 8.0)));
        assert!(!model.in_range((0.0, 0.0), (8.0, 8.0)));
    }

    #[test]
    fn neighbors_sorted_by_distance_excluding_self() {
        let model = ProximityModel::new(100.0);
        let positions = [(0.0, 0.0), (5.0, 0.0), (1.0, 0.0), (200.0, 0.0)];
        let n = model.neighbors(&positions, 0);
        assert_eq!(n, vec![2, 1]);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let model = ProximityModel::new(12.0);
        let positions = [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (40.0, 0.0)];
        let adj = model.adjacency(&positions);
        for (i, neighbors) in adj.iter().enumerate() {
            for &j in neighbors {
                assert!(adj[j].contains(&i), "{i} -> {j} not symmetric");
            }
        }
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert!(adj[3].is_empty());
    }

    #[test]
    fn singleton_has_no_neighbours() {
        let model = ProximityModel::new(5.0);
        assert!(model.neighbors(&[(0.0, 0.0)], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn neighbors_validates_index() {
        ProximityModel::new(5.0).neighbors(&[(0.0, 0.0)], 1);
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn rejects_zero_range() {
        ProximityModel::new(0.0);
    }

    #[test]
    // Exact comparison is intentional: the accessor round-trips the value.
    #[allow(clippy::float_cmp)]
    fn accessor() {
        assert_eq!(ProximityModel::new(7.5).range_m(), 7.5);
    }

    /// Deterministic pseudo-random positions without pulling in an RNG:
    /// a splitmix-style scramble of the index.
    fn scrambled_positions(count: usize, spread: f64) -> Vec<(f64, f64)> {
        (0..count as u64)
            .map(|i| {
                let mut z = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z ^= z >> 27;
                let x = (z & 0xffff) as f64 / 65535.0 * spread;
                let y = ((z >> 16) & 0xffff) as f64 / 65535.0 * spread;
                (x, y)
            })
            .collect()
    }

    #[test]
    fn grid_matches_exhaustive_scan_exactly() {
        for range in [3.0, 10.0, 45.0] {
            let model = ProximityModel::new(range);
            let positions = scrambled_positions(200, 100.0);
            let grid = ProximityGrid::build(model, &positions);
            for of in 0..positions.len() {
                assert_eq!(
                    grid.neighbors(of),
                    model.neighbors(&positions, of),
                    "range {range}, device {of}"
                );
            }
        }
    }

    #[test]
    fn grid_handles_negative_coordinates_and_boundaries() {
        let model = ProximityModel::new(10.0);
        // Straddle cell boundaries exactly at multiples of the range.
        let positions = [
            (-10.0, -10.0),
            (0.0, 0.0),
            (10.0, 0.0),
            (10.01, 0.0),
            (-0.01, 0.0),
            (20.0, 20.0),
        ];
        let grid = ProximityGrid::build(model, &positions);
        for of in 0..positions.len() {
            assert_eq!(grid.neighbors(of), model.neighbors(&positions, of));
        }
        assert_eq!(grid.len(), positions.len());
        assert!(!grid.is_empty());
        assert_eq!(grid.position(1), Some((0.0, 0.0)));
        assert_eq!(grid.position(99), None);
    }

    #[test]
    fn grid_neighbors_into_reuses_the_buffer() {
        let model = ProximityModel::new(50.0);
        let positions = scrambled_positions(40, 60.0);
        let grid = ProximityGrid::build(model, &positions);
        let mut buffer = vec![7usize; 3];
        grid.neighbors_into(0, &mut buffer);
        assert_eq!(buffer, model.neighbors(&positions, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn grid_neighbors_validates_index() {
        let grid = ProximityGrid::build(ProximityModel::new(5.0), &[(0.0, 0.0)]);
        grid.neighbors(1);
    }
}
