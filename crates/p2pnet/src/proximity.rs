//! Who is in radio range of whom.

use serde::{Deserialize, Serialize};

/// Disk-model connectivity: two devices can talk iff their planar distance
/// is at most the radio range. Simple, standard, and sufficient — the
/// caching system only consumes the resulting neighbour lists.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProximityModel {
    range_m: f64,
}

impl ProximityModel {
    /// A model with the given radio range in metres.
    ///
    /// # Panics
    ///
    /// Panics if `range_m` is not positive and finite.
    pub fn new(range_m: f64) -> ProximityModel {
        assert!(
            range_m > 0.0 && range_m.is_finite(),
            "ProximityModel: range must be positive, got {range_m}"
        );
        ProximityModel { range_m }
    }

    /// The radio range, metres.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Whether two positions are in range.
    pub fn in_range(&self, a: (f64, f64), b: (f64, f64)) -> bool {
        let dx = a.0 - b.0;
        let dy = a.1 - b.1;
        dx * dx + dy * dy <= self.range_m * self.range_m
    }

    /// Indices of all devices in range of device `of` (excluding itself),
    /// nearest first.
    pub fn neighbors(&self, positions: &[(f64, f64)], of: usize) -> Vec<usize> {
        let Some(&me) = positions.get(of) else {
            panic!("neighbors: index {of} out of range");
        };
        let mut found: Vec<(usize, f64)> = positions
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != of)
            .filter_map(|(i, &p)| {
                let dx = me.0 - p.0;
                let dy = me.1 - p.1;
                let d2 = dx * dx + dy * dy;
                (d2 <= self.range_m * self.range_m).then_some((i, d2))
            })
            .collect();
        found.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        found.into_iter().map(|(i, _)| i).collect()
    }

    /// Full symmetric adjacency: `result[i]` holds `i`'s neighbours.
    pub fn adjacency(&self, positions: &[(f64, f64)]) -> Vec<Vec<usize>> {
        (0..positions.len())
            .map(|i| self.neighbors(positions, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_is_a_disk() {
        let model = ProximityModel::new(10.0);
        assert!(model.in_range((0.0, 0.0), (10.0, 0.0)));
        assert!(!model.in_range((0.0, 0.0), (10.01, 0.0)));
        assert!(model.in_range((0.0, 0.0), (6.0, 8.0)));
        assert!(!model.in_range((0.0, 0.0), (8.0, 8.0)));
    }

    #[test]
    fn neighbors_sorted_by_distance_excluding_self() {
        let model = ProximityModel::new(100.0);
        let positions = [(0.0, 0.0), (5.0, 0.0), (1.0, 0.0), (200.0, 0.0)];
        let n = model.neighbors(&positions, 0);
        assert_eq!(n, vec![2, 1]);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let model = ProximityModel::new(12.0);
        let positions = [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (40.0, 0.0)];
        let adj = model.adjacency(&positions);
        for (i, neighbors) in adj.iter().enumerate() {
            for &j in neighbors {
                assert!(adj[j].contains(&i), "{i} -> {j} not symmetric");
            }
        }
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert!(adj[3].is_empty());
    }

    #[test]
    fn singleton_has_no_neighbours() {
        let model = ProximityModel::new(5.0);
        assert!(model.neighbors(&[(0.0, 0.0)], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn neighbors_validates_index() {
        ProximityModel::new(5.0).neighbors(&[(0.0, 0.0)], 1);
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn rejects_zero_range() {
        ProximityModel::new(0.0);
    }

    #[test]
    // Exact comparison is intentional: the accessor round-trips the value.
    #[allow(clippy::float_cmp)]
    fn accessor() {
        assert_eq!(ProximityModel::new(7.5).range_m(), 7.5);
    }
}
