//! Typed configuration errors.
//!
//! Validation used to panic at the first bad knob; every `validate`
//! method in this crate now returns `Result<(), ConfigError>` so callers
//! can surface the problem as a value (the simulation front-end wraps
//! these in its own `ConfigError`). Constructors that take a validated
//! config (`Transport::new`, `Discovery::new`) still panic, preserving
//! the old fail-fast behaviour for infallible call sites.

use std::fmt;

/// Why a network-layer configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// A parameter that must be strictly positive was zero or negative.
    NotPositive {
        /// The type being validated (e.g. `"LinkSpec"`).
        context: &'static str,
        /// The offending field.
        field: &'static str,
    },
    /// A numeric parameter fell outside its legal closed range.
    OutOfRange {
        /// The type being validated.
        context: &'static str,
        /// The offending field.
        field: &'static str,
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
    /// Two parameters are individually legal but mutually inconsistent.
    Inconsistent {
        /// The type being validated.
        context: &'static str,
        /// Human-readable description of the conflict.
        message: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPositive { context, field } => {
                write!(f, "{context}: {field} must be positive")
            }
            ConfigError::OutOfRange {
                context,
                field,
                min,
                max,
            } => write!(f, "{context}: {field} must be in [{min}, {max}]"),
            ConfigError::Inconsistent { context, message } => {
                write!(f, "{context}: {message}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_field() {
        let e = ConfigError::OutOfRange {
            context: "LinkSpec",
            field: "loss_prob",
            min: 0.0,
            max: 1.0,
        };
        assert_eq!(e.to_string(), "LinkSpec: loss_prob must be in [0, 1]");
        let e = ConfigError::NotPositive {
            context: "LinkSpec",
            field: "mtu",
        };
        assert_eq!(e.to_string(), "LinkSpec: mtu must be positive");
        let e = ConfigError::Inconsistent {
            context: "DiscoveryConfig",
            message: "neighbor_ttl must be at least one beacon interval",
        };
        assert!(e.to_string().contains("neighbor_ttl"));
    }
}
