//! The peer wire protocol and its binary codec.
//!
//! Three message types carry all collaboration:
//!
//! - [`P2pMessage::Query`] — "does your cache answer this key?"
//! - [`P2pMessage::Reply`] — the hit (label + confidence + distance) or a
//!   miss.
//! - [`P2pMessage::Advertise`] — unsolicited sharing of fresh entries
//!   (key + label + confidence) after a device runs a full inference.
//!
//! The codec is a compact hand-rolled binary format (tag byte, little-
//! endian fields, `f32` key components) so that the byte counts the
//! transport charges — and hence peer latency and radio energy — are
//! realistic for the payloads actually exchanged.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use features::{FeatureVector, QuantizedVector};

/// Magic byte prefix guarding against cross-protocol messages.
const MAGIC: u8 = 0xAC;

const TAG_QUERY: u8 = 1;
const TAG_REPLY: u8 = 2;
const TAG_ADVERTISE: u8 = 3;
const TAG_ADVERTISE_COMPACT: u8 = 4;

/// A cache hit as reported by a remote peer. Labels travel as raw `u32`
/// (the label space is shared deployment-wide).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteHit {
    /// The peer's cached label.
    pub label: u32,
    /// The peer's confidence in that label.
    pub confidence: f64,
    /// Distance between the query and the peer's nearest entry.
    pub distance: f64,
}

/// One shareable cache entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireEntry {
    /// The feature-space key.
    pub key: FeatureVector,
    /// The label.
    pub label: u32,
    /// Producer confidence.
    pub confidence: f64,
}

/// One shareable cache entry with an 8-bit-quantized key — ~4× smaller on
/// the wire than [`WireEntry`] at negligible distance distortion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompactEntry {
    /// The quantized feature-space key.
    pub key: QuantizedVector,
    /// The label.
    pub label: u32,
    /// Producer confidence.
    pub confidence: f64,
}

/// A peer-to-peer message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum P2pMessage {
    /// Ask a peer to run its hit test on `key`.
    Query {
        /// Correlates the reply.
        query_id: u64,
        /// The lookup key.
        key: FeatureVector,
    },
    /// Answer to a [`P2pMessage::Query`].
    Reply {
        /// Echoes the query's id.
        query_id: u64,
        /// The hit, or `None` for a miss.
        hit: Option<RemoteHit>,
    },
    /// Push fresh entries to a neighbour.
    Advertise {
        /// The shared entries.
        entries: Vec<WireEntry>,
    },
    /// Push fresh entries with quantized keys (see [`CompactEntry`]).
    AdvertiseCompact {
        /// The shared entries.
        entries: Vec<CompactEntry>,
    },
}

/// Codec failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the message did.
    Truncated,
    /// The first byte was not the protocol magic.
    BadMagic(u8),
    /// Unknown message tag.
    BadTag(u8),
    /// A decoded field was structurally invalid (e.g. non-finite float,
    /// empty key).
    BadField(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadMagic(b) => write!(f, "bad magic byte {b:#04x}"),
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BadField(which) => write!(f, "invalid field: {which}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl P2pMessage {
    /// Encodes the message to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u8(MAGIC);
        match self {
            P2pMessage::Query { query_id, key } => {
                buf.put_u8(TAG_QUERY);
                buf.put_u64_le(*query_id);
                put_key(&mut buf, key);
            }
            P2pMessage::Reply { query_id, hit } => {
                buf.put_u8(TAG_REPLY);
                buf.put_u64_le(*query_id);
                match hit {
                    None => buf.put_u8(0),
                    Some(h) => {
                        buf.put_u8(1);
                        buf.put_u32_le(h.label);
                        buf.put_f64_le(h.confidence);
                        buf.put_f64_le(h.distance);
                    }
                }
            }
            P2pMessage::Advertise { entries } => {
                buf.put_u8(TAG_ADVERTISE);
                buf.put_u16_le(entries.len() as u16);
                for e in entries {
                    put_key(&mut buf, &e.key);
                    buf.put_u32_le(e.label);
                    buf.put_f64_le(e.confidence);
                }
            }
            P2pMessage::AdvertiseCompact { entries } => {
                buf.put_u8(TAG_ADVERTISE_COMPACT);
                buf.put_u16_le(entries.len() as u16);
                for e in entries {
                    buf.put_u16_le(e.key.dim() as u16);
                    buf.put_f32_le(e.key.min());
                    buf.put_f32_le(e.key.scale());
                    buf.put_slice(e.key.codes());
                    buf.put_u32_le(e.label);
                    buf.put_f64_le(e.confidence);
                }
            }
        }
        buf.freeze()
    }

    /// The exact number of bytes [`encode`](Self::encode) produces — what
    /// the transport charges without materializing the buffer.
    pub fn encoded_len(&self) -> usize {
        2 + match self {
            P2pMessage::Query { key, .. } => 8 + 2 + 4 * key.dim(),
            P2pMessage::Reply { hit, .. } => 8 + 1 + if hit.is_some() { 20 } else { 0 },
            P2pMessage::Advertise { entries } => {
                2 + entries
                    .iter()
                    .map(|e| 2 + 4 * e.key.dim() + 4 + 8)
                    .sum::<usize>()
            }
            P2pMessage::AdvertiseCompact { entries } => {
                2 + entries
                    .iter()
                    .map(|e| e.key.encoded_len() + 4 + 8)
                    .sum::<usize>()
            }
        }
    }

    /// Decodes a message from bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for truncated, foreign or corrupt input.
    pub fn decode(mut data: &[u8]) -> Result<P2pMessage, DecodeError> {
        let buf = &mut data;
        let magic = take_u8(buf)?;
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let tag = take_u8(buf)?;
        let message = match tag {
            TAG_QUERY => {
                let query_id = take_u64(buf)?;
                let key = take_key(buf)?;
                P2pMessage::Query { query_id, key }
            }
            TAG_REPLY => {
                let query_id = take_u64(buf)?;
                let has_hit = take_u8(buf)?;
                let hit = match has_hit {
                    0 => None,
                    1 => {
                        let label = take_u32(buf)?;
                        let confidence = take_f64(buf)?;
                        let distance = take_f64(buf)?;
                        if !confidence.is_finite() || !distance.is_finite() {
                            return Err(DecodeError::BadField("reply floats"));
                        }
                        Some(RemoteHit {
                            label,
                            confidence,
                            distance,
                        })
                    }
                    _ => return Err(DecodeError::BadField("hit flag")),
                };
                P2pMessage::Reply { query_id, hit }
            }
            TAG_ADVERTISE => {
                let count = take_u16(buf)? as usize;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = take_key(buf)?;
                    let label = take_u32(buf)?;
                    let confidence = take_f64(buf)?;
                    if !confidence.is_finite() {
                        return Err(DecodeError::BadField("advertise confidence"));
                    }
                    entries.push(WireEntry {
                        key,
                        label,
                        confidence,
                    });
                }
                P2pMessage::Advertise { entries }
            }
            TAG_ADVERTISE_COMPACT => {
                let count = take_u16(buf)? as usize;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let dim = take_u16(buf)? as usize;
                    let min = take_f32(buf)?;
                    let scale = take_f32(buf)?;
                    if buf.remaining() < dim {
                        return Err(DecodeError::Truncated);
                    }
                    let mut codes = vec![0u8; dim];
                    buf.copy_to_slice(&mut codes);
                    let key = QuantizedVector::from_parts(min, scale, codes)
                        .map_err(|_| DecodeError::BadField("compact key"))?;
                    let label = take_u32(buf)?;
                    let confidence = take_f64(buf)?;
                    if !confidence.is_finite() {
                        return Err(DecodeError::BadField("advertise confidence"));
                    }
                    entries.push(CompactEntry {
                        key,
                        label,
                        confidence,
                    });
                }
                P2pMessage::AdvertiseCompact { entries }
            }
            other => return Err(DecodeError::BadTag(other)),
        };
        Ok(message)
    }
}

fn put_key(buf: &mut BytesMut, key: &FeatureVector) {
    buf.put_u16_le(key.dim() as u16);
    for &c in key.as_slice() {
        buf.put_f32_le(c);
    }
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u8())
}

fn take_u16(buf: &mut &[u8]) -> Result<u16, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u16_le())
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn take_f32(buf: &mut &[u8]) -> Result<f32, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_f32_le())
}

fn take_f64(buf: &mut &[u8]) -> Result<f64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_f64_le())
}

fn take_key(buf: &mut &[u8]) -> Result<FeatureVector, DecodeError> {
    let dim = take_u16(buf)? as usize;
    if dim == 0 {
        return Err(DecodeError::BadField("key dimension"));
    }
    if buf.remaining() < 4 * dim {
        return Err(DecodeError::Truncated);
    }
    let mut components = Vec::with_capacity(dim);
    for _ in 0..dim {
        components.push(buf.get_f32_le());
    }
    FeatureVector::from_vec(components).map_err(|_| DecodeError::BadField("key components"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(components: &[f32]) -> FeatureVector {
        FeatureVector::from_vec(components.to_vec()).unwrap()
    }

    #[test]
    fn query_round_trip() {
        let m = P2pMessage::Query {
            query_id: 42,
            key: key(&[1.5, -2.5, 0.0]),
        };
        let encoded = m.encode();
        assert_eq!(encoded.len(), m.encoded_len());
        assert_eq!(P2pMessage::decode(&encoded).unwrap(), m);
    }

    #[test]
    fn reply_round_trips_both_variants() {
        let hit = P2pMessage::Reply {
            query_id: 7,
            hit: Some(RemoteHit {
                label: 3,
                confidence: 0.875,
                distance: 0.25,
            }),
        };
        let miss = P2pMessage::Reply {
            query_id: 8,
            hit: None,
        };
        for m in [hit, miss] {
            let encoded = m.encode();
            assert_eq!(encoded.len(), m.encoded_len());
            assert_eq!(P2pMessage::decode(&encoded).unwrap(), m);
        }
    }

    #[test]
    fn advertise_round_trips() {
        let m = P2pMessage::Advertise {
            entries: vec![
                WireEntry {
                    key: key(&[0.1; 64]),
                    label: 5,
                    confidence: 0.9,
                },
                WireEntry {
                    key: key(&[-0.5; 64]),
                    label: 6,
                    confidence: 0.8,
                },
            ],
        };
        let encoded = m.encode();
        assert_eq!(encoded.len(), m.encoded_len());
        assert_eq!(P2pMessage::decode(&encoded).unwrap(), m);
    }

    #[test]
    fn advertise_compact_round_trips_and_shrinks() {
        let float_key = key(&[0.25; 64]);
        let compact = P2pMessage::AdvertiseCompact {
            entries: vec![CompactEntry {
                key: QuantizedVector::quantize(&float_key),
                label: 5,
                confidence: 0.9,
            }],
        };
        let encoded = compact.encode();
        assert_eq!(encoded.len(), compact.encoded_len());
        assert_eq!(P2pMessage::decode(&encoded).unwrap(), compact);
        // vs the float version of the same entry.
        let float_version = P2pMessage::Advertise {
            entries: vec![WireEntry {
                key: float_key,
                label: 5,
                confidence: 0.9,
            }],
        };
        assert!(
            compact.encoded_len() * 2 < float_version.encoded_len(),
            "compact {} vs float {}",
            compact.encoded_len(),
            float_version.encoded_len()
        );
    }

    #[test]
    fn empty_advertise_is_legal() {
        let m = P2pMessage::Advertise { entries: vec![] };
        assert_eq!(P2pMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn sizes_are_compact() {
        // A 64-dim query is ~268 bytes; a miss reply is 11.
        let query = P2pMessage::Query {
            query_id: 1,
            key: key(&[0.0; 64]),
        };
        assert_eq!(query.encoded_len(), 2 + 8 + 2 + 256);
        let miss = P2pMessage::Reply {
            query_id: 1,
            hit: None,
        };
        assert_eq!(miss.encoded_len(), 11);
    }

    #[test]
    fn rejects_bad_magic_and_tag() {
        assert_eq!(
            P2pMessage::decode(&[0x00, 1]),
            Err(DecodeError::BadMagic(0))
        );
        assert_eq!(
            P2pMessage::decode(&[MAGIC, 99]),
            Err(DecodeError::BadTag(99))
        );
        assert_eq!(P2pMessage::decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let m = P2pMessage::Query {
            query_id: 42,
            key: key(&[1.0, 2.0]),
        };
        let encoded = m.encode();
        for len in 0..encoded.len() {
            let err = P2pMessage::decode(&encoded[..len]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated | DecodeError::BadField(_)),
                "prefix of {len} gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_nan_floats() {
        let m = P2pMessage::Reply {
            query_id: 1,
            hit: Some(RemoteHit {
                label: 0,
                confidence: 0.5,
                distance: 0.5,
            }),
        };
        let mut raw = m.encode().to_vec();
        // Corrupt the confidence (offset: magic 1 + tag 1 + id 8 + flag 1 +
        // label 4 = 15).
        raw[15..23].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            P2pMessage::decode(&raw),
            Err(DecodeError::BadField("reply floats"))
        );
    }

    #[test]
    fn rejects_zero_dim_key() {
        let mut raw = vec![MAGIC, TAG_QUERY];
        raw.extend_from_slice(&42u64.to_le_bytes());
        raw.extend_from_slice(&0u16.to_le_bytes());
        assert_eq!(
            P2pMessage::decode(&raw),
            Err(DecodeError::BadField("key dimension"))
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(DecodeError::Truncated.to_string(), "message truncated");
        assert_eq!(DecodeError::BadTag(9).to_string(), "unknown message tag 9");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_key() -> impl Strategy<Value = FeatureVector> {
        proptest::collection::vec(-100.0f32..100.0, 1..32)
            .prop_map(|v| FeatureVector::from_vec(v).unwrap())
    }

    fn arb_message() -> impl Strategy<Value = P2pMessage> {
        prop_oneof![
            (any::<u64>(), arb_key())
                .prop_map(|(query_id, key)| P2pMessage::Query { query_id, key }),
            (
                any::<u64>(),
                proptest::option::of((any::<u32>(), 0.0f64..1.0, 0.0f64..10.0))
            )
                .prop_map(|(query_id, hit)| P2pMessage::Reply {
                    query_id,
                    hit: hit.map(|(label, confidence, distance)| RemoteHit {
                        label,
                        confidence,
                        distance
                    }),
                }),
            proptest::collection::vec(
                (arb_key(), any::<u32>(), 0.0f64..1.0).prop_map(|(key, label, confidence)| {
                    WireEntry {
                        key,
                        label,
                        confidence,
                    }
                }),
                0..5
            )
            .prop_map(|entries| P2pMessage::Advertise { entries }),
            proptest::collection::vec(
                (arb_key(), any::<u32>(), 0.0f64..1.0).prop_map(|(key, label, confidence)| {
                    CompactEntry {
                        key: QuantizedVector::quantize(&key),
                        label,
                        confidence,
                    }
                }),
                0..5
            )
            .prop_map(|entries| P2pMessage::AdvertiseCompact { entries }),
        ]
    }

    proptest! {
        /// encode → decode is the identity, and encoded_len is exact.
        #[test]
        fn round_trip(m in arb_message()) {
            let encoded = m.encode();
            prop_assert_eq!(encoded.len(), m.encoded_len());
            prop_assert_eq!(P2pMessage::decode(&encoded).unwrap(), m);
        }

        /// Arbitrary byte soup never panics the decoder.
        #[test]
        fn decoder_is_total(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = P2pMessage::decode(&data);
        }
    }
}
