//! Infrastructure-less peer-to-peer networking substrate.
//!
//! The paper's third reuse signal is "information from nearby,
//! peer-to-peer devices" — explicitly *without* infrastructure (no edge
//! server, no AP): devices discover each other over BLE / WiFi-Direct and
//! exchange cache queries and entries directly. This crate provides what
//! the pipeline needs from that stack:
//!
//! - [`ProximityModel`] — who can talk to whom, from device positions.
//! - [`LinkSpec`] — per-technology latency/bandwidth/loss
//!   ([`LinkSpec::ble`], [`LinkSpec::wifi_direct`]).
//! - [`protocol`] — the wire messages (query / reply / advertise) with a
//!   compact binary codec, so peer traffic has realistic byte counts.
//! - [`Transport`] — byte- and message-accounted delivery with sampled
//!   latency and loss.
//!
//! # Example
//!
//! ```
//! use p2pnet::{LinkSpec, Transport};
//! use simcore::SimRng;
//!
//! let mut transport = Transport::new(LinkSpec::wifi_direct());
//! let mut rng = SimRng::seed(1);
//! // A 300-byte query and a 40-byte reply: round trip takes ~ms.
//! let rtt = transport.round_trip(300, 40, &mut rng);
//! assert!(rtt.is_some());
//! assert_eq!(transport.counters().messages_sent, 2);
//! ```

pub mod discovery;
pub mod error;
pub mod exchange;
pub mod faults;
pub mod link;
pub mod protocol;
pub mod proximity;
pub mod transport;

pub use discovery::{Discovery, DiscoveryConfig, NeighborTable};
pub use error::ConfigError;
pub use exchange::{BoundaryExchange, Envelope};
pub use faults::{
    BreakerConfig, CircuitBreaker, DarkFallback, FaultConfig, FaultEpisode, FaultSchedule,
    ResilienceConfig, ResilienceCounters, RetryPolicy,
};
pub use link::LinkSpec;
pub use protocol::{DecodeError, P2pMessage, RemoteHit, WireEntry};
pub use proximity::{ProximityGrid, ProximityModel};
pub use transport::{RetryOutcome, Transport, TransportCounters};
