//! Deterministic fault injection and resilience for the peer tier.
//!
//! The baseline network model is unrealistically well-behaved: a static
//! per-fragment loss probability and nothing else. Real
//! infrastructure-less deployments see radios go dark, groups of devices
//! partition, links degrade for seconds at a time, peers crash and
//! restart, and stale peers advertise entries for world state that has
//! churned away. This module provides both halves of that story:
//!
//! - **Fault side** — [`FaultConfig`] describes episode statistics;
//!   [`FaultSchedule::generate`] expands them into concrete
//!   time-windowed episodes from a [`SimRng`] split stream, so the same
//!   seed always produces byte-identical fault timelines (and a default
//!   config produces none at all).
//! - **Resilience side** — [`RetryPolicy`] (bounded retransmission with
//!   exponential backoff), [`BreakerConfig`]/[`CircuitBreaker`] (dead
//!   peers are quarantined after N consecutive failures and re-probed at
//!   a decaying rate), [`DarkFallback`] (skip the peer tier while it is
//!   dark instead of paying its latency), and [`ResilienceCounters`]
//!   (the counter registry every fault event and recovery action is
//!   recorded through).
//!
//! Everything defaults to *off*: `FaultConfig::default()` schedules no
//! episodes and `ResilienceConfig::default()` enables no machinery, so
//! an un-faulted run consumes exactly the same random draws and produces
//! exactly the same bytes as before this module existed.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use simcore::{SimDuration, SimRng, SimTime};

use crate::error::ConfigError;

// ---------------------------------------------------------------------
// Fault side
// ---------------------------------------------------------------------

/// Statistical description of the faults to inject into one run.
///
/// Fractions are long-run duty cycles: `outage_fraction = 0.3` means each
/// device's radio spends ~30% of the run dark, in episodes whose lengths
/// are exponential with mean `outage_mean`. The default config is
/// entirely idle — no episodes of any kind are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Fraction of each device's run spent with its radio dark.
    pub outage_fraction: f64,
    /// Mean length of one radio-outage episode.
    pub outage_mean: SimDuration,
    /// Number of groups devices partition into during partition episodes
    /// (round-robin by device index). `0` or `1` disables partitions.
    pub partition_groups: u32,
    /// Fraction of the run during which the partition is in force.
    pub partition_fraction: f64,
    /// Mean length of one partition episode.
    pub partition_mean: SimDuration,
    /// Fraction of the run during which every link runs degraded.
    pub degraded_fraction: f64,
    /// Mean length of one degraded-link episode.
    pub degraded_mean: SimDuration,
    /// Base-latency multiplier while degraded (≥ 1 slows links down).
    pub degraded_latency_factor: f64,
    /// Loss-probability multiplier while degraded (capped at loss 1.0).
    pub degraded_loss_factor: f64,
    /// Expected crash/restart events per device per minute. A crash
    /// wipes the device's caches and its discovery table mid-run.
    pub crashes_per_device_minute: f64,
    /// Probability an advertisement's label is poisoned in flight —
    /// modelling a stale peer advertising entries for churned-away world
    /// state.
    pub poison_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            outage_fraction: 0.0,
            outage_mean: SimDuration::from_secs(2),
            partition_groups: 0,
            partition_fraction: 0.0,
            partition_mean: SimDuration::from_secs(5),
            degraded_fraction: 0.0,
            degraded_mean: SimDuration::from_secs(5),
            degraded_latency_factor: 1.0,
            degraded_loss_factor: 1.0,
            crashes_per_device_minute: 0.0,
            poison_prob: 0.0,
        }
    }
}

impl FaultConfig {
    /// True when this config injects nothing — the provably zero-impact
    /// state every scenario starts from.
    pub fn is_idle(&self) -> bool {
        !(self.outage_fraction > 0.0
            || (self.partition_groups >= 2 && self.partition_fraction > 0.0)
            || self.degraded_fraction > 0.0
            || self.crashes_per_device_minute > 0.0
            || self.poison_prob > 0.0)
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("outage_fraction", self.outage_fraction),
            ("partition_fraction", self.partition_fraction),
            ("degraded_fraction", self.degraded_fraction),
            ("poison_prob", self.poison_prob),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::OutOfRange {
                    context: "FaultConfig",
                    field,
                    min: 0.0,
                    max: 1.0,
                });
            }
        }
        for (field, fraction, mean) in [
            ("outage_mean", self.outage_fraction, self.outage_mean),
            (
                "partition_mean",
                self.partition_fraction,
                self.partition_mean,
            ),
            ("degraded_mean", self.degraded_fraction, self.degraded_mean),
        ] {
            if fraction > 0.0 && mean.is_zero() {
                return Err(ConfigError::NotPositive {
                    context: "FaultConfig",
                    field,
                });
            }
        }
        if self.degraded_latency_factor <= 0.0 || self.degraded_latency_factor.is_nan() {
            return Err(ConfigError::NotPositive {
                context: "FaultConfig",
                field: "degraded_latency_factor",
            });
        }
        if self.degraded_loss_factor <= 0.0 || self.degraded_loss_factor.is_nan() {
            return Err(ConfigError::NotPositive {
                context: "FaultConfig",
                field: "degraded_loss_factor",
            });
        }
        if self.crashes_per_device_minute < 0.0 {
            return Err(ConfigError::NotPositive {
                context: "FaultConfig",
                field: "crashes_per_device_minute",
            });
        }
        Ok(())
    }
}

/// One contiguous fault window, `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEpisode {
    /// When the fault begins.
    pub start: SimTime,
    /// When the fault clears (exclusive).
    pub end: SimTime,
}

impl FaultEpisode {
    /// Whether `at` falls inside this episode.
    pub fn contains(&self, at: SimTime) -> bool {
        self.start <= at && at < self.end
    }
}

/// The concrete fault timeline of one run: every episode of every kind,
/// fully materialized up front so queries are pure reads.
///
/// Built by [`FaultSchedule::generate`] from a dedicated [`SimRng`]
/// split stream — generation never touches any other stream, so adding
/// faults to a scenario perturbs nothing outside the faults themselves.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    outages: Vec<Vec<FaultEpisode>>,
    partitions: Vec<FaultEpisode>,
    groups: Vec<u32>,
    degraded: Vec<FaultEpisode>,
    crashes: Vec<Vec<SimTime>>,
    latency_factor: f64,
    loss_factor: f64,
    poison_prob: f64,
}

impl Default for FaultSchedule {
    fn default() -> Self {
        FaultSchedule {
            outages: Vec::new(),
            partitions: Vec::new(),
            groups: Vec::new(),
            degraded: Vec::new(),
            crashes: Vec::new(),
            latency_factor: 1.0,
            loss_factor: 1.0,
            poison_prob: 0.0,
        }
    }
}

/// Draws alternating up/down episodes with the requested duty cycle.
fn draw_episodes(
    fraction: f64,
    mean_down: SimDuration,
    duration: SimDuration,
    rng: &mut SimRng,
) -> Vec<FaultEpisode> {
    if fraction <= 0.0 {
        return Vec::new();
    }
    let run = duration.as_secs_f64();
    if fraction >= 1.0 {
        return vec![FaultEpisode {
            start: SimTime::ZERO,
            end: SimTime::ZERO + duration,
        }];
    }
    let mean_down_secs = mean_down.as_secs_f64();
    let mean_up_secs = mean_down_secs * (1.0 - fraction) / fraction;
    let mut episodes = Vec::new();
    let mut t = 0.0f64;
    loop {
        t += rng.exponential(1.0 / mean_up_secs);
        if t >= run {
            return episodes;
        }
        let down = rng.exponential(1.0 / mean_down_secs);
        episodes.push(FaultEpisode {
            start: SimTime::ZERO + SimDuration::from_secs_f64(t),
            end: SimTime::ZERO + SimDuration::from_secs_f64((t + down).min(run)),
        });
        t += down;
        if t >= run {
            return episodes;
        }
    }
}

impl FaultSchedule {
    /// The empty schedule: no episodes, pristine links.
    pub fn idle() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Materializes the fault timeline for `devices` devices over
    /// `duration`, drawing every episode from split children of `rng`
    /// (`"outage"/d`, `"partition"`, `"degraded"`, `"crash"/d`). The
    /// config must already be validated.
    pub fn generate(
        config: &FaultConfig,
        devices: usize,
        duration: SimDuration,
        rng: &SimRng,
    ) -> FaultSchedule {
        debug_assert!(config.validate().is_ok(), "FaultConfig must be validated");
        if config.is_idle() {
            return FaultSchedule::idle();
        }
        let outages: Vec<Vec<FaultEpisode>> = (0..devices)
            .map(|d| {
                draw_episodes(
                    config.outage_fraction,
                    config.outage_mean,
                    duration,
                    &mut rng.split_index("outage", d as u64),
                )
            })
            .collect();
        let (partitions, groups) =
            if config.partition_groups >= 2 && config.partition_fraction > 0.0 {
                (
                    draw_episodes(
                        config.partition_fraction,
                        config.partition_mean,
                        duration,
                        &mut rng.split("partition"),
                    ),
                    (0..devices)
                        .map(|d| (d as u32) % config.partition_groups)
                        .collect(),
                )
            } else {
                (Vec::new(), Vec::new())
            };
        let degraded = draw_episodes(
            config.degraded_fraction,
            config.degraded_mean,
            duration,
            &mut rng.split("degraded"),
        );
        let crashes: Vec<Vec<SimTime>> = (0..devices)
            .map(|d| {
                let mut crash_rng = rng.split_index("crash", d as u64);
                let mut times = Vec::new();
                if config.crashes_per_device_minute > 0.0 {
                    let mean_gap = 60.0 / config.crashes_per_device_minute;
                    let run = duration.as_secs_f64();
                    let mut t = 0.0f64;
                    loop {
                        t += crash_rng.exponential(1.0 / mean_gap);
                        if t >= run {
                            break;
                        }
                        times.push(SimTime::ZERO + SimDuration::from_secs_f64(t));
                    }
                }
                times
            })
            .collect();
        FaultSchedule {
            outages,
            partitions,
            groups,
            degraded,
            crashes,
            latency_factor: config.degraded_latency_factor,
            loss_factor: config.degraded_loss_factor,
            poison_prob: config.poison_prob,
        }
    }

    /// True when no episode of any kind was scheduled.
    pub fn is_idle(&self) -> bool {
        self.outages.iter().all(Vec::is_empty)
            && self.partitions.is_empty()
            && self.degraded.is_empty()
            && self.crashes.iter().all(Vec::is_empty)
            && self.poison_prob <= 0.0
    }

    /// Whether `device`'s radio is dark at `at`.
    pub fn radio_dark(&self, device: usize, at: SimTime) -> bool {
        self.outages
            .get(device)
            .is_some_and(|eps| eps.iter().any(|e| e.contains(at)))
    }

    /// Whether devices `a` and `b` sit in different partition groups
    /// while a partition episode covers `at`.
    pub fn partitioned(&self, a: usize, b: usize, at: SimTime) -> bool {
        if self.groups.is_empty() || !self.partitions.iter().any(|e| e.contains(at)) {
            return false;
        }
        match (self.groups.get(a), self.groups.get(b)) {
            (Some(ga), Some(gb)) => ga != gb,
            _ => false,
        }
    }

    /// Whether `a` and `b` can exchange messages at `at`: both radios up
    /// and no partition between them.
    pub fn reachable(&self, a: usize, b: usize, at: SimTime) -> bool {
        !self.radio_dark(a, at) && !self.radio_dark(b, at) && !self.partitioned(a, b, at)
    }

    /// Whether a degraded-link episode covers `at`.
    pub fn link_degraded(&self, at: SimTime) -> bool {
        self.degraded.iter().any(|e| e.contains(at))
    }

    /// `(latency_factor, loss_factor)` in force at `at` — `(1.0, 1.0)`
    /// outside degraded episodes.
    pub fn degradation(&self, at: SimTime) -> Option<(f64, f64)> {
        if self.link_degraded(at) {
            Some((self.latency_factor, self.loss_factor))
        } else {
            None
        }
    }

    /// Whether `device` crashes in the window `(after, upto]` — polled
    /// once per frame by the simulation driver.
    pub fn crash_between(&self, device: usize, after: SimTime, upto: SimTime) -> bool {
        self.crashes
            .get(device)
            .is_some_and(|times| times.iter().any(|&t| after < t && t <= upto))
    }

    /// Advertisement-poisoning probability.
    pub fn poison_prob(&self) -> f64 {
        self.poison_prob
    }

    /// Outage episodes scheduled for `device` (for tests and reports).
    pub fn outages(&self, device: usize) -> &[FaultEpisode] {
        self.outages.get(device).map_or(&[], Vec::as_slice)
    }
}

// ---------------------------------------------------------------------
// Resilience side
// ---------------------------------------------------------------------

/// Bounded retransmission with exponential backoff, applied to
/// advertisement delivery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retransmissions after the first attempt (0 = fire-and-forget).
    pub max_retries: u32,
    /// Wait before the first retransmission.
    pub base_backoff: SimDuration,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: SimDuration::from_millis(40),
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry number `retry` (0-based):
    /// `base_backoff · backoff_factor^retry`.
    pub fn backoff(&self, retry: u32) -> SimDuration {
        self.base_backoff
            .mul_f64(self.backoff_factor.powi(retry.min(16) as i32))
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_retries > 0 && self.base_backoff.is_zero() {
            return Err(ConfigError::NotPositive {
                context: "RetryPolicy",
                field: "base_backoff",
            });
        }
        if self.backoff_factor < 1.0 || self.backoff_factor.is_nan() {
            return Err(ConfigError::Inconsistent {
                context: "RetryPolicy",
                message: "backoff_factor must be at least 1",
            });
        }
        Ok(())
    }
}

/// Dead-peer circuit-breaker parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures before a peer is quarantined.
    pub failure_threshold: u32,
    /// Initial quarantine length.
    pub quarantine: SimDuration,
    /// Quarantine growth factor after each failed re-probe (the re-probe
    /// rate decays while a peer stays dead).
    pub backoff_factor: f64,
    /// Quarantine ceiling.
    pub max_quarantine: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            quarantine: SimDuration::from_secs(2),
            backoff_factor: 2.0,
            max_quarantine: SimDuration::from_secs(16),
        }
    }
}

impl BreakerConfig {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.failure_threshold == 0 {
            return Err(ConfigError::NotPositive {
                context: "BreakerConfig",
                field: "failure_threshold",
            });
        }
        if self.quarantine.is_zero() {
            return Err(ConfigError::NotPositive {
                context: "BreakerConfig",
                field: "quarantine",
            });
        }
        if self.backoff_factor < 1.0 || self.backoff_factor.is_nan() {
            return Err(ConfigError::Inconsistent {
                context: "BreakerConfig",
                message: "backoff_factor must be at least 1",
            });
        }
        if self.max_quarantine < self.quarantine {
            return Err(ConfigError::Inconsistent {
                context: "BreakerConfig",
                message: "max_quarantine must be at least quarantine",
            });
        }
        Ok(())
    }
}

/// Per-peer breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeerState {
    /// Healthy: counting consecutive failures.
    Closed { failures: u32 },
    /// Quarantined until `until`; `quarantine` is the span that was
    /// applied (doubled on the next failure).
    Open {
        until: SimTime,
        quarantine: SimDuration,
    },
    /// Quarantine expired; one probe is in flight.
    HalfOpen { quarantine: SimDuration },
}

/// The dead-peer circuit breaker: after `failure_threshold` consecutive
/// failures a peer is quarantined (it disappears from the neighbour
/// list); when the quarantine lapses the peer gets exactly one probe —
/// success closes the breaker, failure re-opens it with a longer
/// quarantine, up to `max_quarantine`.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    peers: HashMap<u64, PeerState>,
    quarantines: u64,
    reprobes: u64,
    suppressed: u64,
}

impl CircuitBreaker {
    /// A breaker with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        CircuitBreaker {
            config,
            peers: HashMap::new(),
            quarantines: 0,
            reprobes: 0,
            suppressed: 0,
        }
    }

    /// Whether `peer` may be queried at `now`. An expired quarantine
    /// transitions to half-open and allows exactly one probe.
    pub fn allows(&mut self, peer: u64, now: SimTime) -> bool {
        match self.peers.get(&peer).copied() {
            Some(PeerState::Open { until, quarantine }) => {
                if now >= until {
                    self.peers.insert(peer, PeerState::HalfOpen { quarantine });
                    self.reprobes += 1;
                    true
                } else {
                    self.suppressed += 1;
                    false
                }
            }
            _ => true,
        }
    }

    /// Read-only: whether `peer` is quarantined at `now`.
    pub fn is_quarantined(&self, peer: u64, now: SimTime) -> bool {
        matches!(
            self.peers.get(&peer),
            Some(PeerState::Open { until, .. }) if now < *until
        )
    }

    /// Records a successful exchange with `peer`: the breaker closes and
    /// the failure count and quarantine reset.
    pub fn record_success(&mut self, peer: u64) {
        self.peers.insert(peer, PeerState::Closed { failures: 0 });
    }

    /// Records a failed exchange with `peer`. Returns `true` when this
    /// failure opened (or re-opened) the breaker.
    pub fn record_failure(&mut self, peer: u64, now: SimTime) -> bool {
        let state = self
            .peers
            .entry(peer)
            .or_insert(PeerState::Closed { failures: 0 });
        match *state {
            PeerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.config.failure_threshold {
                    *state = PeerState::Open {
                        until: now + self.config.quarantine,
                        quarantine: self.config.quarantine,
                    };
                    self.quarantines += 1;
                    true
                } else {
                    *state = PeerState::Closed { failures };
                    false
                }
            }
            PeerState::HalfOpen { quarantine } => {
                let next = quarantine
                    .mul_f64(self.config.backoff_factor)
                    .min(self.config.max_quarantine);
                *state = PeerState::Open {
                    until: now + next,
                    quarantine: next,
                };
                self.quarantines += 1;
                true
            }
            PeerState::Open { .. } => false,
        }
    }

    /// Drops all per-peer state (as a device restart would) while
    /// keeping the lifetime event totals for reporting.
    pub fn forget_peers(&mut self) {
        self.peers.clear();
    }

    /// Quarantine (breaker-open) transitions so far.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Half-open probes granted so far.
    pub fn reprobes(&self) -> u64 {
        self.reprobes
    }

    /// Queries suppressed by an open breaker so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

/// Graceful-degradation policy: when every peer exchange has failed for
/// `threshold` consecutive peer-tier frames, the device declares the
/// peer tier dark and skips it (falling through to Local/Infer without
/// paying peer-wait latency) for `cooldown`, then probes again.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DarkFallback {
    /// Consecutive all-timeout peer frames before going dark.
    pub threshold: u32,
    /// How long to skip the peer tier before re-probing.
    pub cooldown: SimDuration,
}

impl Default for DarkFallback {
    fn default() -> Self {
        DarkFallback {
            threshold: 3,
            cooldown: SimDuration::from_secs(1),
        }
    }
}

impl DarkFallback {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.threshold == 0 {
            return Err(ConfigError::NotPositive {
                context: "DarkFallback",
                field: "threshold",
            });
        }
        if self.cooldown.is_zero() {
            return Err(ConfigError::NotPositive {
                context: "DarkFallback",
                field: "cooldown",
            });
        }
        Ok(())
    }
}

/// The resilience machinery a device runs on top of the peer tier. Every
/// member defaults to `None` (off): an un-faulted, un-hardened run is
/// byte-identical to the pre-resilience pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Advertisement retransmission policy (`None` = fire-and-forget).
    pub ad_retry: Option<RetryPolicy>,
    /// Dead-peer circuit breaker in discovery (`None` = disabled).
    pub breaker: Option<BreakerConfig>,
    /// Peer-tier graceful degradation (`None` = always pay peer latency).
    pub dark_fallback: Option<DarkFallback>,
}

impl ResilienceConfig {
    /// Everything enabled at its default tuning — the configuration the
    /// resilience experiments run with.
    pub fn recommended() -> ResilienceConfig {
        ResilienceConfig {
            ad_retry: Some(RetryPolicy::default()),
            breaker: Some(BreakerConfig::default()),
            dark_fallback: Some(DarkFallback::default()),
        }
    }

    /// Validates every enabled member.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(retry) = &self.ad_retry {
            retry.validate()?;
        }
        if let Some(breaker) = &self.breaker {
            breaker.validate()?;
        }
        if let Some(fallback) = &self.dark_fallback {
            fallback.validate()?;
        }
        Ok(())
    }
}

/// Totals of every fault event injected and every resilience action
/// taken — the registry behind the `faults` section of a run report.
///
/// Like `CacheStats` and `TransportCounters`, fields are only ever
/// incremented through the `record_*` helpers (enforced by `xtask lint`
/// rule T).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceCounters {
    /// Device-frames whose radio an outage episode covered.
    pub outage_frames: u64,
    /// Crash/restart events applied (caches and discovery wiped).
    pub crashes: u64,
    /// Advertisements whose labels were poisoned in flight.
    pub poisoned_ads: u64,
    /// Advertisement retransmissions sent.
    pub ad_retries: u64,
    /// Advertisements abandoned after the retry budget ran out.
    pub ad_abandoned: u64,
    /// Circuit-breaker open transitions.
    pub quarantines: u64,
    /// Half-open re-probes granted by the breaker.
    pub reprobes: u64,
    /// Peer queries suppressed by an open breaker.
    pub breaker_skips: u64,
    /// Frames that skipped the peer tier because it was declared dark.
    pub peer_fallbacks: u64,
}

impl ResilienceCounters {
    /// True when nothing was recorded — the section is omitted from
    /// serialized reports in this state.
    pub fn is_idle(&self) -> bool {
        *self == ResilienceCounters::default()
    }

    /// Records one device-frame spent inside a radio outage.
    pub fn record_outage_frame(&mut self) {
        self.outage_frames += 1;
    }

    /// Records one crash/restart event.
    pub fn record_crash(&mut self) {
        self.crashes += 1;
    }

    /// Records one poisoned advertisement.
    pub fn record_poisoned_ad(&mut self) {
        self.poisoned_ads += 1;
    }

    /// Records `n` advertisement retransmissions.
    pub fn record_ad_retries(&mut self, n: u32) {
        self.ad_retries += u64::from(n);
    }

    /// Records one advertisement abandoned after exhausting retries.
    pub fn record_ad_abandoned(&mut self) {
        self.ad_abandoned += 1;
    }

    /// Folds one circuit breaker's lifetime totals in.
    pub fn record_breaker(&mut self, breaker: &CircuitBreaker) {
        self.quarantines += breaker.quarantines();
        self.reprobes += breaker.reprobes();
        self.breaker_skips += breaker.suppressed();
    }

    /// Records one frame that skipped the dark peer tier.
    pub fn record_peer_fallback(&mut self) {
        self.peer_fallbacks += 1;
    }

    /// Adds another counter block.
    pub fn merge(&mut self, other: &ResilienceCounters) {
        self.outage_frames += other.outage_frames;
        self.crashes += other.crashes;
        self.poisoned_ads += other.poisoned_ads;
        self.ad_retries += other.ad_retries;
        self.ad_abandoned += other.ad_abandoned;
        self.quarantines += other.quarantines;
        self.reprobes += other.reprobes;
        self.breaker_skips += other.breaker_skips;
        self.peer_fallbacks += other.peer_fallbacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_idle_and_schedules_nothing() {
        let config = FaultConfig::default();
        assert!(config.is_idle());
        assert!(config.validate().is_ok());
        let rng = SimRng::seed(7);
        let schedule = FaultSchedule::generate(&config, 4, SimDuration::from_secs(30), &rng);
        assert!(schedule.is_idle());
        for d in 0..4 {
            assert!(!schedule.radio_dark(d, SimTime::from_secs(3)));
            assert!(schedule.outages(d).is_empty());
        }
        assert!(!schedule.partitioned(0, 1, SimTime::from_secs(3)));
        assert!(schedule.degradation(SimTime::from_secs(3)).is_none());
    }

    #[test]
    fn same_seed_same_schedule() {
        let config = FaultConfig {
            outage_fraction: 0.3,
            partition_groups: 2,
            partition_fraction: 0.2,
            degraded_fraction: 0.25,
            degraded_latency_factor: 3.0,
            degraded_loss_factor: 5.0,
            crashes_per_device_minute: 2.0,
            poison_prob: 0.1,
            ..FaultConfig::default()
        };
        assert!(config.validate().is_ok());
        let a = FaultSchedule::generate(&config, 6, SimDuration::from_secs(60), &SimRng::seed(9));
        let b = FaultSchedule::generate(&config, 6, SimDuration::from_secs(60), &SimRng::seed(9));
        for d in 0..6 {
            assert_eq!(a.outages(d), b.outages(d));
        }
        // Spot-check pointwise equality over the whole run.
        for ms in (0..60_000).step_by(97) {
            let at = SimTime::from_millis(ms);
            assert_eq!(a.link_degraded(at), b.link_degraded(at));
            assert_eq!(a.partitioned(0, 1, at), b.partitioned(0, 1, at));
            assert_eq!(
                a.crash_between(2, SimTime::ZERO, at),
                b.crash_between(2, SimTime::ZERO, at)
            );
        }
        let c = FaultSchedule::generate(&config, 6, SimDuration::from_secs(60), &SimRng::seed(10));
        assert_ne!(
            a.outages(0),
            c.outages(0),
            "different seed, different timeline"
        );
    }

    #[test]
    fn outage_duty_cycle_tracks_fraction() {
        let config = FaultConfig {
            outage_fraction: 0.3,
            ..FaultConfig::default()
        };
        let schedule =
            FaultSchedule::generate(&config, 8, SimDuration::from_secs(600), &SimRng::seed(1));
        let mut dark = 0u32;
        let mut total = 0u32;
        for d in 0..8 {
            for s in 0..600 {
                total += 1;
                if schedule.radio_dark(d, SimTime::from_secs(s)) {
                    dark += 1;
                }
            }
        }
        let fraction = f64::from(dark) / f64::from(total);
        assert!(
            (fraction - 0.3).abs() < 0.08,
            "dark fraction {fraction}, want ~0.3"
        );
    }

    #[test]
    fn partitions_split_groups_only_during_episodes() {
        let config = FaultConfig {
            partition_groups: 2,
            partition_fraction: 1.0,
            ..FaultConfig::default()
        };
        let schedule =
            FaultSchedule::generate(&config, 4, SimDuration::from_secs(10), &SimRng::seed(2));
        let at = SimTime::from_secs(5);
        // Round-robin: 0,2 in group 0; 1,3 in group 1.
        assert!(schedule.partitioned(0, 1, at));
        assert!(!schedule.partitioned(0, 2, at));
        assert!(schedule.partitioned(2, 3, at));
        assert!(!schedule.reachable(0, 1, at));
        assert!(schedule.reachable(0, 2, at));
        // Outside the run there is no episode.
        assert!(!schedule.partitioned(0, 1, SimTime::from_secs(11)));
    }

    #[test]
    fn degradation_reports_factors_inside_episodes() {
        let config = FaultConfig {
            degraded_fraction: 1.0,
            degraded_latency_factor: 4.0,
            degraded_loss_factor: 10.0,
            ..FaultConfig::default()
        };
        let schedule =
            FaultSchedule::generate(&config, 1, SimDuration::from_secs(5), &SimRng::seed(3));
        let (lat, loss) = schedule
            .degradation(SimTime::from_secs(2))
            .expect("degraded");
        assert!((lat - 4.0).abs() < 1e-12);
        assert!((loss - 10.0).abs() < 1e-12);
        assert!(schedule.degradation(SimTime::from_secs(6)).is_none());
    }

    #[test]
    fn crash_polling_finds_each_crash_once() {
        let config = FaultConfig {
            crashes_per_device_minute: 6.0,
            ..FaultConfig::default()
        };
        let schedule =
            FaultSchedule::generate(&config, 1, SimDuration::from_secs(120), &SimRng::seed(4));
        let mut seen = 0;
        let mut prev = SimTime::ZERO;
        for ms in (100..120_100).step_by(100) {
            let now = SimTime::from_millis(ms);
            if schedule.crash_between(0, prev, now) {
                seen += 1;
            }
            prev = now;
        }
        // ~6/min over 2 minutes ⇒ around a dozen crashes.
        assert!((4..=30).contains(&seen), "saw {seen} crashes");
    }

    #[test]
    fn fault_config_rejects_bad_ranges() {
        let bad = FaultConfig {
            outage_fraction: 1.5,
            ..FaultConfig::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::OutOfRange {
                field: "outage_fraction",
                ..
            })
        ));
        let bad = FaultConfig {
            degraded_fraction: 0.5,
            degraded_mean: SimDuration::ZERO,
            ..FaultConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultConfig {
            degraded_latency_factor: 0.0,
            ..FaultConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn retry_backoff_grows_exponentially() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff: SimDuration::from_millis(40),
            backoff_factor: 2.0,
        };
        assert_eq!(policy.backoff(0), SimDuration::from_millis(40));
        assert_eq!(policy.backoff(1), SimDuration::from_millis(80));
        assert_eq!(policy.backoff(2), SimDuration::from_millis(160));
        assert!(policy.validate().is_ok());
        let bad = RetryPolicy {
            backoff_factor: 0.5,
            ..policy
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        let now = SimTime::from_secs(1);
        assert!(!b.record_failure(7, now));
        assert!(!b.record_failure(7, now));
        assert!(b.record_failure(7, now), "third failure opens");
        assert!(b.is_quarantined(7, now));
        assert!(!b.allows(7, now + SimDuration::from_millis(500)));
        assert_eq!(b.quarantines(), 1);
        assert_eq!(b.suppressed(), 1);
        // Another peer is unaffected.
        assert!(b.allows(8, now));
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        let now = SimTime::from_secs(1);
        b.record_failure(7, now);
        b.record_failure(7, now);
        b.record_success(7);
        assert!(!b.record_failure(7, now), "count restarted after success");
    }

    #[test]
    fn reprobe_backoff_decays_and_success_closes() {
        let config = BreakerConfig {
            failure_threshold: 1,
            quarantine: SimDuration::from_secs(1),
            backoff_factor: 2.0,
            max_quarantine: SimDuration::from_secs(4),
        };
        let mut b = CircuitBreaker::new(config);
        let t0 = SimTime::from_secs(10);
        assert!(b.record_failure(5, t0), "threshold 1 opens immediately");
        // Quarantined for 1 s, then exactly one probe is allowed.
        assert!(!b.allows(5, t0 + SimDuration::from_millis(999)));
        assert!(b.allows(5, t0 + SimDuration::from_secs(1)), "re-probe");
        assert_eq!(b.reprobes(), 1);
        // The probe fails: quarantine doubles to 2 s.
        let t1 = t0 + SimDuration::from_secs(1);
        assert!(b.record_failure(5, t1));
        assert!(!b.allows(5, t1 + SimDuration::from_millis(1_999)));
        assert!(b.allows(5, t1 + SimDuration::from_secs(2)));
        // Fails again: 4 s; again: capped at max_quarantine (4 s).
        let t2 = t1 + SimDuration::from_secs(2);
        assert!(b.record_failure(5, t2));
        assert!(b.allows(5, t2 + SimDuration::from_secs(4)));
        let t3 = t2 + SimDuration::from_secs(4);
        assert!(b.record_failure(5, t3));
        assert!(!b.allows(5, t3 + SimDuration::from_millis(3_999)));
        assert!(b.allows(5, t3 + SimDuration::from_secs(4)), "capped");
        // The probe succeeds: breaker closes, failures reset.
        b.record_success(5);
        assert!(b.allows(5, t3 + SimDuration::from_secs(4)));
        assert!(
            b.record_failure(5, t3 + SimDuration::from_secs(5)),
            "fresh open uses base quarantine"
        );
        assert!(b.allows(
            5,
            t3 + SimDuration::from_secs(5) + SimDuration::from_secs(1)
        ));
    }

    #[test]
    fn resilience_counters_record_and_merge() {
        let mut c = ResilienceCounters::default();
        assert!(c.is_idle());
        c.record_outage_frame();
        c.record_crash();
        c.record_poisoned_ad();
        c.record_ad_retries(3);
        c.record_ad_abandoned();
        c.record_peer_fallback();
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            ..BreakerConfig::default()
        });
        b.record_failure(1, SimTime::from_secs(1));
        let _ = b.allows(1, SimTime::from_secs(1));
        let _ = b.allows(1, SimTime::from_secs(100));
        c.record_breaker(&b);
        assert!(!c.is_idle());
        assert_eq!(c.ad_retries, 3);
        assert_eq!(c.quarantines, 1);
        assert_eq!(c.breaker_skips, 1);
        assert_eq!(c.reprobes, 1);
        let mut total = ResilienceCounters::default();
        total.merge(&c);
        total.merge(&c);
        assert_eq!(total.ad_retries, 6);
        assert_eq!(total.outage_frames, 2);
    }

    #[test]
    fn resilience_config_defaults_off_and_validates() {
        let off = ResilienceConfig::default();
        assert!(off.ad_retry.is_none() && off.breaker.is_none() && off.dark_fallback.is_none());
        assert!(off.validate().is_ok());
        let on = ResilienceConfig::recommended();
        assert!(on.ad_retry.is_some() && on.breaker.is_some() && on.dark_fallback.is_some());
        assert!(on.validate().is_ok());
        let bad = ResilienceConfig {
            breaker: Some(BreakerConfig {
                failure_threshold: 0,
                ..BreakerConfig::default()
            }),
            ..ResilienceConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
