//! Beacon-based neighbour discovery.
//!
//! The [`ProximityModel`](crate::ProximityModel) answers "who *could* I
//! talk to" — an oracle a real deployment does not have. Real
//! infrastructure-less systems discover neighbours by broadcasting
//! periodic beacons (BLE advertisements / WiFi-Aware publishes) and
//! aging out peers whose beacons stop arriving. This module implements
//! that protocol, so experiments can measure what oracle-free discovery
//! costs: a freshly arrived peer is invisible until its first beacon gets
//! through, and a departed peer lingers until its table entry expires.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use simcore::{SimDuration, SimRng, SimTime};

use crate::error::ConfigError;
use crate::faults::{BreakerConfig, CircuitBreaker};

/// Discovery protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// Interval between a device's beacons.
    pub beacon_interval: SimDuration,
    /// Probability an in-range beacon is received (beacons are small and
    /// unacknowledged; collisions and fading lose some).
    pub beacon_delivery_prob: f64,
    /// A neighbour is dropped when no beacon has arrived for this long.
    pub neighbor_ttl: SimDuration,
    /// Wire size of one beacon, bytes (charged to the radio).
    pub beacon_bytes: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            beacon_interval: SimDuration::from_millis(500),
            beacon_delivery_prob: 0.9,
            neighbor_ttl: SimDuration::from_millis(1_600),
            beacon_bytes: 38, // BLE legacy advertisement payload + headers
        }
    }
}

impl DiscoveryConfig {
    /// Validates parameter ranges: the interval must be positive, the
    /// delivery probability inside `[0, 1]`, and the TTL at least one
    /// beacon interval (every neighbour would otherwise expire between
    /// its own beacons).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.beacon_interval.is_zero() {
            return Err(ConfigError::NotPositive {
                context: "DiscoveryConfig",
                field: "beacon_interval",
            });
        }
        if !(0.0..=1.0).contains(&self.beacon_delivery_prob) {
            return Err(ConfigError::OutOfRange {
                context: "DiscoveryConfig",
                field: "beacon_delivery_prob",
                min: 0.0,
                max: 1.0,
            });
        }
        if self.neighbor_ttl < self.beacon_interval {
            return Err(ConfigError::Inconsistent {
                context: "DiscoveryConfig",
                message: "neighbor_ttl must be at least one beacon interval",
            });
        }
        Ok(())
    }
}

/// One device's view of who is nearby, built purely from received beacons.
#[derive(Debug, Clone, Default)]
pub struct NeighborTable {
    /// peer id → when its last beacon arrived.
    last_heard: HashMap<u64, SimTime>,
}

impl NeighborTable {
    /// An empty table.
    pub fn new() -> NeighborTable {
        NeighborTable::default()
    }

    /// Records a received beacon from `peer` at `now`.
    pub fn heard(&mut self, peer: u64, now: SimTime) {
        self.last_heard.insert(peer, now);
    }

    /// Drops peers not heard within `ttl` of `now`, returning how many
    /// were dropped.
    pub fn expire(&mut self, now: SimTime, ttl: SimDuration) -> usize {
        let before = self.last_heard.len();
        self.last_heard
            .retain(|_, &mut at| now.saturating_duration_since(at) <= ttl);
        before - self.last_heard.len()
    }

    /// Whether `peer` is currently believed to be in range.
    pub fn contains(&self, peer: u64) -> bool {
        self.last_heard.contains_key(&peer)
    }

    /// The known neighbours, most recently heard first (the order in
    /// which a device should try them — freshness correlates with still
    /// being in range).
    pub fn neighbors(&self) -> Vec<u64> {
        let mut peers: Vec<(u64, SimTime)> =
            self.last_heard.iter().map(|(&p, &t)| (p, t)).collect();
        peers.sort_by_key(|&(p, t)| (std::cmp::Reverse(t), p));
        peers.into_iter().map(|(p, _)| p).collect()
    }

    /// Number of known neighbours.
    pub fn len(&self) -> usize {
        self.last_heard.len()
    }

    /// True when no neighbours are known.
    pub fn is_empty(&self) -> bool {
        self.last_heard.is_empty()
    }
}

/// The discovery service of one device: emits beacons on schedule and
/// maintains the [`NeighborTable`] from beacons it receives.
#[derive(Debug, Clone)]
pub struct Discovery {
    config: DiscoveryConfig,
    table: NeighborTable,
    next_beacon: SimTime,
    /// Total beacons this device transmitted.
    beacons_sent: u64,
    /// Total beacon bytes transmitted.
    beacon_bytes_sent: u64,
    /// Optional dead-peer circuit breaker: quarantined peers are hidden
    /// from [`neighbors`](Self::neighbors) until their re-probe is due.
    breaker: Option<CircuitBreaker>,
}

impl Discovery {
    /// A discovery service with the given configuration. The first beacon
    /// is due immediately.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: DiscoveryConfig) -> Discovery {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        Discovery {
            config,
            table: NeighborTable::new(),
            next_beacon: SimTime::ZERO,
            beacons_sent: 0,
            beacon_bytes_sent: 0,
            breaker: None,
        }
    }

    /// A discovery service with a dead-peer circuit breaker: after
    /// `breaker.failure_threshold` consecutive failed exchanges
    /// (reported via [`record_query_outcome`](Self::record_query_outcome))
    /// a peer is quarantined out of the neighbour list, then re-probed at
    /// a decaying rate.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid.
    pub fn with_breaker(config: DiscoveryConfig, breaker: BreakerConfig) -> Discovery {
        let mut discovery = Discovery::new(config);
        discovery.breaker = Some(CircuitBreaker::new(breaker));
        discovery
    }

    /// The configuration.
    pub fn config(&self) -> DiscoveryConfig {
        self.config
    }

    /// Beacons transmitted so far.
    pub fn beacons_sent(&self) -> u64 {
        self.beacons_sent
    }

    /// Beacon bytes transmitted so far.
    pub fn beacon_bytes_sent(&self) -> u64 {
        self.beacon_bytes_sent
    }

    /// Whether this device should transmit a beacon at `now`; if so,
    /// records the transmission and schedules the next one. The caller
    /// (the simulation) is responsible for delivering the beacon to
    /// in-range devices via [`receive_beacon`](Self::receive_beacon).
    pub fn should_beacon(&mut self, now: SimTime) -> bool {
        if now < self.next_beacon {
            return false;
        }
        // Catch up (a device that was not polled for a while emits one
        // beacon, not a burst).
        self.next_beacon = now + self.config.beacon_interval;
        self.beacons_sent += 1;
        self.beacon_bytes_sent += self.config.beacon_bytes as u64;
        true
    }

    /// Processes a beacon transmitted by `peer` that reached this device's
    /// radio; applies the delivery probability.
    pub fn receive_beacon(&mut self, peer: u64, now: SimTime, rng: &mut SimRng) {
        if rng.chance(self.config.beacon_delivery_prob) {
            self.table.heard(peer, now);
        }
    }

    /// Expires stale neighbours and returns the current neighbour list,
    /// freshest first. Peers quarantined by the circuit breaker are
    /// filtered out; a peer whose quarantine just lapsed stays listed for
    /// exactly one probe.
    pub fn neighbors(&mut self, now: SimTime) -> Vec<u64> {
        self.table.expire(now, self.config.neighbor_ttl);
        let mut peers = self.table.neighbors();
        if let Some(breaker) = &mut self.breaker {
            peers.retain(|&p| breaker.allows(p, now));
        }
        peers
    }

    /// Feeds one peer-exchange outcome to the circuit breaker (no-op
    /// without one): successes close the breaker, consecutive failures
    /// open it.
    pub fn record_query_outcome(&mut self, peer: u64, delivered: bool, now: SimTime) {
        if let Some(breaker) = &mut self.breaker {
            if delivered {
                breaker.record_success(peer);
            } else {
                breaker.record_failure(peer, now);
            }
        }
    }

    /// The circuit breaker, when one is configured.
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// Discards the neighbour table and breaker state — what a peer
    /// crash/restart costs this device's view of the network.
    pub fn reset(&mut self) {
        self.table = NeighborTable::new();
        if let Some(breaker) = &self.breaker {
            // A restarted device forgets which peers were quarantined but
            // keeps its lifetime event counts for reporting.
            let mut fresh = breaker.clone();
            fresh.forget_peers();
            self.breaker = Some(fresh);
        }
    }

    /// Read-only view of the table (no expiry side effect).
    pub fn table(&self) -> &NeighborTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DiscoveryConfig {
        DiscoveryConfig::default()
    }

    #[test]
    fn beacons_fire_on_schedule() {
        let mut d = Discovery::new(config());
        assert!(d.should_beacon(SimTime::ZERO), "first beacon immediate");
        assert!(!d.should_beacon(SimTime::from_millis(100)));
        assert!(!d.should_beacon(SimTime::from_millis(499)));
        assert!(d.should_beacon(SimTime::from_millis(500)));
        assert_eq!(d.beacons_sent(), 2);
        assert_eq!(d.beacon_bytes_sent(), 76);
    }

    #[test]
    fn missed_polls_do_not_burst() {
        let mut d = Discovery::new(config());
        assert!(d.should_beacon(SimTime::ZERO));
        // Device was asleep for 10 intervals: exactly one beacon now.
        assert!(d.should_beacon(SimTime::from_secs(5)));
        assert!(!d.should_beacon(SimTime::from_secs(5)));
        assert_eq!(d.beacons_sent(), 2);
    }

    #[test]
    fn neighbours_appear_and_expire() {
        let mut d = Discovery::new(DiscoveryConfig {
            beacon_delivery_prob: 1.0,
            ..config()
        });
        let mut rng = SimRng::seed(1);
        d.receive_beacon(7, SimTime::from_millis(100), &mut rng);
        d.receive_beacon(9, SimTime::from_millis(200), &mut rng);
        assert_eq!(d.neighbors(SimTime::from_millis(300)), vec![9, 7]);
        // 7's beacon ages out first (ttl 1600 ms).
        assert_eq!(d.neighbors(SimTime::from_millis(1_750)), vec![9]);
        assert_eq!(d.neighbors(SimTime::from_millis(2_000)), Vec::<u64>::new());
        assert!(d.table().is_empty());
    }

    #[test]
    fn refreshed_neighbours_survive() {
        let mut d = Discovery::new(DiscoveryConfig {
            beacon_delivery_prob: 1.0,
            ..config()
        });
        let mut rng = SimRng::seed(2);
        for ms in (0..5_000).step_by(500) {
            d.receive_beacon(3, SimTime::from_millis(ms), &mut rng);
        }
        assert_eq!(d.neighbors(SimTime::from_millis(5_100)), vec![3]);
    }

    #[test]
    fn delivery_probability_drops_beacons() {
        let mut d = Discovery::new(DiscoveryConfig {
            beacon_delivery_prob: 0.5,
            ..config()
        });
        let mut rng = SimRng::seed(3);
        let mut heard = 0;
        for i in 0..2_000u64 {
            d.table = NeighborTable::new();
            d.receive_beacon(1, SimTime::from_millis(i), &mut rng);
            if d.table().contains(1) {
                heard += 1;
            }
        }
        let rate = heard as f64 / 2_000.0;
        assert!((rate - 0.5).abs() < 0.05, "delivery rate {rate}");
    }

    #[test]
    fn freshest_first_ordering_breaks_ties_by_id() {
        let mut t = NeighborTable::new();
        t.heard(5, SimTime::from_millis(100));
        t.heard(2, SimTime::from_millis(100));
        t.heard(9, SimTime::from_millis(200));
        assert_eq!(t.neighbors(), vec![9, 2, 5]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn expire_reports_drop_count() {
        let mut t = NeighborTable::new();
        t.heard(1, SimTime::from_millis(0));
        t.heard(2, SimTime::from_millis(900));
        let dropped = t.expire(SimTime::from_millis(1_000), SimDuration::from_millis(500));
        assert_eq!(dropped, 1);
        assert!(t.contains(2));
        assert!(!t.contains(1));
    }

    #[test]
    #[should_panic(expected = "neighbor_ttl must be at least one beacon interval")]
    fn ttl_shorter_than_interval_rejected() {
        Discovery::new(DiscoveryConfig {
            neighbor_ttl: SimDuration::from_millis(100),
            ..config()
        });
    }

    #[test]
    fn breaker_quarantines_and_reprobes_through_discovery() {
        use crate::faults::BreakerConfig;
        let mut d = Discovery::with_breaker(
            DiscoveryConfig {
                beacon_delivery_prob: 1.0,
                ..config()
            },
            BreakerConfig {
                failure_threshold: 2,
                quarantine: SimDuration::from_secs(2),
                backoff_factor: 2.0,
                max_quarantine: SimDuration::from_secs(8),
            },
        );
        let mut rng = SimRng::seed(5);
        let now = SimTime::from_millis(100);
        d.receive_beacon(7, now, &mut rng);
        d.receive_beacon(9, now, &mut rng);
        assert_eq!(d.neighbors(now), vec![7, 9], "tie broken by id");
        // Two consecutive failures quarantine peer 7; peer 9 stays.
        d.record_query_outcome(7, false, now);
        d.record_query_outcome(7, false, now);
        let later = now + SimDuration::from_millis(100);
        d.receive_beacon(7, later, &mut rng);
        d.receive_beacon(9, later, &mut rng);
        assert_eq!(d.neighbors(later), vec![9]);
        assert_eq!(d.breaker().expect("breaker").quarantines(), 1);
        // After the quarantine lapses the peer reappears for one probe.
        let probe_at = now + SimDuration::from_secs(2);
        d.receive_beacon(7, probe_at, &mut rng);
        d.receive_beacon(9, probe_at, &mut rng);
        assert!(d.neighbors(probe_at).contains(&7));
        assert_eq!(d.breaker().expect("breaker").reprobes(), 1);
        // The probe succeeds: the breaker closes and 7 stays visible.
        d.record_query_outcome(7, true, probe_at);
        assert!(d.neighbors(probe_at).contains(&7));
    }

    #[test]
    fn reset_wipes_the_table_but_keeps_breaker_totals() {
        use crate::faults::BreakerConfig;
        let mut d = Discovery::with_breaker(
            DiscoveryConfig {
                beacon_delivery_prob: 1.0,
                ..config()
            },
            BreakerConfig {
                failure_threshold: 1,
                ..BreakerConfig::default()
            },
        );
        let mut rng = SimRng::seed(6);
        let now = SimTime::from_millis(50);
        d.receive_beacon(3, now, &mut rng);
        d.record_query_outcome(3, false, now);
        assert_eq!(d.breaker().expect("breaker").quarantines(), 1);
        d.reset();
        assert!(d.table().is_empty());
        let b = d.breaker().expect("breaker survives reset");
        assert_eq!(b.quarantines(), 1, "lifetime totals survive");
        assert!(!b.is_quarantined(3, now), "per-peer state forgotten");
    }
}
