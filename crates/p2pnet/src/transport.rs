//! Accounted message delivery.

use serde::{Deserialize, Serialize};

use simcore::{SimDuration, SimRng};

use crate::faults::RetryPolicy;
use crate::link::LinkSpec;
use crate::protocol::P2pMessage;

/// Totals of everything a transport carried — the series behind the
/// network-cost columns of the peer-scaling experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportCounters {
    /// Messages handed to the link (including ones later lost).
    pub messages_sent: u64,
    /// Messages that arrived.
    pub messages_delivered: u64,
    /// Messages the link dropped.
    pub messages_lost: u64,
    /// Payload bytes handed to the link.
    pub bytes_sent: u64,
}

impl TransportCounters {
    /// Delivery fraction (1.0 when nothing was sent).
    pub fn delivery_rate(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }

    /// Charges `messages` messages totalling `bytes` payload bytes to
    /// the link. The single increment site for `messages_sent` /
    /// `bytes_sent` (rule T: one `record_*` helper per field).
    pub fn record_sent(&mut self, messages: u64, bytes: u64) {
        self.messages_sent += messages;
        self.bytes_sent += bytes;
    }

    /// Marks `messages` previously sent messages as arrived.
    pub fn record_delivered(&mut self, messages: u64) {
        self.messages_delivered += messages;
    }

    /// Marks `messages` previously sent messages as dropped by the link.
    pub fn record_lost(&mut self, messages: u64) {
        self.messages_lost += messages;
    }

    /// Folds one device's beacon traffic in: beacons are fire-and-forget
    /// local broadcasts, so each counts as both sent and delivered.
    pub fn record_beacons(&mut self, beacons: u64, bytes: u64) {
        self.record_sent(beacons, bytes);
        self.record_delivered(beacons);
    }

    /// Adds another counter block.
    pub fn merge(&mut self, other: &TransportCounters) {
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.messages_lost += other.messages_lost;
        self.bytes_sent += other.bytes_sent;
    }
}

/// A byte-accounted simplex/duplex channel over one [`LinkSpec`].
///
/// The pipeline uses [`round_trip`](Transport::round_trip) for query/reply
/// exchanges (either direction may lose the message — a lost exchange
/// reads as a peer miss) and [`send_one_way`](Transport::send_one_way) for
/// advertisements.
#[derive(Debug, Clone)]
pub struct Transport {
    link: LinkSpec,
    counters: TransportCounters,
    /// `(latency_factor, loss_factor)` while a degraded-link fault
    /// episode is in force; `None` is the pristine link (and the exact
    /// pre-fault code path, draw for draw).
    degradation: Option<(f64, f64)>,
}

/// Result of a retried send: the cumulative delay until delivery (backoff
/// waits included), or `None` with the number of retries burned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryOutcome {
    /// Delay from first transmission to delivery; `None` when every
    /// attempt was lost.
    pub delay: Option<SimDuration>,
    /// Retransmissions sent after the first attempt.
    pub retries: u32,
}

impl Transport {
    /// A transport over `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is invalid.
    pub fn new(link: LinkSpec) -> Transport {
        if let Err(e) = link.validate() {
            panic!("{e}");
        }
        Transport {
            link,
            counters: TransportCounters::default(),
            degradation: None,
        }
    }

    /// The underlying link.
    pub fn link(&self) -> &LinkSpec {
        &self.link
    }

    /// Counters so far.
    pub fn counters(&self) -> &TransportCounters {
        &self.counters
    }

    /// Applies a degraded-link fault episode: base latency ×
    /// `latency_factor`, loss probability × `loss_factor` (capped at 1).
    pub fn set_degradation(&mut self, latency_factor: f64, loss_factor: f64) {
        self.degradation = Some((latency_factor, loss_factor));
    }

    /// Restores the pristine link.
    pub fn clear_degradation(&mut self) {
        self.degradation = None;
    }

    /// Whether a degraded-link episode is in force.
    pub fn is_degraded(&self) -> bool {
        self.degradation.is_some()
    }

    /// Sends one message of `bytes` bytes. Returns the delivery delay, or
    /// `None` if the link lost it.
    pub fn send_one_way(&mut self, bytes: usize, rng: &mut SimRng) -> Option<SimDuration> {
        self.counters.record_sent(1, bytes as u64);
        let sampled = match self.degradation {
            None => self.link.sample_one_way(bytes, rng),
            Some((latency_factor, loss_factor)) => {
                let degraded = LinkSpec {
                    base_latency: self.link.base_latency.mul_f64(latency_factor),
                    loss_prob: (self.link.loss_prob * loss_factor).min(1.0),
                    ..self.link
                };
                degraded.sample_one_way(bytes, rng)
            }
        };
        match sampled {
            Some(delay) => {
                self.counters.record_delivered(1);
                Some(delay)
            }
            None => {
                self.counters.record_lost(1);
                None
            }
        }
    }

    /// Sends an encoded message with bounded retransmission: each lost
    /// attempt waits `policy.backoff(attempt)` and tries again, up to
    /// `policy.max_retries` retransmissions. Every attempt is charged to
    /// the counters (retransmissions cost real radio bytes).
    pub fn send_with_retry(
        &mut self,
        message: &P2pMessage,
        policy: &RetryPolicy,
        rng: &mut SimRng,
    ) -> RetryOutcome {
        let mut waited = SimDuration::ZERO;
        for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                waited += policy.backoff(attempt - 1);
            }
            if let Some(delay) = self.send_message(message, rng) {
                return RetryOutcome {
                    delay: Some(waited + delay),
                    retries: attempt,
                };
            }
        }
        RetryOutcome {
            delay: None,
            retries: policy.max_retries,
        }
    }

    /// Sends an encoded [`P2pMessage`] one way (charging its exact wire
    /// size).
    pub fn send_message(&mut self, message: &P2pMessage, rng: &mut SimRng) -> Option<SimDuration> {
        self.send_one_way(message.encoded_len(), rng)
    }

    /// A request/response exchange: `out_bytes` out, `back_bytes` back.
    /// Returns the total round-trip time, or `None` if either direction
    /// lost its message.
    pub fn round_trip(
        &mut self,
        out_bytes: usize,
        back_bytes: usize,
        rng: &mut SimRng,
    ) -> Option<SimDuration> {
        let out = self.send_one_way(out_bytes, rng)?;
        let back = self.send_one_way(back_bytes, rng)?;
        Some(out + back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use features::FeatureVector;

    #[test]
    fn counters_track_sends_and_losses() {
        let mut t = Transport::new(LinkSpec::ble());
        let mut rng = SimRng::seed(1);
        for _ in 0..2_000 {
            t.send_one_way(100, &mut rng);
        }
        let c = *t.counters();
        assert_eq!(c.messages_sent, 2_000);
        assert_eq!(c.bytes_sent, 200_000);
        assert_eq!(c.messages_delivered + c.messages_lost, 2_000);
        assert!(c.messages_lost > 20, "BLE at 3% should lose some");
        assert!((c.delivery_rate() - 0.97).abs() < 0.02);
    }

    #[test]
    fn round_trip_adds_both_directions() {
        let mut t = Transport::new(LinkSpec::ideal());
        let mut rng = SimRng::seed(2);
        let rtt = t.round_trip(1_000, 100, &mut rng).unwrap();
        assert_eq!(rtt, SimDuration::ZERO);
        assert_eq!(t.counters().messages_sent, 2);
        assert_eq!(t.counters().bytes_sent, 1_100);
    }

    #[test]
    fn round_trip_fails_if_either_leg_lost() {
        let lossy = LinkSpec {
            loss_prob: 0.5,
            ..LinkSpec::ble()
        };
        let mut t = Transport::new(lossy);
        let mut rng = SimRng::seed(3);
        let mut failures = 0;
        for _ in 0..1_000 {
            if t.round_trip(10, 10, &mut rng).is_none() {
                failures += 1;
            }
        }
        // P(fail) = 1 − 0.5² = 0.75.
        assert!((failures as f64 / 1_000.0 - 0.75).abs() < 0.05);
    }

    #[test]
    fn send_message_charges_wire_size() {
        let mut t = Transport::new(LinkSpec::ideal());
        let mut rng = SimRng::seed(4);
        let m = P2pMessage::Query {
            query_id: 1,
            key: FeatureVector::from_vec(vec![0.0; 64]).unwrap(),
        };
        t.send_message(&m, &mut rng);
        assert_eq!(t.counters().bytes_sent, m.encoded_len() as u64);
    }

    #[test]
    fn conservation_holds_for_every_link_and_size() {
        // sent == delivered + lost, and bytes equal what was handed in —
        // across links, sizes and many sends.
        for link in [LinkSpec::ble(), LinkSpec::wifi_direct(), LinkSpec::ideal()] {
            let mut t = Transport::new(link);
            let mut rng = SimRng::seed(77);
            let mut expected_bytes = 0u64;
            for i in 0..500usize {
                let bytes = (i * 37) % 3_000;
                expected_bytes += bytes as u64;
                let _ = t.send_one_way(bytes, &mut rng);
            }
            let c = t.counters();
            assert_eq!(c.messages_sent, 500, "{}", t.link());
            assert_eq!(c.messages_delivered + c.messages_lost, c.messages_sent);
            assert_eq!(c.bytes_sent, expected_bytes);
        }
    }

    #[test]
    fn degradation_multiplies_latency_and_loss() {
        let mut t = Transport::new(LinkSpec::wifi_direct());
        assert!(!t.is_degraded());
        t.set_degradation(10.0, 30.0);
        assert!(t.is_degraded());
        let mut rng = SimRng::seed(11);
        let mut lost = 0;
        let mut sum_ms = 0.0;
        let mut delivered = 0;
        for _ in 0..2_000 {
            match t.send_one_way(100, &mut rng) {
                Some(d) => {
                    sum_ms += d.as_millis_f64();
                    delivered += 1;
                }
                None => lost += 1,
            }
        }
        // 1% loss × 30 = 30%; 3 ms base × 10 = ~30 ms one-way.
        let loss_rate = f64::from(lost) / 2_000.0;
        assert!((loss_rate - 0.30).abs() < 0.04, "loss rate {loss_rate}");
        let mean = sum_ms / f64::from(delivered);
        assert!((mean - 30.0).abs() < 5.0, "mean one-way {mean} ms");
        // Clearing restores the pristine link.
        t.clear_degradation();
        let mut lost = 0;
        for _ in 0..2_000 {
            if t.send_one_way(100, &mut rng).is_none() {
                lost += 1;
            }
        }
        assert!(f64::from(lost) / 2_000.0 < 0.04);
    }

    #[test]
    fn retry_recovers_losses_and_charges_every_attempt() {
        let lossy = LinkSpec {
            loss_prob: 0.5,
            ..LinkSpec::wifi_direct()
        };
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff: SimDuration::from_millis(40),
            backoff_factor: 2.0,
        };
        let mut t = Transport::new(lossy);
        let mut rng = SimRng::seed(12);
        let m = P2pMessage::Query {
            query_id: 1,
            key: FeatureVector::from_vec(vec![0.0; 8]).unwrap(),
        };
        let mut delivered = 0u32;
        let mut retries = 0u64;
        for _ in 0..1_000 {
            let outcome = t.send_with_retry(&m, &policy, &mut rng);
            if outcome.delay.is_some() {
                delivered += 1;
            }
            retries += u64::from(outcome.retries);
        }
        // P(all 4 attempts lost) = 0.5⁴ = 6.25%.
        let rate = f64::from(delivered) / 1_000.0;
        assert!((rate - 0.9375).abs() < 0.03, "delivery rate {rate}");
        assert!(retries > 300, "lossy link must retry often, got {retries}");
        let c = t.counters();
        assert_eq!(c.messages_sent, 1_000 + retries, "every attempt counted");
    }

    #[test]
    fn retry_delay_includes_backoff_waits() {
        // First leg always lost, second always delivered: delay must be
        // the 40 ms backoff plus the link latency.
        let flaky = LinkSpec {
            loss_prob: 0.5,
            jitter_sigma: 0.0,
            ..LinkSpec::wifi_direct()
        };
        let policy = RetryPolicy {
            max_retries: 5,
            base_backoff: SimDuration::from_millis(40),
            backoff_factor: 2.0,
        };
        let mut t = Transport::new(flaky);
        let mut rng = SimRng::seed(13);
        let m = P2pMessage::Query {
            query_id: 2,
            key: FeatureVector::from_vec(vec![0.0; 8]).unwrap(),
        };
        for _ in 0..200 {
            let outcome = t.send_with_retry(&m, &policy, &mut rng);
            if let Some(delay) = outcome.delay {
                let mut expected_backoff = SimDuration::ZERO;
                for r in 0..outcome.retries {
                    expected_backoff += policy.backoff(r);
                }
                assert!(
                    delay >= expected_backoff,
                    "delay {delay} must include {expected_backoff} of backoff"
                );
            } else {
                assert_eq!(outcome.retries, policy.max_retries);
            }
        }
    }

    #[test]
    // Exact comparison is intentional: an empty counter's rate is exactly 1.0.
    #[allow(clippy::float_cmp)]
    fn counters_merge() {
        let mut a = TransportCounters {
            messages_sent: 1,
            messages_delivered: 1,
            messages_lost: 0,
            bytes_sent: 10,
        };
        let b = TransportCounters {
            messages_sent: 3,
            messages_delivered: 2,
            messages_lost: 1,
            bytes_sent: 30,
        };
        a.merge(&b);
        assert_eq!(a.messages_sent, 4);
        assert_eq!(a.bytes_sent, 40);
        assert!((a.delivery_rate() - 0.75).abs() < 1e-12);
        assert_eq!(TransportCounters::default().delivery_rate(), 1.0);
    }
}
