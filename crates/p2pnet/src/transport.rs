//! Accounted message delivery.

use serde::{Deserialize, Serialize};

use simcore::{SimDuration, SimRng};

use crate::link::LinkSpec;
use crate::protocol::P2pMessage;

/// Totals of everything a transport carried — the series behind the
/// network-cost columns of the peer-scaling experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportCounters {
    /// Messages handed to the link (including ones later lost).
    pub messages_sent: u64,
    /// Messages that arrived.
    pub messages_delivered: u64,
    /// Messages the link dropped.
    pub messages_lost: u64,
    /// Payload bytes handed to the link.
    pub bytes_sent: u64,
}

impl TransportCounters {
    /// Delivery fraction (1.0 when nothing was sent).
    pub fn delivery_rate(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }

    /// Folds one device's beacon traffic in: beacons are fire-and-forget
    /// local broadcasts, so each counts as both sent and delivered.
    pub fn record_beacons(&mut self, beacons: u64, bytes: u64) {
        self.messages_sent += beacons;
        self.messages_delivered += beacons;
        self.bytes_sent += bytes;
    }

    /// Adds another counter block.
    pub fn merge(&mut self, other: &TransportCounters) {
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.messages_lost += other.messages_lost;
        self.bytes_sent += other.bytes_sent;
    }
}

/// A byte-accounted simplex/duplex channel over one [`LinkSpec`].
///
/// The pipeline uses [`round_trip`](Transport::round_trip) for query/reply
/// exchanges (either direction may lose the message — a lost exchange
/// reads as a peer miss) and [`send_one_way`](Transport::send_one_way) for
/// advertisements.
#[derive(Debug, Clone)]
pub struct Transport {
    link: LinkSpec,
    counters: TransportCounters,
}

impl Transport {
    /// A transport over `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is invalid.
    pub fn new(link: LinkSpec) -> Transport {
        link.validate();
        Transport {
            link,
            counters: TransportCounters::default(),
        }
    }

    /// The underlying link.
    pub fn link(&self) -> &LinkSpec {
        &self.link
    }

    /// Counters so far.
    pub fn counters(&self) -> &TransportCounters {
        &self.counters
    }

    /// Sends one message of `bytes` bytes. Returns the delivery delay, or
    /// `None` if the link lost it.
    pub fn send_one_way(&mut self, bytes: usize, rng: &mut SimRng) -> Option<SimDuration> {
        self.counters.messages_sent += 1;
        self.counters.bytes_sent += bytes as u64;
        match self.link.sample_one_way(bytes, rng) {
            Some(delay) => {
                self.counters.messages_delivered += 1;
                Some(delay)
            }
            None => {
                self.counters.messages_lost += 1;
                None
            }
        }
    }

    /// Sends an encoded [`P2pMessage`] one way (charging its exact wire
    /// size).
    pub fn send_message(&mut self, message: &P2pMessage, rng: &mut SimRng) -> Option<SimDuration> {
        self.send_one_way(message.encoded_len(), rng)
    }

    /// A request/response exchange: `out_bytes` out, `back_bytes` back.
    /// Returns the total round-trip time, or `None` if either direction
    /// lost its message.
    pub fn round_trip(
        &mut self,
        out_bytes: usize,
        back_bytes: usize,
        rng: &mut SimRng,
    ) -> Option<SimDuration> {
        let out = self.send_one_way(out_bytes, rng)?;
        let back = self.send_one_way(back_bytes, rng)?;
        Some(out + back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use features::FeatureVector;

    #[test]
    fn counters_track_sends_and_losses() {
        let mut t = Transport::new(LinkSpec::ble());
        let mut rng = SimRng::seed(1);
        for _ in 0..2_000 {
            t.send_one_way(100, &mut rng);
        }
        let c = *t.counters();
        assert_eq!(c.messages_sent, 2_000);
        assert_eq!(c.bytes_sent, 200_000);
        assert_eq!(c.messages_delivered + c.messages_lost, 2_000);
        assert!(c.messages_lost > 20, "BLE at 3% should lose some");
        assert!((c.delivery_rate() - 0.97).abs() < 0.02);
    }

    #[test]
    fn round_trip_adds_both_directions() {
        let mut t = Transport::new(LinkSpec::ideal());
        let mut rng = SimRng::seed(2);
        let rtt = t.round_trip(1_000, 100, &mut rng).unwrap();
        assert_eq!(rtt, SimDuration::ZERO);
        assert_eq!(t.counters().messages_sent, 2);
        assert_eq!(t.counters().bytes_sent, 1_100);
    }

    #[test]
    fn round_trip_fails_if_either_leg_lost() {
        let lossy = LinkSpec {
            loss_prob: 0.5,
            ..LinkSpec::ble()
        };
        let mut t = Transport::new(lossy);
        let mut rng = SimRng::seed(3);
        let mut failures = 0;
        for _ in 0..1_000 {
            if t.round_trip(10, 10, &mut rng).is_none() {
                failures += 1;
            }
        }
        // P(fail) = 1 − 0.5² = 0.75.
        assert!((failures as f64 / 1_000.0 - 0.75).abs() < 0.05);
    }

    #[test]
    fn send_message_charges_wire_size() {
        let mut t = Transport::new(LinkSpec::ideal());
        let mut rng = SimRng::seed(4);
        let m = P2pMessage::Query {
            query_id: 1,
            key: FeatureVector::from_vec(vec![0.0; 64]).unwrap(),
        };
        t.send_message(&m, &mut rng);
        assert_eq!(t.counters().bytes_sent, m.encoded_len() as u64);
    }

    #[test]
    fn conservation_holds_for_every_link_and_size() {
        // sent == delivered + lost, and bytes equal what was handed in —
        // across links, sizes and many sends.
        for link in [LinkSpec::ble(), LinkSpec::wifi_direct(), LinkSpec::ideal()] {
            let mut t = Transport::new(link);
            let mut rng = SimRng::seed(77);
            let mut expected_bytes = 0u64;
            for i in 0..500usize {
                let bytes = (i * 37) % 3_000;
                expected_bytes += bytes as u64;
                let _ = t.send_one_way(bytes, &mut rng);
            }
            let c = t.counters();
            assert_eq!(c.messages_sent, 500, "{}", t.link());
            assert_eq!(c.messages_delivered + c.messages_lost, c.messages_sent);
            assert_eq!(c.bytes_sent, expected_bytes);
        }
    }

    #[test]
    // Exact comparison is intentional: an empty counter's rate is exactly 1.0.
    #[allow(clippy::float_cmp)]
    fn counters_merge() {
        let mut a = TransportCounters {
            messages_sent: 1,
            messages_delivered: 1,
            messages_lost: 0,
            bytes_sent: 10,
        };
        let b = TransportCounters {
            messages_sent: 3,
            messages_delivered: 2,
            messages_lost: 1,
            bytes_sent: 30,
        };
        a.merge(&b);
        assert_eq!(a.messages_sent, 4);
        assert_eq!(a.bytes_sent, 40);
        assert!((a.delivery_rate() - 0.75).abs() < 1e-12);
        assert_eq!(TransportCounters::default().delivery_rate(), 1.0);
    }
}
