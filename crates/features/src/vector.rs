//! The feature-vector signature type.

use std::fmt;
use std::ops::Index;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

/// Error constructing or combining feature vectors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureError {
    /// The vector had no components.
    Empty,
    /// A component was NaN or infinite.
    NotFinite {
        /// Index of the offending component.
        index: usize,
    },
    /// Two vectors that must share a dimension did not.
    DimensionMismatch {
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
    },
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::Empty => write!(f, "feature vector must have at least one component"),
            FeatureError::NotFinite { index } => {
                write!(f, "feature vector component {index} is not finite")
            }
            FeatureError::DimensionMismatch { left, right } => {
                write!(f, "feature dimension mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for FeatureError {}

/// A dense, finite, non-empty vector of `f32` components: the signature an
/// approximate cache keys on.
///
/// Construction validates the two invariants every consumer relies on
/// (non-empty, all components finite), so downstream code can index and
/// take distances without re-checking.
///
/// # Example
///
/// ```
/// use features::FeatureVector;
///
/// let v = FeatureVector::from_vec(vec![1.0, 2.0, 2.0]).unwrap();
/// assert_eq!(v.dim(), 3);
/// assert!((v.l2_norm() - 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureVector {
    components: Vec<f32>,
    /// Lazily computed L2 norm. Deriving it from the (immutable)
    /// components keeps it out of equality and serialization.
    #[serde(skip)]
    norm: OnceLock<f64>,
}

impl PartialEq for FeatureVector {
    fn eq(&self, other: &FeatureVector) -> bool {
        // The cached norm is derived state: two vectors with the same
        // components are equal whether or not a norm was computed yet.
        self.components == other.components
    }
}

impl FeatureVector {
    /// Creates a vector from raw components.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::Empty`] for an empty input and
    /// [`FeatureError::NotFinite`] if any component is NaN or infinite.
    pub fn from_vec(components: Vec<f32>) -> Result<FeatureVector, FeatureError> {
        if components.is_empty() {
            return Err(FeatureError::Empty);
        }
        if let Some(index) = components.iter().position(|c| !c.is_finite()) {
            return Err(FeatureError::NotFinite { index });
        }
        Ok(FeatureVector {
            components,
            norm: OnceLock::new(),
        })
    }

    /// Creates the zero vector of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn zeros(dim: usize) -> FeatureVector {
        assert!(dim > 0, "zeros: dim must be positive");
        FeatureVector {
            components: vec![0.0; dim],
            norm: OnceLock::new(),
        }
    }

    /// Number of components.
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// The components as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.components
    }

    /// Consumes the vector, returning its components.
    pub fn into_vec(self) -> Vec<f32> {
        self.components
    }

    /// The Euclidean norm, computed once and cached (components are
    /// immutable, so the cache can never go stale). Cosine distance hits
    /// this on every comparison.
    pub fn l2_norm(&self) -> f64 {
        *self.norm.get_or_init(|| {
            self.components
                .iter()
                .map(|&c| (c as f64) * (c as f64))
                .sum::<f64>()
                .sqrt()
        })
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if dimensions differ.
    pub fn dot(&self, other: &FeatureVector) -> Result<f64, FeatureError> {
        self.check_dim(other)?;
        Ok(self
            .components
            .iter()
            .zip(&other.components)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum())
    }

    /// Component-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if dimensions differ.
    pub fn add(&self, other: &FeatureVector) -> Result<FeatureVector, FeatureError> {
        self.check_dim(other)?;
        Ok(FeatureVector {
            components: self
                .components
                .iter()
                .zip(&other.components)
                .map(|(&a, &b)| a + b)
                .collect(),
            norm: OnceLock::new(),
        })
    }

    /// The vector scaled by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite.
    pub fn scale(&self, factor: f32) -> FeatureVector {
        assert!(factor.is_finite(), "scale: factor must be finite");
        FeatureVector {
            components: self.components.iter().map(|&c| c * factor).collect(),
            norm: OnceLock::new(),
        }
    }

    /// A unit-norm copy, or `None` if the vector is (numerically) zero.
    pub fn normalized(&self) -> Option<FeatureVector> {
        let norm = self.l2_norm();
        if norm < 1e-12 {
            return None;
        }
        Some(self.scale((1.0 / norm) as f32))
    }

    /// The midpoint of `self` and `other` — used when a cache entry absorbs
    /// a near-duplicate key.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if dimensions differ.
    pub fn midpoint(&self, other: &FeatureVector) -> Result<FeatureVector, FeatureError> {
        Ok(self.add(other)?.scale(0.5))
    }

    fn check_dim(&self, other: &FeatureVector) -> Result<(), FeatureError> {
        if self.dim() != other.dim() {
            return Err(FeatureError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(())
    }
}

impl Index<usize> for FeatureVector {
    type Output = f32;
    fn index(&self, index: usize) -> &f32 {
        &self.components[index]
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fv[{}](", self.dim())?;
        let preview = self.components.iter().take(4);
        let mut first = true;
        for c in preview {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{c:.3}")?;
        }
        if self.dim() > 4 {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn fv(components: &[f32]) -> FeatureVector {
        FeatureVector::from_vec(components.to_vec()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(FeatureVector::from_vec(vec![]), Err(FeatureError::Empty));
        assert_eq!(
            FeatureVector::from_vec(vec![1.0, f32::NAN]),
            Err(FeatureError::NotFinite { index: 1 })
        );
        assert_eq!(
            FeatureVector::from_vec(vec![f32::INFINITY]),
            Err(FeatureError::NotFinite { index: 0 })
        );
        assert!(FeatureVector::from_vec(vec![0.0]).is_ok());
    }

    #[test]
    fn zeros_and_dim() {
        let z = FeatureVector::zeros(5);
        assert_eq!(z.dim(), 5);
        assert_eq!(z.l2_norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zeros_rejects_zero_dim() {
        FeatureVector::zeros(0);
    }

    #[test]
    fn norm_and_dot() {
        let a = fv(&[3.0, 4.0]);
        assert!((a.l2_norm() - 5.0).abs() < 1e-9);
        let b = fv(&[1.0, 2.0]);
        assert!((a.dot(&b).unwrap() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = fv(&[1.0]);
        let b = fv(&[1.0, 2.0]);
        assert_eq!(
            a.dot(&b),
            Err(FeatureError::DimensionMismatch { left: 1, right: 2 })
        );
        assert!(a.add(&b).is_err());
        assert!(a.midpoint(&b).is_err());
    }

    #[test]
    fn add_scale_midpoint() {
        let a = fv(&[1.0, 2.0]);
        let b = fv(&[3.0, 4.0]);
        assert_eq!(a.add(&b).unwrap(), fv(&[4.0, 6.0]));
        assert_eq!(a.scale(2.0), fv(&[2.0, 4.0]));
        assert_eq!(a.midpoint(&b).unwrap(), fv(&[2.0, 3.0]));
    }

    #[test]
    fn normalized_has_unit_norm() {
        let a = fv(&[3.0, 4.0]).normalized().unwrap();
        assert!((a.l2_norm() - 1.0).abs() < 1e-6);
        assert!(FeatureVector::zeros(3).normalized().is_none());
    }

    #[test]
    fn indexing_and_slices() {
        let a = fv(&[1.0, 2.0, 3.0]);
        assert_eq!(a[1], 2.0);
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.clone().into_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_previews_components() {
        let a = fv(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = a.to_string();
        assert!(s.starts_with("fv[5]("));
        assert!(s.contains('…'));
        let short = fv(&[1.0]).to_string();
        assert!(!short.contains('…'));
    }

    #[test]
    fn error_display_is_lowercase_and_informative() {
        let e = FeatureError::DimensionMismatch { left: 2, right: 3 };
        assert_eq!(e.to_string(), "feature dimension mismatch: 2 vs 3");
    }

    #[test]
    fn serde_round_trip() {
        let a = fv(&[1.5, -2.5]);
        let json = serde_json::to_string(&a).unwrap();
        let back: FeatureVector = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
