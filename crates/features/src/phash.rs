//! 64-bit SimHash perceptual signatures.
//!
//! A [`SimHasher`] draws 64 random hyperplanes; a vector's hash sets bit
//! *i* when the vector lies on the positive side of hyperplane *i*. Nearby
//! vectors flip few bits, so Hamming distance over hashes approximates
//! angular distance over vectors at a fraction of the cost. The exact-match
//! cache baseline (`ExactCache` in the `approxcache` crate) keys on these
//! hashes, and the LSH index in the `ann` crate uses the same construction
//! per table.

use serde::{Deserialize, Serialize};

use simcore::SimRng;

use crate::distance::hamming;
use crate::vector::FeatureVector;

/// A 64-bit perceptual hash of a feature vector.
///
/// # Example
///
/// ```
/// use features::{FeatureVector, SimHasher};
///
/// let hasher = SimHasher::new(8, 42);
/// let a = hasher.hash(&FeatureVector::from_vec(vec![1.0; 8]).unwrap());
/// let b = hasher.hash(&FeatureVector::from_vec(vec![1.0; 8]).unwrap());
/// assert_eq!(a.distance(b), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PerceptualHash(pub u64);

impl PerceptualHash {
    /// Hamming distance to another hash (0..=64).
    pub fn distance(self, other: PerceptualHash) -> u32 {
        hamming(self.0, other.0)
    }

    /// The raw 64-bit value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PerceptualHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A seeded bank of 64 hyperplanes mapping vectors to [`PerceptualHash`]es.
///
/// Deterministic in `(dim, seed)` so collaborating devices hash
/// compatibly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimHasher {
    dim: usize,
    seed: u64,
    /// 64 hyperplane normals, row-major `64 × dim`.
    planes: Vec<f32>,
}

impl SimHasher {
    /// Builds the hasher for vectors of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, seed: u64) -> SimHasher {
        assert!(dim > 0, "SimHasher: dim must be positive");
        let mut rng = SimRng::seed(seed).split("simhash-planes");
        let planes = (0..64 * dim).map(|_| rng.std_normal() as f32).collect();
        SimHasher { dim, seed, planes }
    }

    /// The vector dimension this hasher accepts.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The seed the hyperplanes were derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hashes `input`.
    ///
    /// # Panics
    ///
    /// Panics if `input.dim() != dim`.
    pub fn hash(&self, input: &FeatureVector) -> PerceptualHash {
        assert_eq!(
            input.dim(),
            self.dim,
            "hash: input dim {} does not match hasher dim {}",
            input.dim(),
            self.dim
        );
        let x = input.as_slice();
        let mut bits = 0u64;
        for bit in 0..64 {
            let row = &self.planes[bit * self.dim..(bit + 1) * self.dim];
            let mut acc = 0.0f64;
            for (a, b) in row.iter().zip(x) {
                acc += *a as f64 * *b as f64;
            }
            if acc >= 0.0 {
                bits |= 1 << bit;
            }
        }
        PerceptualHash(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::random_vectors;

    #[test]
    fn deterministic_in_seed() {
        let mut rng = SimRng::seed(1);
        let v = &random_vectors(1, 16, &mut rng)[0];
        let a = SimHasher::new(16, 7).hash(v);
        let b = SimHasher::new(16, 7).hash(v);
        let c = SimHasher::new(16, 8).hash(v);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn identical_vectors_hash_identically() {
        let hasher = SimHasher::new(8, 0);
        let v = FeatureVector::from_vec(vec![0.3; 8]).unwrap();
        assert_eq!(hasher.hash(&v).distance(hasher.hash(&v.clone())), 0);
    }

    #[test]
    fn nearby_vectors_flip_fewer_bits_than_far_ones() {
        let hasher = SimHasher::new(32, 3);
        let mut rng = SimRng::seed(4);
        let base = &random_vectors(1, 32, &mut rng)[0];
        // Small perturbation vs an unrelated vector; average over draws.
        let mut near_total = 0u32;
        let mut far_total = 0u32;
        for i in 0..50u64 {
            let mut r = SimRng::seed(1000 + i);
            let noise: Vec<f32> = (0..32).map(|_| (r.std_normal() * 0.02) as f32).collect();
            let near_v = base.add(&FeatureVector::from_vec(noise).unwrap()).unwrap();
            let far_v = &random_vectors(1, 32, &mut r)[0];
            near_total += hasher.hash(base).distance(hasher.hash(&near_v));
            far_total += hasher.hash(base).distance(hasher.hash(far_v));
        }
        assert!(
            near_total * 3 < far_total,
            "near {near_total} should be well below far {far_total}"
        );
    }

    #[test]
    fn scale_invariance() {
        // SimHash depends only on direction.
        let hasher = SimHasher::new(16, 5);
        let mut rng = SimRng::seed(6);
        let v = &random_vectors(1, 16, &mut rng)[0];
        assert_eq!(hasher.hash(v), hasher.hash(&v.scale(7.5)));
    }

    #[test]
    fn display_is_hex() {
        let h = PerceptualHash(0xdead_beef);
        assert_eq!(h.to_string(), "00000000deadbeef");
        assert_eq!(h.as_u64(), 0xdead_beef);
    }

    #[test]
    #[should_panic(expected = "does not match hasher dim")]
    fn rejects_wrong_dim() {
        SimHasher::new(4, 0).hash(&FeatureVector::zeros(5));
    }

    #[test]
    fn hashes_spread_across_random_inputs() {
        // Unrelated vectors should disagree on roughly half the bits.
        let hasher = SimHasher::new(32, 9);
        let mut rng = SimRng::seed(10);
        let vs = random_vectors(40, 32, &mut rng);
        let mut total = 0u32;
        let mut pairs = 0u32;
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                total += hasher.hash(&vs[i]).distance(hasher.hash(&vs[j]));
                pairs += 1;
            }
        }
        let mean = total as f64 / pairs as f64;
        assert!((mean - 32.0).abs() < 6.0, "mean hamming {mean}");
    }
}
