//! Distance metrics over feature vectors and hashes.
//!
//! The approximate-cache hit test compares a query signature against cached
//! signatures under one of these metrics. Euclidean distance is the default
//! (it is what the synthetic feature space and threshold calibration
//! assume); cosine distance is provided for direction-only signatures, and
//! Hamming distance serves the perceptual-hash fast path.

// The one module where bit-exact float comparison is the point: metric
// identities (d(x, x) == 0, symmetry) and calibrated thresholds are
// checked for exact equality. The workspace denies `float_cmp` elsewhere.
#![allow(clippy::float_cmp)]

use serde::{Deserialize, Serialize};

use crate::vector::FeatureVector;

/// The metric a cache or index compares signatures under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Metric {
    /// Straight-line (L2) distance. The default.
    #[default]
    Euclidean,
    /// `1 - cos(angle)`: 0 for parallel vectors, 2 for opposite. Zero
    /// vectors are treated as maximally distant from everything.
    Cosine,
    /// City-block (L1) distance.
    Manhattan,
}

impl Metric {
    /// Distance between `a` and `b` under this metric.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' dimensions differ (mixing signature spaces in
    /// one index is a programming error, not a runtime condition).
    pub fn distance(self, a: &FeatureVector, b: &FeatureVector) -> f64 {
        match self {
            Metric::Euclidean => euclidean(a, b),
            Metric::Cosine => cosine(a, b),
            Metric::Manhattan => manhattan(a, b),
        }
    }

    /// All supported metrics, for sweeps and tests.
    pub fn all() -> [Metric; 3] {
        [Metric::Euclidean, Metric::Cosine, Metric::Manhattan]
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Metric::Euclidean => "euclidean",
            Metric::Cosine => "cosine",
            Metric::Manhattan => "manhattan",
        };
        f.write_str(name)
    }
}

fn assert_same_dim(a: &FeatureVector, b: &FeatureVector) {
    assert_eq!(
        a.dim(),
        b.dim(),
        "distance: dimension mismatch ({} vs {})",
        a.dim(),
        b.dim()
    );
}

/// Squared Euclidean distance (cheaper than [`euclidean`] when only
/// comparisons matter, e.g. inside nearest-neighbour search).
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn squared_euclidean(a: &FeatureVector, b: &FeatureVector) -> f64 {
    assert_same_dim(a, b);
    squared_euclidean_flat(a.as_slice(), b.as_slice())
}

/// How many difference terms [`squared_euclidean_flat`] evaluates per
/// chunk before folding them into the accumulator.
const LANES: usize = 8;

/// Squared Euclidean distance over raw `f32` slices — the hot-path kernel
/// behind every nearest-neighbour scan.
///
/// The per-component work (widen to `f64`, subtract, square) is done in
/// chunks of [`LANES`] independent terms so the compiler can vectorize
/// it, but the terms are folded into the single `f64` accumulator in
/// strict index order. That keeps the result bit-identical to the naive
/// sequential loop (see `squared_euclidean_ref`): f64 addition is not
/// associative, so a multi-accumulator kernel would drift from the
/// recorded golden results. A lane-reordered variant was measured and
/// dropped for exactly that reason.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn squared_euclidean_flat(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "distance: dimension mismatch ({} vs {})",
        a.len(),
        b.len()
    );
    let split = a.len() - a.len() % LANES;
    let (a_main, a_tail) = a.split_at(split);
    let (b_main, b_tail) = b.split_at(split);
    let mut acc = 0.0f64;
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        let mut terms = [0.0f64; LANES];
        for ((term, &x), &y) in terms.iter_mut().zip(ca).zip(cb) {
            let d = x as f64 - y as f64;
            *term = d * d;
        }
        // In-order fold: keeps bit-equality with the reference kernel.
        for term in terms {
            acc += term;
        }
    }
    for (&x, &y) in a_tail.iter().zip(b_tail) {
        let d = x as f64 - y as f64;
        acc += d * d;
    }
    acc
}

/// [`squared_euclidean_flat`] with a monotone early exit: returns `None`
/// as soon as the partial sum strictly exceeds `bound`.
///
/// Every term is a square, so the accumulator only grows — once a prefix
/// exceeds `bound` the full sum must too, and a caller that would discard
/// any distance above `bound` (a bounded k-selection holding its current
/// k-th best) loses nothing by skipping the rest of the row. When the sum
/// *does* complete, it was accumulated in exactly the reference order, so
/// `Some(d)` is bit-identical to the unbounded kernel. Ties are safe:
/// `bound` itself never exits early (the exit is strict), so a candidate
/// equal to the current worst still surfaces for id-order tie-breaking.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn squared_euclidean_flat_within(a: &[f32], b: &[f32], bound: f64) -> Option<f64> {
    assert_eq!(
        a.len(),
        b.len(),
        "distance: dimension mismatch ({} vs {})",
        a.len(),
        b.len()
    );
    let split = a.len() - a.len() % LANES;
    let (a_main, a_tail) = a.split_at(split);
    let (b_main, b_tail) = b.split_at(split);
    let mut acc = 0.0f64;
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        let mut terms = [0.0f64; LANES];
        for ((term, &x), &y) in terms.iter_mut().zip(ca).zip(cb) {
            let d = x as f64 - y as f64;
            *term = d * d;
        }
        for term in terms {
            acc += term;
        }
        if acc > bound {
            return None;
        }
    }
    for (&x, &y) in a_tail.iter().zip(b_tail) {
        let d = x as f64 - y as f64;
        acc += d * d;
    }
    if acc > bound {
        return None;
    }
    Some(acc)
}

/// Squared Euclidean distance between two rows of 8-bit quantization
/// codes, in code units — the shortlist-scoring kernel for approximate
/// indexes.
///
/// Both rows must be quantized under the *same* (min, scale) so the code
/// difference is proportional to the value difference; multiplying the
/// result by `scale²` recovers an approximation of the true squared
/// distance. The integer arithmetic auto-vectorizes far wider than the
/// f64 kernel (16 lanes of u8 per 128-bit register instead of 2 of f64),
/// which is the whole point: score many candidates cheaply, then re-rank
/// the survivors with [`squared_euclidean_flat`] so reported distances
/// stay exact.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn squared_euclidean_u8(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(
        a.len(),
        b.len(),
        "distance: dimension mismatch ({} vs {})",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as i32 - y as i32;
            (d * d) as u64
        })
        .sum()
}

/// The pre-optimisation scalar kernel, kept as the equivalence oracle for
/// the chunked kernel (proptests pin bit-equality) and as the perf
/// baseline the `perf_smoke` binary measures speedups against.
#[doc(hidden)]
pub fn squared_euclidean_ref(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "distance: dimension mismatch ({} vs {})",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

/// Euclidean (L2) distance.
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn euclidean(a: &FeatureVector, b: &FeatureVector) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Manhattan (L1) distance.
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn manhattan(a: &FeatureVector, b: &FeatureVector) -> f64 {
    assert_same_dim(a, b);
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .sum()
}

/// Cosine distance `1 - cos(a, b)` in `[0, 2]`. If either vector is
/// numerically zero the vectors carry no directional information, so the
/// maximum distance `2.0` is returned.
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn cosine(a: &FeatureVector, b: &FeatureVector) -> f64 {
    assert_same_dim(a, b);
    let dot = a.dot(b).expect("dimensions checked");
    let denom = a.l2_norm() * b.l2_norm();
    if denom < 1e-24 {
        return 2.0;
    }
    // Clamp to guard against floating-point drift outside [-1, 1].
    1.0 - (dot / denom).clamp(-1.0, 1.0)
}

/// Hamming distance between two 64-bit hashes (bit positions that differ).
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(components: &[f32]) -> FeatureVector {
        FeatureVector::from_vec(components.to_vec()).unwrap()
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let a = fv(&[0.0, 0.0]);
        let b = fv(&[3.0, 4.0]);
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-9);
        assert!((squared_euclidean(&a, &b) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        let a = fv(&[1.0, -1.0]);
        let b = fv(&[4.0, 1.0]);
        assert!((manhattan(&a, &b) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_of_parallel_orthogonal_opposite() {
        let x = fv(&[1.0, 0.0]);
        let x2 = fv(&[5.0, 0.0]);
        let y = fv(&[0.0, 1.0]);
        let neg = fv(&[-2.0, 0.0]);
        assert!(cosine(&x, &x2).abs() < 1e-9);
        assert!((cosine(&x, &y) - 1.0).abs() < 1e-9);
        assert!((cosine(&x, &neg) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_of_zero_vector_is_max() {
        let z = FeatureVector::zeros(2);
        let x = fv(&[1.0, 0.0]);
        assert_eq!(cosine(&z, &x), 2.0);
        assert_eq!(cosine(&z, &z), 2.0);
    }

    #[test]
    fn squared_u8_matches_hand_computation() {
        assert_eq!(squared_euclidean_u8(&[0, 10, 255], &[0, 13, 250]), 34);
        assert_eq!(squared_euclidean_u8(&[7; 16], &[7; 16]), 0);
        // The extreme row pair stays well inside u64.
        assert_eq!(squared_euclidean_u8(&[0; 64], &[255; 64]), 64 * 255 * 255);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn squared_u8_rejects_mismatched_lengths() {
        squared_euclidean_u8(&[1, 2], &[1]);
    }

    #[test]
    fn hamming_counts_differing_bits() {
        assert_eq!(hamming(0b1010, 0b1010), 0);
        assert_eq!(hamming(0b1010, 0b0101), 4);
        assert_eq!(hamming(u64::MAX, 0), 64);
    }

    #[test]
    fn metric_dispatch_agrees_with_functions() {
        let a = fv(&[1.0, 2.0, 3.0]);
        let b = fv(&[4.0, 6.0, 8.0]);
        assert_eq!(Metric::Euclidean.distance(&a, &b), euclidean(&a, &b));
        assert_eq!(Metric::Cosine.distance(&a, &b), cosine(&a, &b));
        assert_eq!(Metric::Manhattan.distance(&a, &b), manhattan(&a, &b));
    }

    #[test]
    fn metric_display_and_all() {
        assert_eq!(Metric::Euclidean.to_string(), "euclidean");
        assert_eq!(Metric::all().len(), 3);
        assert_eq!(Metric::default(), Metric::Euclidean);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        euclidean(&fv(&[1.0]), &fv(&[1.0, 2.0]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const DIM: usize = 8;

    fn finite_vec() -> impl Strategy<Value = FeatureVector> {
        proptest::collection::vec(-100.0f32..100.0, DIM)
            .prop_map(|v| FeatureVector::from_vec(v).unwrap())
    }

    proptest! {
        /// d(a, a) == 0 for Euclidean/Manhattan (identity of indiscernibles).
        #[test]
        fn self_distance_is_zero(a in finite_vec()) {
            prop_assert!(euclidean(&a, &a) < 1e-9);
            prop_assert!(manhattan(&a, &a) < 1e-9);
        }

        /// Symmetry: d(a, b) == d(b, a) under every metric.
        #[test]
        fn symmetry(a in finite_vec(), b in finite_vec()) {
            for m in Metric::all() {
                let ab = m.distance(&a, &b);
                let ba = m.distance(&b, &a);
                prop_assert!((ab - ba).abs() < 1e-9, "{m}: {ab} vs {ba}");
            }
        }

        /// Non-negativity under every metric.
        #[test]
        fn non_negative(a in finite_vec(), b in finite_vec()) {
            for m in Metric::all() {
                prop_assert!(m.distance(&a, &b) >= 0.0);
            }
        }

        /// Triangle inequality for the true metrics (Euclidean, Manhattan).
        #[test]
        fn triangle_inequality(a in finite_vec(), b in finite_vec(), c in finite_vec()) {
            let slack = 1e-6; // float tolerance
            prop_assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + slack);
            prop_assert!(manhattan(&a, &c) <= manhattan(&a, &b) + manhattan(&b, &c) + slack);
        }

        /// Cosine distance is scale-invariant.
        #[test]
        fn cosine_scale_invariant(a in finite_vec(), b in finite_vec(), s in 0.1f32..10.0) {
            prop_assume!(a.l2_norm() > 1e-3 && b.l2_norm() > 1e-3);
            let d1 = cosine(&a, &b);
            let d2 = cosine(&a.scale(s), &b);
            prop_assert!((d1 - d2).abs() < 1e-6);
        }

        /// Hamming is a metric on u64: symmetry + triangle inequality.
        #[test]
        fn hamming_metric_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            prop_assert_eq!(hamming(a, b), hamming(b, a));
            prop_assert_eq!(hamming(a, a), 0);
            prop_assert!(hamming(a, c) <= hamming(a, b) + hamming(b, c));
        }

        /// Squared Euclidean orders pairs identically to Euclidean.
        #[test]
        fn squared_preserves_order(a in finite_vec(), b in finite_vec(), c in finite_vec()) {
            let closer_sq = squared_euclidean(&a, &b) < squared_euclidean(&a, &c);
            let closer = euclidean(&a, &b) < euclidean(&a, &c);
            prop_assert_eq!(closer_sq, closer);
        }

        /// The chunked hot-path kernel is bit-identical to the reference
        /// scalar kernel at every dimension — including lengths around
        /// the chunk boundary, which the 1..64 sweep covers. This is the
        /// proptest that lets the optimized kernel replace the reference
        /// without perturbing the golden results.
        #[test]
        fn flat_kernel_is_bit_exact(
            a in proptest::collection::vec(-100.0f32..100.0, 64),
            b in proptest::collection::vec(-100.0f32..100.0, 64),
            dim in 1usize..64,
        ) {
            let flat = squared_euclidean_flat(&a[..dim], &b[..dim]);
            let reference = squared_euclidean_ref(&a[..dim], &b[..dim]);
            prop_assert_eq!(flat.to_bits(), reference.to_bits());
        }

        /// The bounded kernel either completes with the exact same bits as
        /// the unbounded one, or proves (by monotonicity) that the full
        /// distance exceeds the bound.
        #[test]
        fn bounded_kernel_is_exact_or_provably_over(
            a in proptest::collection::vec(-100.0f32..100.0, 64),
            b in proptest::collection::vec(-100.0f32..100.0, 64),
            dim in 1usize..64,
            bound in 0.0f64..200_000.0,
        ) {
            let full = squared_euclidean_flat(&a[..dim], &b[..dim]);
            match squared_euclidean_flat_within(&a[..dim], &b[..dim], bound) {
                Some(d) => {
                    prop_assert_eq!(d.to_bits(), full.to_bits());
                    prop_assert!(d <= bound);
                }
                None => prop_assert!(full > bound),
            }
        }

        /// The u8 code kernel is a metric-compatible score: symmetric,
        /// zero exactly on identical rows, and equal to the f64 kernel on
        /// the dequantized values when `scale == 1` (codes are values).
        #[test]
        fn u8_kernel_agrees_with_float_kernel_on_codes(
            a in proptest::collection::vec(proptest::strategy::any::<u8>(), 1..64),
            b in proptest::collection::vec(proptest::strategy::any::<u8>(), 64),
        ) {
            let b = &b[..a.len()];
            let ab = squared_euclidean_u8(&a, b);
            prop_assert_eq!(ab, squared_euclidean_u8(b, &a));
            prop_assert_eq!(squared_euclidean_u8(&a, &a), 0);
            let af: Vec<f32> = a.iter().map(|&c| c as f32).collect();
            let bf: Vec<f32> = b.iter().map(|&c| c as f32).collect();
            prop_assert_eq!(ab as f64, squared_euclidean_flat(&af, &bf));
        }

        /// The cached norm is the norm: caching must not change the value,
        /// and clones/serde round-trips must agree.
        #[test]
        fn cached_norm_matches_recomputation(a in finite_vec()) {
            let expected = a.as_slice()
                .iter()
                .map(|&c| (c as f64) * (c as f64))
                .sum::<f64>()
                .sqrt();
            prop_assert_eq!(a.l2_norm().to_bits(), expected.to_bits());
            // Second read comes from the cache; clone carries it along.
            prop_assert_eq!(a.l2_norm().to_bits(), expected.to_bits());
            prop_assert_eq!(a.clone().l2_norm().to_bits(), expected.to_bits());
        }
    }
}
