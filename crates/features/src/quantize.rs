//! 8-bit linear quantization of feature vectors.
//!
//! Peer messages carry keys as `f32` components — 4 bytes per dimension.
//! Quantizing to 8-bit codes (per-vector min/scale) cuts advertisement
//! payloads ~4× at a reconstruction error far below the sensor-noise
//! floor, so the cache's distance structure is unaffected. This is the
//! standard trick production ANN systems use for storage and transport.

use serde::{Deserialize, Serialize};

use crate::vector::{FeatureError, FeatureVector};

/// An 8-bit linearly quantized feature vector.
///
/// Each component is stored as `code ∈ 0..=255` with
/// `value ≈ min + code · scale`; `scale` is chosen so the vector's full
/// range maps onto the code range, giving a worst-case per-component
/// error of `scale / 2`.
///
/// # Example
///
/// ```
/// use features::{FeatureVector, QuantizedVector};
///
/// let v = FeatureVector::from_vec(vec![0.0, 1.0, -1.0, 0.5]).unwrap();
/// let q = QuantizedVector::quantize(&v);
/// let back = q.dequantize();
/// for i in 0..4 {
///     assert!((v[i] - back[i]).abs() <= q.max_error() + 1e-6);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedVector {
    min: f32,
    scale: f32,
    codes: Vec<u8>,
}

impl QuantizedVector {
    /// Quantizes `vector`. A constant vector gets `scale == 0` and
    /// reconstructs exactly.
    pub fn quantize(vector: &FeatureVector) -> QuantizedVector {
        let slice = vector.as_slice();
        let min = slice.iter().copied().fold(f32::INFINITY, f32::min);
        let max = slice.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let range = max - min;
        if range <= 0.0 {
            return QuantizedVector {
                min,
                scale: 0.0,
                codes: vec![0; vector.dim()],
            };
        }
        let scale = range / 255.0;
        let codes = slice
            .iter()
            .map(|&x| (((x - min) / scale).round() as i32).clamp(0, 255) as u8)
            .collect();
        QuantizedVector { min, scale, codes }
    }

    /// Reconstructs the (approximate) vector.
    pub fn dequantize(&self) -> FeatureVector {
        let components: Vec<f32> = self
            .codes
            .iter()
            .map(|&c| self.min + c as f32 * self.scale)
            .collect();
        FeatureVector::from_vec(components).expect("finite reconstruction")
    }

    /// Number of components.
    pub fn dim(&self) -> usize {
        self.codes.len()
    }

    /// Worst-case per-component reconstruction error (`scale / 2`).
    pub fn max_error(&self) -> f32 {
        self.scale / 2.0
    }

    /// The quantization minimum.
    pub fn min(&self) -> f32 {
        self.min
    }

    /// The quantization step.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The raw codes.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Rebuilds from raw parts (the wire decoder's entry point).
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::Empty`] for empty codes and
    /// [`FeatureError::NotFinite`] for non-finite `min`/`scale` or
    /// negative scale.
    pub fn from_parts(
        min: f32,
        scale: f32,
        codes: Vec<u8>,
    ) -> Result<QuantizedVector, FeatureError> {
        if codes.is_empty() {
            return Err(FeatureError::Empty);
        }
        if !min.is_finite() || !scale.is_finite() || scale < 0.0 {
            return Err(FeatureError::NotFinite { index: 0 });
        }
        Ok(QuantizedVector { min, scale, codes })
    }

    /// Bytes this vector occupies on the wire (`2 + 4 + 4 + dim`).
    pub fn encoded_len(&self) -> usize {
        2 + 4 + 4 + self.codes.len()
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::distance::euclidean;
    use crate::projection::random_vectors;
    use simcore::SimRng;

    #[test]
    fn round_trip_error_is_bounded() {
        let mut rng = SimRng::seed(1);
        for v in random_vectors(50, 64, &mut rng) {
            let q = QuantizedVector::quantize(&v);
            let back = q.dequantize();
            let bound = q.max_error() + 1e-6;
            for i in 0..v.dim() {
                assert!(
                    (v[i] - back[i]).abs() <= bound,
                    "component {i}: {} vs {}",
                    v[i],
                    back[i]
                );
            }
        }
    }

    #[test]
    fn constant_vector_is_exact() {
        let v = FeatureVector::from_vec(vec![3.5; 16]).unwrap();
        let q = QuantizedVector::quantize(&v);
        assert_eq!(q.scale(), 0.0);
        assert_eq!(q.max_error(), 0.0);
        assert_eq!(q.dequantize(), v);
    }

    #[test]
    fn distance_distortion_is_far_below_noise_floor() {
        // Keys in this system live at a sensor-noise floor of ≈ 5.7 key
        // units; quantization must distort distances by an order of
        // magnitude less.
        let mut rng = SimRng::seed(2);
        let vectors = random_vectors(40, 64, &mut rng);
        let mut worst: f64 = 0.0;
        for i in 0..vectors.len() {
            for j in (i + 1)..vectors.len() {
                let exact = euclidean(&vectors[i], &vectors[j]);
                let approx = euclidean(
                    &QuantizedVector::quantize(&vectors[i]).dequantize(),
                    &QuantizedVector::quantize(&vectors[j]).dequantize(),
                );
                worst = worst.max((exact - approx).abs());
            }
        }
        assert!(worst < 0.1, "worst distance distortion {worst}");
    }

    #[test]
    fn parts_round_trip_and_validate() {
        let v = FeatureVector::from_vec(vec![1.0, 2.0]).unwrap();
        let q = QuantizedVector::quantize(&v);
        let rebuilt = QuantizedVector::from_parts(q.min(), q.scale(), q.codes().to_vec()).unwrap();
        assert_eq!(rebuilt, q);
        assert!(QuantizedVector::from_parts(0.0, 1.0, vec![]).is_err());
        assert!(QuantizedVector::from_parts(f32::NAN, 1.0, vec![0]).is_err());
        assert!(QuantizedVector::from_parts(0.0, -1.0, vec![0]).is_err());
    }

    #[test]
    fn wire_size_is_quarter_of_float() {
        let v = FeatureVector::from_vec(vec![0.5; 64]).unwrap();
        let q = QuantizedVector::quantize(&v);
        assert_eq!(q.encoded_len(), 74);
        // vs 2 + 4·64 = 258 for float transport.
        assert!(q.encoded_len() * 3 < 2 + 4 * 64);
        assert_eq!(q.dim(), 64);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Quantize→dequantize→quantize is stable (idempotent on codes)
        /// and error stays within the advertised bound.
        #[test]
        fn quantization_contract(
            raw in proptest::collection::vec(-1000.0f32..1000.0, 1..64)
        ) {
            let v = FeatureVector::from_vec(raw).unwrap();
            let q = QuantizedVector::quantize(&v);
            let back = q.dequantize();
            for i in 0..v.dim() {
                prop_assert!((v[i] - back[i]).abs() <= q.max_error() + 1e-3);
            }
            let q2 = QuantizedVector::quantize(&back);
            let back2 = q2.dequantize();
            for i in 0..v.dim() {
                prop_assert!((back[i] - back2[i]).abs() <= q2.max_error() + 1e-3);
            }
        }
    }
}
