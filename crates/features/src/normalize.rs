//! Per-dimension standardization of feature vectors.
//!
//! Distance thresholds (the cache's "how close is close enough") are only
//! meaningful if the key space has a stable scale. A [`Normalizer`] is
//! fitted on sample signatures and then applied to every key before it
//! enters an index, giving each dimension zero mean and unit variance.

use serde::{Deserialize, Serialize};

use crate::vector::{FeatureError, FeatureVector};

/// A fitted per-dimension affine transform `x ↦ (x - mean) / std`.
///
/// Dimensions with (numerically) zero variance are passed through centered
/// but unscaled, so constant features do not explode.
///
/// # Example
///
/// ```
/// use features::{FeatureVector, Normalizer};
///
/// let data = vec![
///     FeatureVector::from_vec(vec![0.0, 10.0]).unwrap(),
///     FeatureVector::from_vec(vec![2.0, 30.0]).unwrap(),
/// ];
/// let norm = Normalizer::fit(&data).unwrap();
/// let z = norm.apply(&data[0]).unwrap();
/// assert!((z[0] + 1.0).abs() < 1e-6); // (0 - 1) / 1
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Normalizer {
    /// Fits means and standard deviations on `samples`.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::Empty`] if `samples` is empty, or
    /// [`FeatureError::DimensionMismatch`] if samples disagree on dimension.
    pub fn fit(samples: &[FeatureVector]) -> Result<Normalizer, FeatureError> {
        let first = samples.first().ok_or(FeatureError::Empty)?;
        let dim = first.dim();
        for s in samples {
            if s.dim() != dim {
                return Err(FeatureError::DimensionMismatch {
                    left: dim,
                    right: s.dim(),
                });
            }
        }
        let n = samples.len() as f64;
        let mut means = vec![0.0f64; dim];
        for s in samples {
            for (m, &c) in means.iter_mut().zip(s.as_slice()) {
                *m += c as f64;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0f64; dim];
        for s in samples {
            for ((v, m), &c) in vars.iter_mut().zip(&means).zip(s.as_slice()) {
                let d = c as f64 - m;
                *v += d * d;
            }
        }
        let stds = vars.into_iter().map(|v| (v / n).sqrt()).collect();
        Ok(Normalizer { means, stds })
    }

    /// An identity normalizer for `dim` dimensions (mean 0, std 1), for
    /// pipelines configured to skip normalization.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn identity(dim: usize) -> Normalizer {
        assert!(dim > 0, "identity: dim must be positive");
        Normalizer {
            means: vec![0.0; dim],
            stds: vec![1.0; dim],
        }
    }

    /// The dimension this normalizer was fitted for.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Fitted per-dimension means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-dimension standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Standardizes `input`.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if `input`'s dimension
    /// differs from the fitted dimension.
    pub fn apply(&self, input: &FeatureVector) -> Result<FeatureVector, FeatureError> {
        if input.dim() != self.dim() {
            return Err(FeatureError::DimensionMismatch {
                left: self.dim(),
                right: input.dim(),
            });
        }
        let out: Vec<f32> = input
            .as_slice()
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&c, (&m, &s))| {
                let centered = c as f64 - m;
                let scaled = if s > 1e-12 { centered / s } else { centered };
                scaled as f32
            })
            .collect();
        FeatureVector::from_vec(out)
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn fv(components: &[f32]) -> FeatureVector {
        FeatureVector::from_vec(components.to_vec()).unwrap()
    }

    #[test]
    fn fit_requires_samples() {
        assert_eq!(Normalizer::fit(&[]), Err(FeatureError::Empty));
    }

    #[test]
    fn fit_rejects_mixed_dims() {
        let err = Normalizer::fit(&[fv(&[1.0]), fv(&[1.0, 2.0])]).unwrap_err();
        assert_eq!(err, FeatureError::DimensionMismatch { left: 1, right: 2 });
    }

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let data: Vec<FeatureVector> = (0..100)
            .map(|i| fv(&[i as f32, 5.0 * i as f32 + 100.0]))
            .collect();
        let norm = Normalizer::fit(&data).unwrap();
        let transformed: Vec<FeatureVector> = data.iter().map(|v| norm.apply(v).unwrap()).collect();
        for d in 0..2 {
            let mean: f64 = transformed.iter().map(|v| v[d] as f64).sum::<f64>() / 100.0;
            let var: f64 = transformed
                .iter()
                .map(|v| (v[d] as f64 - mean).powi(2))
                .sum::<f64>()
                / 100.0;
            assert!(mean.abs() < 1e-5, "dim {d} mean {mean}");
            assert!((var - 1.0).abs() < 1e-4, "dim {d} var {var}");
        }
    }

    #[test]
    fn constant_dimension_is_centered_not_scaled() {
        let data = vec![fv(&[7.0, 1.0]), fv(&[7.0, 3.0])];
        let norm = Normalizer::fit(&data).unwrap();
        let z = norm.apply(&fv(&[7.0, 2.0])).unwrap();
        assert_eq!(z[0], 0.0);
        assert_eq!(z[1], 0.0); // (2 - 2) / 1
        let z2 = norm.apply(&fv(&[9.0, 2.0])).unwrap();
        assert_eq!(z2[0], 2.0); // centered only, std was 0
    }

    #[test]
    fn identity_passes_through() {
        let norm = Normalizer::identity(3);
        let v = fv(&[1.0, -2.0, 3.0]);
        assert_eq!(norm.apply(&v).unwrap(), v);
        assert_eq!(norm.dim(), 3);
    }

    #[test]
    fn apply_rejects_wrong_dim() {
        let norm = Normalizer::identity(2);
        assert!(norm.apply(&fv(&[1.0])).is_err());
    }

    #[test]
    fn accessors_expose_fit() {
        let data = vec![fv(&[0.0]), fv(&[2.0])];
        let norm = Normalizer::fit(&data).unwrap();
        assert_eq!(norm.means(), &[1.0]);
        assert_eq!(norm.stds(), &[1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Applying a fitted normalizer to its own fitting data always
        /// yields per-dimension mean ~0; variance ~1 when non-degenerate.
        #[test]
        fn fitted_data_standardized(
            raw in proptest::collection::vec(
                proptest::collection::vec(-50.0f32..50.0, 4), 2..40)
        ) {
            let data: Vec<FeatureVector> = raw
                .into_iter()
                .map(|v| FeatureVector::from_vec(v).unwrap())
                .collect();
            let norm = Normalizer::fit(&data).unwrap();
            let n = data.len() as f64;
            for d in 0..4 {
                let mean: f64 = data
                    .iter()
                    .map(|v| norm.apply(v).unwrap()[d] as f64)
                    .sum::<f64>() / n;
                prop_assert!(mean.abs() < 1e-3, "dim {} mean {}", d, mean);
            }
        }
    }
}
