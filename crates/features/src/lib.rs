//! Locality-preserving cache keys for approximate caching.
//!
//! An approximate cache does not key on pixels; it keys on a compact
//! *signature* of the image such that visually similar inputs land close
//! together. This crate provides:
//!
//! - [`FeatureVector`] — the signature type used everywhere (cache keys,
//!   ANN indexes, wire messages).
//! - [`distance`] — the metrics the hit test can use (Euclidean, cosine,
//!   Manhattan; Hamming for hashes).
//! - [`RandomProjection`] — a seeded Johnson–Lindenstrauss projection used
//!   to compress raw frame descriptors into low-dimensional keys while
//!   approximately preserving relative distances.
//! - [`PerceptualHash`] — a 64-bit SimHash signature for cheap
//!   pre-filtering and exact-match caching baselines.
//! - [`Normalizer`] — per-dimension standardization fitted on sample data,
//!   so distance thresholds are comparable across feature spaces.
//!
//! # Example
//!
//! ```
//! use features::{FeatureVector, RandomProjection, distance};
//!
//! let raw = FeatureVector::from_vec(vec![0.5; 256]).unwrap();
//! let proj = RandomProjection::new(256, 64, 42);
//! let key = proj.project(&raw);
//! assert_eq!(key.dim(), 64);
//! assert!(distance::euclidean(&key, &key) < 1e-6);
//! ```

pub mod distance;
pub mod normalize;
pub mod phash;
pub mod projection;
pub mod quantize;
pub mod vector;

pub use distance::Metric;
pub use normalize::Normalizer;
pub use phash::{PerceptualHash, SimHasher};
pub use projection::RandomProjection;
pub use quantize::QuantizedVector;
pub use vector::{FeatureError, FeatureVector};
