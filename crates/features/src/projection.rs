//! Seeded Gaussian random projection (Johnson–Lindenstrauss).
//!
//! Real deployments extract cache keys from an early DNN layer; this
//! repository's substitute is a random projection of the synthetic frame
//! descriptor. By the JL lemma the projection approximately preserves
//! relative Euclidean distances, which is the only property the
//! approximate-cache hit test needs from its key space.

use rand::Rng;
use serde::{Deserialize, Serialize};

use simcore::SimRng;

use crate::vector::FeatureVector;

/// A fixed `dim_in → dim_out` Gaussian projection matrix, deterministic in
/// its seed.
///
/// Every device in a collaborative deployment must build keys with the
/// *same* projection (otherwise peer lookups compare incompatible spaces),
/// so the matrix is a pure function of `(dim_in, dim_out, seed)` and
/// devices just share the seed.
///
/// # Example
///
/// ```
/// use features::{FeatureVector, RandomProjection};
///
/// let p = RandomProjection::new(128, 16, 7);
/// let x = FeatureVector::from_vec(vec![1.0; 128]).unwrap();
/// let y = p.project(&x);
/// assert_eq!(y.dim(), 16);
/// // Deterministic: same seed, same key.
/// assert_eq!(RandomProjection::new(128, 16, 7).project(&x), y);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomProjection {
    dim_in: usize,
    dim_out: usize,
    seed: u64,
    /// Row-major `dim_out × dim_in` matrix, scaled by `1/sqrt(dim_out)` so
    /// expected squared norms are preserved.
    matrix: Vec<f32>,
}

impl RandomProjection {
    /// Builds the projection for the given dimensions and seed.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(dim_in: usize, dim_out: usize, seed: u64) -> RandomProjection {
        assert!(dim_in > 0, "RandomProjection: dim_in must be positive");
        assert!(dim_out > 0, "RandomProjection: dim_out must be positive");
        let mut rng = SimRng::seed(seed).split("random-projection");
        let scale = 1.0 / (dim_out as f64).sqrt();
        let matrix = (0..dim_in * dim_out)
            .map(|_| (rng.std_normal() * scale) as f32)
            .collect();
        RandomProjection {
            dim_in,
            dim_out,
            seed,
            matrix,
        }
    }

    /// Input dimension.
    pub fn dim_in(&self) -> usize {
        self.dim_in
    }

    /// Output (key) dimension.
    pub fn dim_out(&self) -> usize {
        self.dim_out
    }

    /// The seed the matrix was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Projects `input` into the key space.
    ///
    /// # Panics
    ///
    /// Panics if `input.dim() != dim_in`.
    pub fn project(&self, input: &FeatureVector) -> FeatureVector {
        assert_eq!(
            input.dim(),
            self.dim_in,
            "project: input dim {} does not match projection dim_in {}",
            input.dim(),
            self.dim_in
        );
        let x = input.as_slice();
        let mut out = vec![0.0f32; self.dim_out];
        for (r, out_c) in out.iter_mut().enumerate() {
            let row = &self.matrix[r * self.dim_in..(r + 1) * self.dim_in];
            let mut acc = 0.0f64;
            for (a, b) in row.iter().zip(x) {
                acc += *a as f64 * *b as f64;
            }
            *out_c = acc as f32;
        }
        FeatureVector::from_vec(out).expect("projection of finite input is finite")
    }

    /// Projects a batch of vectors.
    ///
    /// # Panics
    ///
    /// Panics if any input's dimension differs from `dim_in`.
    pub fn project_all(&self, inputs: &[FeatureVector]) -> Vec<FeatureVector> {
        inputs.iter().map(|v| self.project(v)).collect()
    }
}

/// Generates `count` random Gaussian vectors of dimension `dim` — a helper
/// for tests and benchmarks that need plausible raw descriptors.
pub fn random_vectors(count: usize, dim: usize, rng: &mut SimRng) -> Vec<FeatureVector> {
    (0..count)
        .map(|_| {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            FeatureVector::from_vec(v).expect("generated components are finite")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean;

    #[test]
    fn deterministic_in_seed() {
        let a = RandomProjection::new(32, 8, 1);
        let b = RandomProjection::new(32, 8, 1);
        let c = RandomProjection::new(32, 8, 2);
        let mut rng = SimRng::seed(9);
        let x = &random_vectors(1, 32, &mut rng)[0];
        assert_eq!(a.project(x), b.project(x));
        assert_ne!(a.project(x), c.project(x));
    }

    #[test]
    fn output_dimension_is_dim_out() {
        let p = RandomProjection::new(100, 10, 3);
        assert_eq!(p.dim_in(), 100);
        assert_eq!(p.dim_out(), 10);
        assert_eq!(p.seed(), 3);
        let mut rng = SimRng::seed(4);
        let x = &random_vectors(1, 100, &mut rng)[0];
        assert_eq!(p.project(x).dim(), 10);
    }

    #[test]
    #[should_panic(expected = "does not match projection dim_in")]
    fn rejects_wrong_input_dim() {
        let p = RandomProjection::new(8, 4, 0);
        p.project(&FeatureVector::zeros(9));
    }

    #[test]
    fn zero_maps_to_zero() {
        let p = RandomProjection::new(16, 4, 0);
        let y = p.project(&FeatureVector::zeros(16));
        assert!(y.l2_norm() < 1e-9);
    }

    #[test]
    fn projection_is_linear() {
        let p = RandomProjection::new(16, 4, 5);
        let mut rng = SimRng::seed(6);
        let vs = random_vectors(2, 16, &mut rng);
        let sum_then_project = p.project(&vs[0].add(&vs[1]).unwrap());
        let project_then_sum = p.project(&vs[0]).add(&p.project(&vs[1])).unwrap();
        for i in 0..4 {
            assert!((sum_then_project[i] - project_then_sum[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn norms_preserved_in_expectation() {
        // Average ratio of projected-to-original norm should be near 1.
        let p = RandomProjection::new(64, 32, 7);
        let mut rng = SimRng::seed(8);
        let vs = random_vectors(200, 64, &mut rng);
        let mean_ratio: f64 = vs
            .iter()
            .map(|v| p.project(v).l2_norm() / v.l2_norm())
            .sum::<f64>()
            / vs.len() as f64;
        assert!((mean_ratio - 1.0).abs() < 0.1, "mean ratio {mean_ratio}");
    }

    #[test]
    fn project_all_matches_individual() {
        let p = RandomProjection::new(16, 4, 5);
        let mut rng = SimRng::seed(10);
        let vs = random_vectors(5, 16, &mut rng);
        let batch = p.project_all(&vs);
        for (v, b) in vs.iter().zip(&batch) {
            assert_eq!(&p.project(v), b);
        }
    }

    #[test]
    fn distances_roughly_preserved() {
        // JL property: with dim_out = 32 the pairwise distance distortion
        // on a small sample should be modest.
        let p = RandomProjection::new(128, 32, 11);
        let mut rng = SimRng::seed(12);
        let vs = random_vectors(20, 128, &mut rng);
        let projected = p.project_all(&vs);
        let mut max_distortion: f64 = 0.0;
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                let orig = euclidean(&vs[i], &vs[j]);
                let proj = euclidean(&projected[i], &projected[j]);
                max_distortion = max_distortion.max((proj / orig - 1.0).abs());
            }
        }
        assert!(max_distortion < 0.6, "max distortion {max_distortion}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::distance::euclidean;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The JL projection keeps *relative* distances: if a is much closer
        /// to b than to c in the input space, the projection rarely inverts
        /// the relationship by a large factor. We assert the weaker, robust
        /// property that projected distance is within a wide multiplicative
        /// band of the original for 64→16 dims.
        #[test]
        fn distance_band(seed in 0u64..1000) {
            let p = RandomProjection::new(64, 16, seed);
            let mut rng = SimRng::seed(seed ^ 0xdead_beef);
            let vs = random_vectors(6, 64, &mut rng);
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    let orig = euclidean(&vs[i], &vs[j]);
                    let proj = euclidean(&p.project(&vs[i]), &p.project(&vs[j]));
                    prop_assert!(proj > orig * 0.2 && proj < orig * 2.5,
                        "orig {orig}, proj {proj}");
                }
            }
        }
    }
}
