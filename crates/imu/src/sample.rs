//! Raw 6-axis sensor samples.

use serde::{Deserialize, Serialize};

use simcore::SimTime;

/// One 6-axis IMU reading: 3-axis gyroscope plus 3-axis linear
/// accelerometer (gravity already subtracted, as Android's
/// `TYPE_LINEAR_ACCELERATION` reports).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Angular velocity around x/y/z, radians per second.
    pub gyro: [f64; 3],
    /// Linear acceleration along x/y/z, metres per second squared.
    pub accel: [f64; 3],
}

impl ImuSample {
    /// Magnitude of the angular-velocity vector, rad/s.
    pub fn gyro_magnitude(&self) -> f64 {
        (self.gyro[0].powi(2) + self.gyro[1].powi(2) + self.gyro[2].powi(2)).sqrt()
    }

    /// Magnitude of the linear-acceleration vector, m/s².
    pub fn accel_magnitude(&self) -> f64 {
        (self.accel[0].powi(2) + self.accel[1].powi(2) + self.accel[2].powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitudes_are_euclidean_norms() {
        let s = ImuSample {
            at: SimTime::ZERO,
            gyro: [3.0, 4.0, 0.0],
            accel: [0.0, 0.0, 2.0],
        };
        assert!((s.gyro_magnitude() - 5.0).abs() < 1e-12);
        assert!((s.accel_magnitude() - 2.0).abs() < 1e-12);
    }

    #[test]
    // Exact comparison is intentional: zero vectors have exactly zero norm.
    #[allow(clippy::float_cmp)]
    fn zero_sample_has_zero_magnitudes() {
        let s = ImuSample {
            at: SimTime::ZERO,
            gyro: [0.0; 3],
            accel: [0.0; 3],
        };
        assert_eq!(s.gyro_magnitude(), 0.0);
        assert_eq!(s.accel_magnitude(), 0.0);
    }
}
