//! Activity recognition from inertial windows.
//!
//! A single pair of gate thresholds cannot fit every usage context: the
//! tremor floor of a hand-held phone is an order of magnitude above a
//! propped one, and a walker's gait produces rotation spikes that are
//! *normal*, not view changes. Real systems therefore classify the
//! device's activity from the IMU and adapt thresholds per activity.
//! This module provides that classifier (simple statistical features over
//! a sliding window — the standard approach on phones, where a tree over
//! RMS features reaches >95% on this task) and per-activity gate presets.

use serde::{Deserialize, Serialize};

use crate::estimate::MotionEstimate;
use crate::gate::ImuGate;

/// The coarse usage contexts the gate adapts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Propped or resting on a surface.
    Still,
    /// Held in a roughly steady hand (standing user).
    Handheld,
    /// Carried by a walking user.
    Walking,
    /// Deliberate reorientation in progress (pan / turn).
    Turning,
    /// Mounted in a moving vehicle (vibration without rotation).
    Vehicle,
}

impl Activity {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Activity::Still => "still",
            Activity::Handheld => "handheld",
            Activity::Walking => "walking",
            Activity::Turning => "turning",
            Activity::Vehicle => "vehicle",
        }
    }

    /// The gate preset tuned for this activity: the still threshold sits
    /// above the activity's own motion floor (so normal tremor/gait does
    /// not defeat the fast path) and below a genuine view change.
    pub fn gate_preset(&self) -> ImuGate {
        match self {
            Activity::Still => ImuGate::new(0.5, 20.0),
            Activity::Handheld => ImuGate::new(1.5, 25.0),
            // A walker's gait injects ~0.5–1.0 score per 100 ms window;
            // treat that as baseline, not as view change.
            Activity::Walking => ImuGate::new(3.0, 30.0),
            // Mid-turn the local cache is hopeless: skip aggressively.
            Activity::Turning => ImuGate::new(0.5, 10.0),
            // Vibration without rotation: require more accumulated motion.
            Activity::Vehicle => ImuGate::new(2.0, 40.0),
        }
    }
}

impl std::fmt::Display for Activity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Classifies windows into [`Activity`] values with hysteresis.
///
/// Decision thresholds operate on two features of the
/// [`MotionEstimate`]: RMS angular velocity (rad/s) and RMS linear
/// acceleration (m/s²). Hysteresis requires `switch_after` consecutive
/// windows of a new activity before reporting it, suppressing flicker at
/// boundaries.
///
/// # Example
///
/// ```
/// use imu::activity::{Activity, ActivityClassifier};
/// use imu::MotionEstimate;
///
/// let mut clf = ActivityClassifier::default();
/// let still = MotionEstimate { gyro_rms: 0.005, accel_rms: 0.02, ..Default::default() };
/// assert_eq!(clf.classify(&still), Activity::Still);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivityClassifier {
    /// Consecutive windows required to switch activity.
    pub switch_after: usize,
    current: Activity,
    candidate: Activity,
    streak: usize,
}

impl Default for ActivityClassifier {
    fn default() -> Self {
        ActivityClassifier {
            switch_after: 3,
            current: Activity::Still,
            candidate: Activity::Still,
            streak: 0,
        }
    }
}

impl ActivityClassifier {
    /// Creates a classifier that switches after `switch_after` consistent
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics if `switch_after == 0`.
    pub fn new(switch_after: usize) -> ActivityClassifier {
        assert!(
            switch_after > 0,
            "ActivityClassifier: switch_after must be positive"
        );
        ActivityClassifier {
            switch_after,
            ..ActivityClassifier::default()
        }
    }

    /// The instantaneous (no-hysteresis) decision for one window.
    pub fn classify_raw(estimate: &MotionEstimate) -> Activity {
        let gyro = estimate.gyro_rms;
        let accel = estimate.accel_rms;
        // Decision list ordered from most to least specific; thresholds
        // sit between the motion-profile regimes of `imu::profile`.
        if gyro > 0.5 {
            Activity::Turning
        } else if accel > 0.7 && gyro > 0.05 {
            Activity::Walking
        } else if accel > 0.45 && gyro < 0.05 {
            Activity::Vehicle
        } else if gyro > 0.015 || accel > 0.08 {
            Activity::Handheld
        } else {
            Activity::Still
        }
    }

    /// Classifies one window with hysteresis, returning the (possibly
    /// unchanged) current activity.
    pub fn classify(&mut self, estimate: &MotionEstimate) -> Activity {
        let raw = Self::classify_raw(estimate);
        if raw == self.current {
            self.candidate = raw;
            self.streak = 0;
            return self.current;
        }
        if raw == self.candidate {
            self.streak += 1;
        } else {
            self.candidate = raw;
            self.streak = 1;
        }
        if self.streak >= self.switch_after {
            self.current = raw;
            self.streak = 0;
        }
        self.current
    }

    /// The activity currently reported.
    pub fn current(&self) -> Activity {
        self.current
    }

    /// Resets to `Still` (e.g. when the app resumes).
    pub fn reset(&mut self) {
        *self = ActivityClassifier::new(self.switch_after);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::MotionEstimator;
    use crate::profile::MotionProfile;
    use crate::synth::ImuSynthesizer;
    use crate::trace::MotionTrace;
    use simcore::{SimDuration, SimRng};

    fn estimate(gyro_rms: f64, accel_rms: f64) -> MotionEstimate {
        MotionEstimate {
            gyro_rms,
            accel_rms,
            ..MotionEstimate::default()
        }
    }

    #[test]
    fn raw_decision_regions() {
        assert_eq!(
            ActivityClassifier::classify_raw(&estimate(0.005, 0.02)),
            Activity::Still
        );
        assert_eq!(
            ActivityClassifier::classify_raw(&estimate(0.05, 0.15)),
            Activity::Handheld
        );
        assert_eq!(
            ActivityClassifier::classify_raw(&estimate(0.1, 1.2)),
            Activity::Walking
        );
        assert_eq!(
            ActivityClassifier::classify_raw(&estimate(1.2, 0.3)),
            Activity::Turning
        );
        assert_eq!(
            ActivityClassifier::classify_raw(&estimate(0.01, 0.6)),
            Activity::Vehicle
        );
    }

    #[test]
    fn hysteresis_suppresses_single_window_flicker() {
        let mut clf = ActivityClassifier::new(3);
        assert_eq!(clf.classify(&estimate(0.005, 0.02)), Activity::Still);
        // Two turning windows: not yet enough.
        assert_eq!(clf.classify(&estimate(1.0, 0.2)), Activity::Still);
        assert_eq!(clf.classify(&estimate(1.0, 0.2)), Activity::Still);
        // Third consecutive: switch.
        assert_eq!(clf.classify(&estimate(1.0, 0.2)), Activity::Turning);
        assert_eq!(clf.current(), Activity::Turning);
    }

    #[test]
    fn interrupted_streak_restarts() {
        let mut clf = ActivityClassifier::new(3);
        clf.classify(&estimate(1.0, 0.2)); // turning ×1
        clf.classify(&estimate(1.0, 0.2)); // turning ×2
        clf.classify(&estimate(0.1, 1.2)); // walking ×1 (resets streak)
        clf.classify(&estimate(1.0, 0.2)); // turning ×1
        clf.classify(&estimate(1.0, 0.2)); // turning ×2
        assert_eq!(clf.current(), Activity::Still);
        assert_eq!(clf.classify(&estimate(1.0, 0.2)), Activity::Turning);
    }

    #[test]
    fn reset_returns_to_still() {
        let mut clf = ActivityClassifier::new(1);
        clf.classify(&estimate(1.0, 0.2));
        assert_eq!(clf.current(), Activity::Turning);
        clf.reset();
        assert_eq!(clf.current(), Activity::Still);
    }

    #[test]
    fn classifies_synthetic_profiles_correctly() {
        // End-to-end: synthesize each profile's sensor stream and check
        // the majority decision over its windows.
        let estimator = MotionEstimator::default();
        let cases = [
            (MotionProfile::Stationary, Activity::Still),
            (MotionProfile::HandheldJitter, Activity::Handheld),
            (MotionProfile::Walking { speed_mps: 1.4 }, Activity::Walking),
        ];
        for (profile, expected) in cases {
            let mut rng = SimRng::seed(31);
            let trace = MotionTrace::generate(profile, SimDuration::from_secs(10), 100.0, &mut rng);
            let samples = ImuSynthesizer::default().synthesize(&trace, &mut rng);
            let mut votes = std::collections::HashMap::new();
            for chunk in samples.chunks(10) {
                let raw = ActivityClassifier::classify_raw(&estimator.estimate(chunk));
                *votes.entry(raw).or_insert(0usize) += 1;
            }
            let (majority, _) = votes.iter().max_by_key(|(_, &c)| c).unwrap();
            assert_eq!(*majority, expected, "profile {profile}: votes {votes:?}");
        }
    }

    #[test]
    fn gate_presets_are_coherent() {
        for activity in [
            Activity::Still,
            Activity::Handheld,
            Activity::Walking,
            Activity::Turning,
            Activity::Vehicle,
        ] {
            let gate = activity.gate_preset();
            assert!(gate.still_threshold <= gate.skip_threshold, "{activity}");
        }
        // Walking tolerates more accumulated motion than still.
        assert!(
            Activity::Walking.gate_preset().still_threshold
                > Activity::Still.gate_preset().still_threshold
        );
    }

    #[test]
    #[should_panic(expected = "switch_after must be positive")]
    fn zero_switch_after_rejected() {
        ActivityClassifier::new(0);
    }

    #[test]
    fn names() {
        assert_eq!(Activity::Walking.to_string(), "walking");
        assert_eq!(Activity::Vehicle.name(), "vehicle");
    }
}
