//! Parametric device-motion regimes.

use serde::{Deserialize, Serialize};

/// How the (simulated) smartphone moves while the recognition app runs.
///
/// Each variant fixes the stochastic process that drives the ground-truth
/// pose in [`MotionTrace::generate`](crate::MotionTrace::generate); the
/// numbers below are rough magnitudes from handheld-device motion studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MotionProfile {
    /// Device propped or held dead still: only physiological tremor
    /// (~0.2°/s RMS rotation, ~0.02 m/s² residual acceleration).
    Stationary,
    /// Held in hand while standing: tremor plus slow involuntary wander.
    HandheldJitter,
    /// Deliberate smooth pan at `deg_per_sec` degrees per second of yaw —
    /// scanning a shelf or a room.
    SlowPan {
        /// Yaw rate in degrees per second.
        deg_per_sec: f64,
    },
    /// Walking at `speed_mps` with gait-induced bobbing and occasional
    /// heading changes.
    Walking {
        /// Forward speed in metres per second (typical walk ≈ 1.4).
        speed_mps: f64,
    },
    /// Alternating dwell (look at one thing) and quick reorientation:
    /// `dwell_secs` of near-stillness, then a fast turn of `turn_deg`.
    TurnAndLook {
        /// Seconds spent looking at each subject.
        dwell_secs: f64,
        /// Magnitude of each reorientation, degrees of yaw.
        turn_deg: f64,
    },
    /// Mounted in a vehicle at `speed_mps`: fast translation, low rotation,
    /// road vibration.
    Vehicle {
        /// Forward speed in metres per second.
        speed_mps: f64,
    },
}

impl MotionProfile {
    /// A short stable name used in experiment tables and RNG stream labels.
    pub fn name(&self) -> &'static str {
        match self {
            MotionProfile::Stationary => "stationary",
            MotionProfile::HandheldJitter => "handheld",
            MotionProfile::SlowPan { .. } => "slow-pan",
            MotionProfile::Walking { .. } => "walking",
            MotionProfile::TurnAndLook { .. } => "turn-and-look",
            MotionProfile::Vehicle { .. } => "vehicle",
        }
    }

    /// Tremor (white rotational noise) RMS in radians per second.
    pub(crate) fn tremor_rad_per_sec(&self) -> f64 {
        match self {
            MotionProfile::Stationary => 0.2f64.to_radians(),
            MotionProfile::HandheldJitter => 1.5f64.to_radians(),
            MotionProfile::SlowPan { .. } => 1.0f64.to_radians(),
            MotionProfile::Walking { .. } => 4.0f64.to_radians(),
            MotionProfile::TurnAndLook { .. } => 1.0f64.to_radians(),
            MotionProfile::Vehicle { .. } => 0.8f64.to_radians(),
        }
    }

    /// Residual linear-acceleration RMS in m/s² (gravity already removed).
    pub(crate) fn accel_rms(&self) -> f64 {
        match self {
            MotionProfile::Stationary => 0.02,
            MotionProfile::HandheldJitter => 0.15,
            MotionProfile::SlowPan { .. } => 0.10,
            MotionProfile::Walking { .. } => 1.2,
            MotionProfile::TurnAndLook { .. } => 0.2,
            MotionProfile::Vehicle { .. } => 0.6,
        }
    }

    /// The four profiles used as standard workload scenarios in the
    /// experiment suite.
    pub fn standard_set() -> [MotionProfile; 4] {
        [
            MotionProfile::Stationary,
            MotionProfile::SlowPan { deg_per_sec: 10.0 },
            MotionProfile::Walking { speed_mps: 1.4 },
            MotionProfile::TurnAndLook {
                dwell_secs: 3.0,
                turn_deg: 45.0,
            },
        ]
    }
}

impl std::fmt::Display for MotionProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(MotionProfile::Stationary.name(), "stationary");
        assert_eq!(
            MotionProfile::SlowPan { deg_per_sec: 5.0 }.name(),
            "slow-pan"
        );
        assert_eq!(
            MotionProfile::Walking { speed_mps: 1.0 }.to_string(),
            "walking"
        );
    }

    #[test]
    fn tremor_orders_stationary_below_walking() {
        assert!(
            MotionProfile::Stationary.tremor_rad_per_sec()
                < MotionProfile::Walking { speed_mps: 1.4 }.tremor_rad_per_sec()
        );
    }

    #[test]
    fn accel_orders_stationary_below_vehicle() {
        assert!(
            MotionProfile::Stationary.accel_rms()
                < MotionProfile::Vehicle { speed_mps: 10.0 }.accel_rms()
        );
    }

    #[test]
    fn standard_set_has_four_distinct_scenarios() {
        let set = MotionProfile::standard_set();
        let names: Vec<&str> = set.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), 4);
        assert_eq!(names, dedup);
    }

    #[test]
    fn serde_round_trip() {
        let p = MotionProfile::TurnAndLook {
            dwell_secs: 2.0,
            turn_deg: 30.0,
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: MotionProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
