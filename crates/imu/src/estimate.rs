//! On-device motion estimation from raw samples.
//!
//! This is the code a real deployment would run between camera frames: it
//! reduces the IMU window since the previous frame to a single
//! [`MotionEstimate`], whose [`motion_score`](MotionEstimate::motion_score)
//! the [`ImuGate`](crate::ImuGate) thresholds.

use serde::{Deserialize, Serialize};

use crate::sample::ImuSample;

/// Aggregate motion over one inter-frame window.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MotionEstimate {
    /// Integrated rotation magnitude over the window, radians.
    pub rotation_rad: f64,
    /// RMS angular velocity, rad/s.
    pub gyro_rms: f64,
    /// RMS linear acceleration, m/s².
    pub accel_rms: f64,
    /// Window length, seconds.
    pub window_secs: f64,
    /// Number of samples the estimate is based on.
    pub sample_count: usize,
}

impl MotionEstimate {
    /// A single scalar "how much did the view change" score.
    ///
    /// Rotation dominates view change for a handheld camera (a 5° turn
    /// re-frames the scene; 5 cm of translation barely does), so the score
    /// is integrated rotation in degrees plus a translation proxy derived
    /// from acceleration.
    pub fn motion_score(&self) -> f64 {
        let rotation_deg = self.rotation_rad.to_degrees();
        // Double integration of RMS acceleration over the window gives a
        // crude displacement bound: ½·a·t².
        let displacement_proxy_m = 0.5 * self.accel_rms * self.window_secs.powi(2);
        rotation_deg + 20.0 * displacement_proxy_m
    }
}

/// Reduces sample windows to [`MotionEstimate`]s, with optional
/// exponentially weighted smoothing across windows to suppress single-window
/// spikes.
///
/// # Example
///
/// ```
/// use imu::{ImuSample, MotionEstimator};
/// use simcore::SimTime;
///
/// let samples: Vec<ImuSample> = (0..10).map(|i| ImuSample {
///     at: SimTime::from_millis(i * 10),
///     gyro: [0.0, 0.0, 0.1],
///     accel: [0.0; 3],
/// }).collect();
/// let est = MotionEstimator::default().estimate(&samples);
/// assert!(est.rotation_rad > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionEstimator {
    /// EWMA factor in `[0, 1]`: weight given to the *new* window. `1.0`
    /// disables smoothing.
    pub smoothing: f64,
    #[serde(skip)]
    smoothed: Option<MotionEstimate>,
}

impl Default for MotionEstimator {
    fn default() -> Self {
        MotionEstimator {
            smoothing: 1.0,
            smoothed: None,
        }
    }
}

impl MotionEstimator {
    /// Creates an estimator with EWMA smoothing factor `smoothing`.
    ///
    /// # Panics
    ///
    /// Panics if `smoothing` is outside `(0, 1]`.
    pub fn with_smoothing(smoothing: f64) -> MotionEstimator {
        assert!(
            smoothing > 0.0 && smoothing <= 1.0,
            "with_smoothing: smoothing must be in (0, 1], got {smoothing}"
        );
        MotionEstimator {
            smoothing,
            smoothed: None,
        }
    }

    /// Estimates motion over `window` (the samples since the last frame).
    ///
    /// An empty window yields a zero estimate — the gate treats "no
    /// information" as "no movement observed", matching what a real
    /// pipeline does when frames outpace the IMU.
    pub fn estimate(&self, window: &[ImuSample]) -> MotionEstimate {
        if window.is_empty() {
            return MotionEstimate::default();
        }
        let n = window.len() as f64;
        let window_secs = if window.len() >= 2 {
            window
                .last()
                .expect("non-empty")
                .at
                .saturating_duration_since(window[0].at)
                .as_secs_f64()
        } else {
            0.0
        };
        // Per-sample dt for the rotation integral: use the mean spacing.
        let dt = if window.len() >= 2 {
            window_secs / (window.len() - 1) as f64
        } else {
            0.0
        };
        let rotation_rad: f64 = window.iter().map(|s| s.gyro_magnitude() * dt).sum();
        let gyro_rms = (window
            .iter()
            .map(|s| s.gyro_magnitude().powi(2))
            .sum::<f64>()
            / n)
            .sqrt();
        let accel_rms = (window
            .iter()
            .map(|s| s.accel_magnitude().powi(2))
            .sum::<f64>()
            / n)
            .sqrt();
        MotionEstimate {
            rotation_rad,
            gyro_rms,
            accel_rms,
            window_secs,
            sample_count: window.len(),
        }
    }

    /// Estimates and folds into the running EWMA, returning the smoothed
    /// estimate. With `smoothing == 1.0` this is identical to
    /// [`estimate`](Self::estimate).
    pub fn estimate_smoothed(&mut self, window: &[ImuSample]) -> MotionEstimate {
        let raw = self.estimate(window);
        let blended = match self.smoothed {
            None => raw,
            Some(prev) => {
                let a = self.smoothing;
                MotionEstimate {
                    rotation_rad: a * raw.rotation_rad + (1.0 - a) * prev.rotation_rad,
                    gyro_rms: a * raw.gyro_rms + (1.0 - a) * prev.gyro_rms,
                    accel_rms: a * raw.accel_rms + (1.0 - a) * prev.accel_rms,
                    window_secs: raw.window_secs,
                    sample_count: raw.sample_count,
                }
            }
        };
        self.smoothed = Some(blended);
        blended
    }

    /// Clears the smoothing state (e.g. when the app resumes).
    pub fn reset(&mut self) {
        self.smoothed = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::MotionProfile;
    use crate::synth::ImuSynthesizer;
    use crate::trace::MotionTrace;
    use simcore::{SimDuration, SimRng, SimTime};

    fn constant_window(gyro_z: f64, accel_x: f64, count: usize) -> Vec<ImuSample> {
        (0..count)
            .map(|i| ImuSample {
                at: SimTime::from_millis(i as u64 * 10),
                gyro: [0.0, 0.0, gyro_z],
                accel: [accel_x, 0.0, 0.0],
            })
            .collect()
    }

    #[test]
    // Exact comparison is intentional: an empty window is exactly zero.
    #[allow(clippy::float_cmp)]
    fn empty_window_is_zero_motion() {
        let est = MotionEstimator::default().estimate(&[]);
        assert_eq!(est, MotionEstimate::default());
        assert_eq!(est.motion_score(), 0.0);
    }

    #[test]
    fn constant_rotation_integrates_correctly() {
        // 0.5 rad/s over 10 samples spanning 90 ms: the integral counts
        // every sample at the mean spacing (10 ms), so 10·0.5·0.01 rad.
        let est = MotionEstimator::default().estimate(&constant_window(0.5, 0.0, 10));
        assert!(
            (est.rotation_rad - 0.05).abs() < 1e-9,
            "{}",
            est.rotation_rad
        );
        assert!((est.gyro_rms - 0.5).abs() < 1e-9);
        assert_eq!(est.sample_count, 10);
        assert!((est.window_secs - 0.09).abs() < 1e-9);
    }

    #[test]
    fn accel_rms_is_magnitude() {
        let est = MotionEstimator::default().estimate(&constant_window(0.0, 2.0, 5));
        assert!((est.accel_rms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn motion_score_increases_with_rotation_and_accel() {
        let estimator = MotionEstimator::default();
        let still = estimator.estimate(&constant_window(0.0, 0.0, 10));
        let turning = estimator.estimate(&constant_window(1.0, 0.0, 10));
        let shaking = estimator.estimate(&constant_window(0.0, 3.0, 10));
        assert!(still.motion_score() < turning.motion_score());
        assert!(still.motion_score() < shaking.motion_score());
    }

    #[test]
    // Exact comparison is intentional: one sample integrates exactly zero.
    #[allow(clippy::float_cmp)]
    fn single_sample_window_has_zero_duration() {
        let est = MotionEstimator::default().estimate(&constant_window(1.0, 1.0, 1));
        assert_eq!(est.window_secs, 0.0);
        assert_eq!(est.rotation_rad, 0.0);
        assert_eq!(est.sample_count, 1);
    }

    #[test]
    fn smoothing_damps_spikes() {
        let mut estimator = MotionEstimator::with_smoothing(0.5);
        estimator.estimate_smoothed(&constant_window(0.0, 0.0, 10));
        let spiked = estimator.estimate_smoothed(&constant_window(2.0, 0.0, 10));
        let raw = MotionEstimator::default().estimate(&constant_window(2.0, 0.0, 10));
        assert!(spiked.gyro_rms < raw.gyro_rms);
        assert!(spiked.gyro_rms > 0.0);
        estimator.reset();
        let after_reset = estimator.estimate_smoothed(&constant_window(2.0, 0.0, 10));
        assert!((after_reset.gyro_rms - raw.gyro_rms).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "smoothing must be in (0, 1]")]
    fn smoothing_factor_validated() {
        MotionEstimator::with_smoothing(0.0);
    }

    #[test]
    fn motion_score_is_monotone_in_each_axis() {
        // Larger gyro or accel magnitudes never decrease the score.
        let estimator = MotionEstimator::default();
        let mut last_gyro = -1.0f64;
        for step in 0..20 {
            let gyro = step as f64 * 0.1;
            let score = estimator
                .estimate(&constant_window(gyro, 0.0, 10))
                .motion_score();
            assert!(
                score >= last_gyro,
                "gyro step {step}: {score} < {last_gyro}"
            );
            last_gyro = score;
        }
        let mut last_accel = -1.0f64;
        for step in 0..20 {
            let accel = step as f64 * 0.2;
            let score = estimator
                .estimate(&constant_window(0.0, accel, 10))
                .motion_score();
            assert!(
                score >= last_accel,
                "accel step {step}: {score} < {last_accel}"
            );
            last_accel = score;
        }
    }

    #[test]
    fn separates_profiles_end_to_end() {
        // The whole point: stationary windows score far below walking ones.
        let mut rng = SimRng::seed(21);
        let estimator = MotionEstimator::default();
        let mut score = |profile| {
            let trace = MotionTrace::generate(profile, SimDuration::from_secs(5), 100.0, &mut rng);
            let samples = ImuSynthesizer::default().synthesize(&trace, &mut rng);
            // 100 ms windows at 10 fps.
            let mut scores = Vec::new();
            for chunk in samples.chunks(10) {
                scores.push(estimator.estimate(chunk).motion_score());
            }
            scores.iter().sum::<f64>() / scores.len() as f64
        };
        let still = score(MotionProfile::Stationary);
        let pan = score(MotionProfile::SlowPan { deg_per_sec: 10.0 });
        let walk = score(MotionProfile::Walking { speed_mps: 1.4 });
        assert!(still < pan, "still {still} < pan {pan}");
        assert!(pan < walk, "pan {pan} < walk {walk}");
    }
}
