//! Inertial-measurement substrate for approximate caching.
//!
//! The paper's first reuse signal is "the inertial movement of
//! smartphones": when the IMU says the device has not moved since the last
//! frame, the previous recognition result can be reused without touching
//! the camera frame at all, and when it says the device has swung to a new
//! view, a local cache lookup is likely hopeless and can be skipped.
//!
//! This crate provides the full path from *motion* to *decision*:
//!
//! - [`MotionProfile`] — parametric device-motion regimes (stationary,
//!   handheld jitter, slow pan, walking, turn-and-look, vehicle).
//! - [`MotionTrace`] — a ground-truth pose trajectory generated from a
//!   profile; the `scene` crate renders camera frames from the *same*
//!   trace, so synthetic IMU data and synthetic video agree.
//! - [`ImuSynthesizer`] — converts ground-truth motion into noisy 6-axis
//!   samples (gyro + linear accelerometer) with bias and white noise.
//! - [`MotionEstimator`] — what the pipeline runs on-device: integrates a
//!   window of samples into a scalar [`MotionEstimate`].
//! - [`ImuGate`] — the reuse policy: maps an estimate to
//!   [`GateDecision::ReusePrevious`], [`GateDecision::LookupLocal`] or
//!   [`GateDecision::SkipLocal`].
//!
//! # Example
//!
//! ```
//! use imu::{GateDecision, ImuGate, ImuSynthesizer, MotionEstimator, MotionProfile, MotionTrace};
//! use simcore::{SimDuration, SimRng};
//!
//! let mut rng = SimRng::seed(7);
//! let trace = MotionTrace::generate(
//!     MotionProfile::Stationary,
//!     SimDuration::from_secs(2),
//!     100.0,
//!     &mut rng,
//! );
//! let samples = ImuSynthesizer::default().synthesize(&trace, &mut rng);
//! // Estimate over one inter-frame window (100 ms at 100 Hz = 10 samples).
//! let estimate = MotionEstimator::default().estimate(&samples[..10]);
//! let gate = ImuGate::default();
//! assert_eq!(gate.decide(&estimate), GateDecision::ReusePrevious);
//! ```

pub mod activity;
pub mod estimate;
pub mod gate;
pub mod profile;
pub mod sample;
pub mod synth;
pub mod trace;

pub use activity::{Activity, ActivityClassifier};
pub use estimate::{MotionEstimate, MotionEstimator};
pub use gate::{GateDecision, ImuGate};
pub use profile::MotionProfile;
pub use sample::ImuSample;
pub use synth::ImuSynthesizer;
pub use trace::{MotionTrace, Pose};
