//! Ground-truth pose trajectories.
//!
//! A [`MotionTrace`] is the *true* motion of the device, sampled at the IMU
//! rate. Two consumers read it: [`ImuSynthesizer`](crate::ImuSynthesizer)
//! adds sensor noise to produce what the pipeline *measures*, and the
//! `scene` crate renders camera frames from the poses so that synthetic
//! video and synthetic IMU data describe the same physical motion.

use serde::{Deserialize, Serialize};

use simcore::{SimDuration, SimRng, SimTime};

use crate::profile::MotionProfile;

/// The device's pose at one instant: planar position plus orientation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    /// East position, metres.
    pub x: f64,
    /// North position, metres.
    pub y: f64,
    /// Heading, radians (unwrapped — accumulates across full turns).
    pub yaw: f64,
    /// Elevation of the camera axis, radians.
    pub pitch: f64,
}

impl Pose {
    /// Euclidean distance travelled between two poses, metres.
    pub fn distance_to(&self, other: &Pose) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Total angular change between two poses, radians (|Δyaw| + |Δpitch|).
    pub fn angular_change_to(&self, other: &Pose) -> f64 {
        (self.yaw - other.yaw).abs() + (self.pitch - other.pitch).abs()
    }
}

/// A pose trajectory at fixed sample rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotionTrace {
    profile: MotionProfile,
    rate_hz: f64,
    poses: Vec<Pose>,
}

impl MotionTrace {
    /// Generates a trajectory of `duration` under `profile`, sampled at
    /// `rate_hz` (typical smartphone IMU rates are 50–200 Hz).
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz <= 0`, or the combination of duration and rate
    /// yields fewer than two samples.
    pub fn generate(
        profile: MotionProfile,
        duration: SimDuration,
        rate_hz: f64,
        rng: &mut SimRng,
    ) -> MotionTrace {
        assert!(rate_hz > 0.0, "generate: rate_hz must be positive");
        let steps = (duration.as_secs_f64() * rate_hz).ceil() as usize + 1;
        assert!(steps >= 2, "generate: need at least 2 samples, got {steps}");
        let dt = 1.0 / rate_hz;

        let mut poses = Vec::with_capacity(steps);
        let mut pose = Pose::default();
        // Slowly varying wander terms shared by several profiles.
        let mut yaw_wander_rate = 0.0f64;
        // TurnAndLook phase machinery.
        let mut dwell_remaining = match profile {
            MotionProfile::TurnAndLook { dwell_secs, .. } => dwell_secs,
            _ => 0.0,
        };
        let mut turn_remaining_rad = 0.0f64;

        for step in 0..steps {
            poses.push(pose);
            let t = step as f64 * dt;
            match profile {
                MotionProfile::Stationary => {
                    // Pure tremor handled by the synthesizer; true pose
                    // drifts only microscopically.
                    pose.yaw += rng.normal(0.0, 0.02f64.to_radians()) * dt;
                    pose.pitch += rng.normal(0.0, 0.02f64.to_radians()) * dt;
                }
                MotionProfile::HandheldJitter => {
                    // Ornstein–Uhlenbeck wander around the initial heading.
                    yaw_wander_rate +=
                        (-0.8 * yaw_wander_rate + rng.normal(0.0, 2.0f64.to_radians())) * dt;
                    pose.yaw += yaw_wander_rate * dt;
                    pose.pitch += rng.normal(0.0, 0.3f64.to_radians()) * dt;
                }
                MotionProfile::SlowPan { deg_per_sec } => {
                    pose.yaw += deg_per_sec.to_radians() * dt;
                    pose.pitch += rng.normal(0.0, 0.2f64.to_radians()) * dt;
                }
                MotionProfile::Walking { speed_mps } => {
                    // Heading wanders; position integrates heading; gait
                    // bobs pitch at ~2 Hz.
                    yaw_wander_rate +=
                        (-0.5 * yaw_wander_rate + rng.normal(0.0, 6.0f64.to_radians())) * dt;
                    pose.yaw += yaw_wander_rate * dt;
                    pose.x += speed_mps * pose.yaw.cos() * dt;
                    pose.y += speed_mps * pose.yaw.sin() * dt;
                    pose.pitch = 2.0f64.to_radians() * (std::f64::consts::TAU * 2.0 * t).sin();
                }
                MotionProfile::TurnAndLook {
                    dwell_secs,
                    turn_deg,
                } => {
                    if turn_remaining_rad > 0.0 {
                        // Mid-turn: rotate at 120°/s until the turn is done.
                        let step_rad = (120.0f64.to_radians() * dt).min(turn_remaining_rad);
                        pose.yaw += step_rad;
                        turn_remaining_rad -= step_rad;
                        if turn_remaining_rad <= 0.0 {
                            dwell_remaining = dwell_secs;
                        }
                    } else {
                        pose.yaw += rng.normal(0.0, 0.05f64.to_radians()) * dt;
                        dwell_remaining -= dt;
                        if dwell_remaining <= 0.0 {
                            turn_remaining_rad = turn_deg.to_radians();
                        }
                    }
                }
                MotionProfile::Vehicle { speed_mps } => {
                    yaw_wander_rate +=
                        (-yaw_wander_rate + rng.normal(0.0, 1.0f64.to_radians())) * dt;
                    pose.yaw += yaw_wander_rate * dt;
                    pose.x += speed_mps * pose.yaw.cos() * dt;
                    pose.y += speed_mps * pose.yaw.sin() * dt;
                    pose.pitch += rng.normal(0.0, 0.1f64.to_radians()) * dt;
                }
            }
        }
        MotionTrace {
            profile,
            rate_hz,
            poses,
        }
    }

    /// The profile this trace was generated from.
    pub fn profile(&self) -> MotionProfile {
        self.profile
    }

    /// Sample rate in Hz.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// Number of pose samples.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// True if the trace holds no samples (never produced by `generate`).
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// Total trace duration.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs_f64((self.poses.len().saturating_sub(1)) as f64 / self.rate_hz)
    }

    /// The same trajectory rigidly translated by `(dx, dy)` metres —
    /// how a multi-device scenario gives each device its own spawn point
    /// while keeping the shared motion profile. Orientation and timing
    /// are untouched.
    pub fn translated(&self, dx: f64, dy: f64) -> MotionTrace {
        MotionTrace {
            profile: self.profile,
            rate_hz: self.rate_hz,
            poses: self
                .poses
                .iter()
                .map(|p| Pose {
                    x: p.x + dx,
                    y: p.y + dy,
                    ..*p
                })
                .collect(),
        }
    }

    /// The pose samples in time order.
    pub fn poses(&self) -> &[Pose] {
        &self.poses
    }

    /// The pose at simulated time `t`, linearly interpolated between
    /// samples and clamped to the trace's ends.
    pub fn pose_at(&self, t: SimTime) -> Pose {
        let idx_f = t.as_secs_f64() * self.rate_hz;
        let lo = (idx_f.floor() as usize).min(self.poses.len() - 1);
        let hi = (lo + 1).min(self.poses.len() - 1);
        let frac = (idx_f - lo as f64).clamp(0.0, 1.0);
        let a = &self.poses[lo];
        let b = &self.poses[hi];
        Pose {
            x: a.x + (b.x - a.x) * frac,
            y: a.y + (b.y - a.y) * frac,
            yaw: a.yaw + (b.yaw - a.yaw) * frac,
            pitch: a.pitch + (b.pitch - a.pitch) * frac,
        }
    }

    /// The pose samples that fall in the half-open window `(from, to]` —
    /// the window an estimator inspects between two frames.
    pub fn window(&self, from: SimTime, to: SimTime) -> &[Pose] {
        let start =
            ((from.as_secs_f64() * self.rate_hz).floor() as usize + 1).min(self.poses.len());
        let end = ((to.as_secs_f64() * self.rate_hz).floor() as usize + 1).min(self.poses.len());
        &self.poses[start.min(end)..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(profile: MotionProfile, secs: u64) -> MotionTrace {
        let mut rng = SimRng::seed(11);
        MotionTrace::generate(profile, SimDuration::from_secs(secs), 100.0, &mut rng)
    }

    #[test]
    // Exact comparison is intentional: a rigid translation must not
    // perturb any coordinate beyond the added offset.
    #[allow(clippy::float_cmp)]
    fn translated_shifts_positions_only() {
        let t = gen(MotionProfile::Walking { speed_mps: 1.4 }, 2);
        let shifted = t.translated(3.0, -2.0);
        assert_eq!(shifted.poses().len(), t.poses().len());
        assert_eq!(shifted.rate_hz(), t.rate_hz());
        assert_eq!(shifted.profile(), t.profile());
        for (a, b) in t.poses().iter().zip(shifted.poses()) {
            assert_eq!(b.x, a.x + 3.0);
            assert_eq!(b.y, a.y - 2.0);
            assert_eq!(b.yaw, a.yaw);
            assert_eq!(b.pitch, a.pitch);
        }
    }

    #[test]
    // Exact comparison is intentional: the rate accessor round-trips.
    #[allow(clippy::float_cmp)]
    fn sample_count_matches_duration_and_rate() {
        let t = gen(MotionProfile::Stationary, 2);
        assert_eq!(t.len(), 201);
        assert!((t.duration().as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(t.rate_hz(), 100.0);
        assert!(!t.is_empty());
    }

    #[test]
    fn stationary_barely_moves() {
        let t = gen(MotionProfile::Stationary, 10);
        let first = t.poses()[0];
        let last = *t.poses().last().unwrap();
        assert!(first.distance_to(&last) < 0.01);
        assert!(first.angular_change_to(&last) < 0.05);
    }

    #[test]
    fn slow_pan_accumulates_yaw_linearly() {
        let t = gen(MotionProfile::SlowPan { deg_per_sec: 10.0 }, 9);
        let total_yaw = t.poses().last().unwrap().yaw - t.poses()[0].yaw;
        assert!(
            (total_yaw.to_degrees() - 90.0).abs() < 5.0,
            "yaw {total_yaw}"
        );
    }

    #[test]
    fn walking_covers_distance() {
        let t = gen(MotionProfile::Walking { speed_mps: 1.4 }, 10);
        let dist = t.poses()[0].distance_to(t.poses().last().unwrap());
        // Wandering heading means net displacement ≤ path length (14 m)
        // but a walker still gets well away from the start.
        assert!(dist > 3.0, "dist {dist}");
        assert!(dist <= 14.5, "dist {dist}");
    }

    #[test]
    fn turn_and_look_alternates_phases() {
        let t = gen(
            MotionProfile::TurnAndLook {
                dwell_secs: 2.0,
                turn_deg: 45.0,
            },
            9,
        );
        // Roughly: dwell 2 s, turn 0.375 s, … over 9 s ≈ 3–4 turns.
        let total_yaw_deg = (t.poses().last().unwrap().yaw - t.poses()[0].yaw).to_degrees();
        assert!(total_yaw_deg > 90.0, "total yaw {total_yaw_deg}");
        assert!(total_yaw_deg < 225.0, "total yaw {total_yaw_deg}");
    }

    #[test]
    fn vehicle_travels_fast_and_straight() {
        let t = gen(MotionProfile::Vehicle { speed_mps: 10.0 }, 10);
        let dist = t.poses()[0].distance_to(t.poses().last().unwrap());
        assert!(dist > 80.0, "dist {dist}");
    }

    #[test]
    fn pose_at_interpolates_and_clamps() {
        let t = gen(MotionProfile::SlowPan { deg_per_sec: 10.0 }, 2);
        let p0 = t.pose_at(SimTime::ZERO);
        assert_eq!(p0, t.poses()[0]);
        let beyond = t.pose_at(SimTime::from_secs(100));
        assert_eq!(beyond, *t.poses().last().unwrap());
        let mid = t.pose_at(SimTime::from_millis(1_000));
        assert!((mid.yaw.to_degrees() - 10.0).abs() < 2.0);
    }

    #[test]
    fn window_selects_half_open_interval() {
        let t = gen(MotionProfile::Stationary, 1);
        // (0, 0.1] at 100 Hz → samples 1..=10.
        let w = t.window(SimTime::ZERO, SimTime::from_millis(100));
        assert_eq!(w.len(), 10);
        // Empty window.
        let w2 = t.window(SimTime::from_millis(500), SimTime::from_millis(500));
        assert!(w2.is_empty());
        // Window past the end clamps.
        let w3 = t.window(SimTime::from_millis(900), SimTime::from_secs(5));
        assert!(w3.len() <= t.len());
    }

    #[test]
    fn determinism_per_seed() {
        let mut r1 = SimRng::seed(3);
        let mut r2 = SimRng::seed(3);
        let a = MotionTrace::generate(
            MotionProfile::Walking { speed_mps: 1.0 },
            SimDuration::from_secs(1),
            50.0,
            &mut r1,
        );
        let b = MotionTrace::generate(
            MotionProfile::Walking { speed_mps: 1.0 },
            SimDuration::from_secs(1),
            50.0,
            &mut r2,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate_hz must be positive")]
    fn rejects_zero_rate() {
        let mut rng = SimRng::seed(0);
        MotionTrace::generate(
            MotionProfile::Stationary,
            SimDuration::from_secs(1),
            0.0,
            &mut rng,
        );
    }
}
