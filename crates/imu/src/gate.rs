//! The inertial reuse gate.
//!
//! Given a [`MotionEstimate`] for the window since the previous frame, the
//! gate picks one of three actions *before any image work happens*:
//!
//! - [`GateDecision::ReusePrevious`] — the device has barely moved; the
//!   previous frame's recognition result is almost certainly still valid,
//!   so return it without even extracting features (~zero cost).
//! - [`GateDecision::LookupLocal`] — moderate motion; the view changed,
//!   but plausibly onto something seen recently, so run the approximate
//!   cache lookup.
//! - [`GateDecision::SkipLocal`] — violent motion; the local lookup is
//!   near-certain to miss, so skip straight to peers / full inference and
//!   save the lookup cost.

use serde::{Deserialize, Serialize};

use simcore::SimDuration;

use crate::estimate::MotionEstimate;

/// What the pipeline should do with the current frame, decided from IMU
/// data alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateDecision {
    /// Return the previous frame's result without any image processing.
    ReusePrevious,
    /// Extract features and query the local approximate cache.
    LookupLocal,
    /// Skip the local lookup (the view moved too far) and fall through to
    /// the next tier (peers, then full inference).
    SkipLocal,
}

impl std::fmt::Display for GateDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GateDecision::ReusePrevious => "reuse-previous",
            GateDecision::LookupLocal => "lookup-local",
            GateDecision::SkipLocal => "skip-local",
        };
        f.write_str(s)
    }
}

/// Threshold policy mapping motion scores to decisions.
///
/// The two thresholds partition the score axis:
/// `score < still_threshold` → reuse; `score > skip_threshold` → skip;
/// otherwise → lookup. [`max_reuse_age`](ImuGate::max_reuse_age) bounds how
/// long the fast path may keep echoing one result even if the device never
/// moves, so scene changes under a stationary camera are eventually
/// noticed.
///
/// # Example
///
/// ```
/// use imu::{GateDecision, ImuGate, MotionEstimate};
///
/// let gate = ImuGate::default();
/// let still = MotionEstimate::default(); // zero motion
/// assert_eq!(gate.decide(&still), GateDecision::ReusePrevious);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuGate {
    /// Scores below this (degrees-of-view-change equivalent) take the
    /// reuse-previous fast path.
    pub still_threshold: f64,
    /// Scores above this skip the local lookup entirely.
    pub skip_threshold: f64,
    /// Maximum age of the previous result for the fast path to fire.
    pub max_reuse_age: SimDuration,
}

impl Default for ImuGate {
    fn default() -> Self {
        ImuGate {
            still_threshold: 1.0,
            skip_threshold: 25.0,
            max_reuse_age: SimDuration::from_millis(2_000),
        }
    }
}

impl ImuGate {
    /// Creates a gate with explicit thresholds and the default reuse age.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= still_threshold <= skip_threshold`.
    pub fn new(still_threshold: f64, skip_threshold: f64) -> ImuGate {
        assert!(
            still_threshold >= 0.0 && still_threshold <= skip_threshold,
            "ImuGate: need 0 <= still ({still_threshold}) <= skip ({skip_threshold})"
        );
        ImuGate {
            still_threshold,
            skip_threshold,
            max_reuse_age: ImuGate::default().max_reuse_age,
        }
    }

    /// A gate that never takes the fast path and never skips — disables
    /// the IMU mechanism (used by the no-IMU ablation).
    pub fn disabled() -> ImuGate {
        ImuGate {
            still_threshold: 0.0,
            skip_threshold: f64::INFINITY,
            max_reuse_age: SimDuration::ZERO,
        }
    }

    /// Decision from motion alone (assumes the previous result is fresh).
    pub fn decide(&self, estimate: &MotionEstimate) -> GateDecision {
        let score = estimate.motion_score();
        if score < self.still_threshold {
            GateDecision::ReusePrevious
        } else if score > self.skip_threshold {
            GateDecision::SkipLocal
        } else {
            GateDecision::LookupLocal
        }
    }

    /// Decision taking the previous result's age into account: the fast
    /// path additionally requires `previous_age <= max_reuse_age` (and that
    /// a previous result exists at all).
    pub fn decide_with_age(
        &self,
        estimate: &MotionEstimate,
        previous_age: Option<SimDuration>,
    ) -> GateDecision {
        match self.decide(estimate) {
            GateDecision::ReusePrevious => match previous_age {
                Some(age) if age <= self.max_reuse_age => GateDecision::ReusePrevious,
                _ => GateDecision::LookupLocal,
            },
            other => other,
        }
    }

    /// The full production decision rule. The fast path requires the
    /// *cumulative* motion since the previous result was validated to stay
    /// below the still threshold — a device that turned 45° and stopped is
    /// instantaneously still, but its previous result describes a view 45°
    /// away and must not be echoed. The skip decision remains based on
    /// instantaneous motion (is the camera swinging *right now*?).
    ///
    /// `cumulative_motion` is the sum of per-window motion scores since
    /// the last validated (non-fast-path) result; `previous_age` is the
    /// time since that result, or `None` if there is none.
    pub fn decide_with_history(
        &self,
        estimate: &MotionEstimate,
        cumulative_motion: f64,
        previous_age: Option<SimDuration>,
    ) -> GateDecision {
        let instantaneous = estimate.motion_score();
        if instantaneous > self.skip_threshold {
            return GateDecision::SkipLocal;
        }
        let fresh = matches!(previous_age, Some(age) if age <= self.max_reuse_age);
        if fresh && cumulative_motion < self.still_threshold {
            GateDecision::ReusePrevious
        } else {
            GateDecision::LookupLocal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate_with_score(rotation_deg: f64) -> MotionEstimate {
        MotionEstimate {
            rotation_rad: rotation_deg.to_radians(),
            ..MotionEstimate::default()
        }
    }

    #[test]
    fn partitions_score_axis() {
        let gate = ImuGate::new(1.0, 20.0);
        assert_eq!(
            gate.decide(&estimate_with_score(0.5)),
            GateDecision::ReusePrevious
        );
        assert_eq!(
            gate.decide(&estimate_with_score(5.0)),
            GateDecision::LookupLocal
        );
        assert_eq!(
            gate.decide(&estimate_with_score(30.0)),
            GateDecision::SkipLocal
        );
    }

    #[test]
    fn boundaries_go_to_lookup() {
        let gate = ImuGate::new(1.0, 20.0);
        assert_eq!(
            gate.decide(&estimate_with_score(1.0)),
            GateDecision::LookupLocal
        );
        assert_eq!(
            gate.decide(&estimate_with_score(20.0)),
            GateDecision::LookupLocal
        );
    }

    #[test]
    fn stale_previous_result_demotes_fast_path() {
        let gate = ImuGate::default();
        let still = estimate_with_score(0.0);
        assert_eq!(
            gate.decide_with_age(&still, Some(SimDuration::from_millis(100))),
            GateDecision::ReusePrevious
        );
        assert_eq!(
            gate.decide_with_age(&still, Some(SimDuration::from_secs(10))),
            GateDecision::LookupLocal
        );
        assert_eq!(
            gate.decide_with_age(&still, None),
            GateDecision::LookupLocal
        );
    }

    #[test]
    fn age_does_not_affect_other_decisions() {
        let gate = ImuGate::new(1.0, 20.0);
        let skip = estimate_with_score(50.0);
        assert_eq!(
            gate.decide_with_age(&skip, Some(SimDuration::ZERO)),
            GateDecision::SkipLocal
        );
    }

    #[test]
    fn disabled_gate_always_looks_up() {
        let gate = ImuGate::disabled();
        assert_eq!(
            gate.decide_with_age(&estimate_with_score(0.0), Some(SimDuration::ZERO)),
            GateDecision::LookupLocal
        );
        assert_eq!(
            gate.decide(&estimate_with_score(1e9)),
            GateDecision::LookupLocal
        );
    }

    #[test]
    #[should_panic(expected = "need 0 <= still")]
    fn constructor_validates_ordering() {
        ImuGate::new(5.0, 1.0);
    }

    #[test]
    fn history_rule_blocks_turned_and_stopped_reuse() {
        // Device turned 45° (cumulative) then froze (instantaneous ≈ 0):
        // the previous result describes the old view and must not be
        // echoed.
        let gate = ImuGate::default();
        let still = estimate_with_score(0.1);
        let fresh = Some(SimDuration::from_millis(100));
        assert_eq!(
            gate.decide_with_history(&still, 45.0, fresh),
            GateDecision::LookupLocal
        );
        // Genuinely unmoved since validation: fast path.
        assert_eq!(
            gate.decide_with_history(&still, 0.3, fresh),
            GateDecision::ReusePrevious
        );
    }

    #[test]
    fn history_rule_still_skips_on_violent_instantaneous_motion() {
        let gate = ImuGate::default();
        let swinging = estimate_with_score(50.0);
        assert_eq!(
            gate.decide_with_history(&swinging, 0.0, Some(SimDuration::ZERO)),
            GateDecision::SkipLocal
        );
    }

    #[test]
    fn history_rule_respects_age_and_absence() {
        let gate = ImuGate::default();
        let still = estimate_with_score(0.0);
        assert_eq!(
            gate.decide_with_history(&still, 0.0, None),
            GateDecision::LookupLocal
        );
        assert_eq!(
            gate.decide_with_history(&still, 0.0, Some(SimDuration::from_secs(60))),
            GateDecision::LookupLocal
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(GateDecision::ReusePrevious.to_string(), "reuse-previous");
        assert_eq!(GateDecision::LookupLocal.to_string(), "lookup-local");
        assert_eq!(GateDecision::SkipLocal.to_string(), "skip-local");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every score maps to exactly one decision and the mapping is
        /// monotone: raising the score never moves the decision "backwards"
        /// (reuse < lookup < skip).
        #[test]
        fn decision_is_monotone_in_score(
            a in 0.0f64..100.0,
            b in 0.0f64..100.0,
            still in 0.0f64..10.0,
            extra in 0.0f64..50.0,
        ) {
            fn rank(d: GateDecision) -> u8 {
                match d {
                    GateDecision::ReusePrevious => 0,
                    GateDecision::LookupLocal => 1,
                    GateDecision::SkipLocal => 2,
                }
            }
            let gate = ImuGate::new(still, still + extra);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let lo_est = MotionEstimate { rotation_rad: lo.to_radians(), ..Default::default() };
            let hi_est = MotionEstimate { rotation_rad: hi.to_radians(), ..Default::default() };
            prop_assert!(rank(gate.decide(&lo_est)) <= rank(gate.decide(&hi_est)));
        }
    }
}
