//! Sensor-noise synthesis: ground truth → what the IMU actually reports.

use serde::{Deserialize, Serialize};

use simcore::{SimRng, SimTime};

use crate::sample::ImuSample;
use crate::trace::MotionTrace;

/// Converts a ground-truth [`MotionTrace`] into noisy [`ImuSample`]s.
///
/// The noise model is the standard consumer-MEMS one: additive white noise
/// per axis plus a slowly drifting bias (random walk). Defaults match a
/// mid-range smartphone IMU (e.g. Bosch BMI160-class parts).
///
/// # Example
///
/// ```
/// use imu::{ImuSynthesizer, MotionProfile, MotionTrace};
/// use simcore::{SimDuration, SimRng};
///
/// let mut rng = SimRng::seed(1);
/// let trace = MotionTrace::generate(
///     MotionProfile::Stationary, SimDuration::from_secs(1), 100.0, &mut rng);
/// let samples = ImuSynthesizer::default().synthesize(&trace, &mut rng);
/// assert_eq!(samples.len(), trace.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuSynthesizer {
    /// Gyroscope white-noise standard deviation, rad/s per axis.
    pub gyro_noise: f64,
    /// Gyroscope bias random-walk step, rad/s per √sample.
    pub gyro_bias_walk: f64,
    /// Accelerometer white-noise standard deviation, m/s² per axis.
    pub accel_noise: f64,
    /// Accelerometer bias random-walk step, m/s² per √sample.
    pub accel_bias_walk: f64,
}

impl Default for ImuSynthesizer {
    fn default() -> Self {
        ImuSynthesizer {
            gyro_noise: 0.005,
            gyro_bias_walk: 1e-5,
            accel_noise: 0.03,
            accel_bias_walk: 1e-4,
        }
    }
}

impl ImuSynthesizer {
    /// A noiseless synthesizer — useful for isolating estimator behaviour
    /// in tests.
    pub fn noiseless() -> Self {
        ImuSynthesizer {
            gyro_noise: 0.0,
            gyro_bias_walk: 0.0,
            accel_noise: 0.0,
            accel_bias_walk: 0.0,
        }
    }

    /// Produces one noisy sample per trace pose.
    ///
    /// True angular velocity is differenced from consecutive poses (yaw
    /// about z, pitch about y); true linear acceleration is the second
    /// difference of position plus the profile's residual-acceleration
    /// magnitude injected as body vibration.
    pub fn synthesize(&self, trace: &MotionTrace, rng: &mut SimRng) -> Vec<ImuSample> {
        let dt = 1.0 / trace.rate_hz();
        let poses = trace.poses();
        let vibration = trace.profile().accel_rms();
        let tremor = trace.profile().tremor_rad_per_sec();
        let mut gyro_bias = [0.0f64; 3];
        let mut accel_bias = [0.0f64; 3];
        let mut out = Vec::with_capacity(poses.len());

        for (i, _pose) in poses.iter().enumerate() {
            // True rates from central/one-sided differences.
            let (yaw_rate, pitch_rate) = if i == 0 {
                (0.0, 0.0)
            } else {
                (
                    (poses[i].yaw - poses[i - 1].yaw) / dt,
                    (poses[i].pitch - poses[i - 1].pitch) / dt,
                )
            };
            let (ax, ay) = if i < 2 {
                (0.0, 0.0)
            } else {
                let vx1 = (poses[i].x - poses[i - 1].x) / dt;
                let vx0 = (poses[i - 1].x - poses[i - 2].x) / dt;
                let vy1 = (poses[i].y - poses[i - 1].y) / dt;
                let vy0 = (poses[i - 1].y - poses[i - 2].y) / dt;
                ((vx1 - vx0) / dt, (vy1 - vy0) / dt)
            };

            for b in &mut gyro_bias {
                *b += rng.normal(0.0, self.gyro_bias_walk);
            }
            for b in &mut accel_bias {
                *b += rng.normal(0.0, self.accel_bias_walk);
            }

            let gyro = [
                gyro_bias[0] + rng.normal(0.0, self.gyro_noise) + rng.normal(0.0, tremor),
                pitch_rate
                    + gyro_bias[1]
                    + rng.normal(0.0, self.gyro_noise)
                    + rng.normal(0.0, tremor),
                yaw_rate + gyro_bias[2] + rng.normal(0.0, self.gyro_noise),
            ];
            let accel = [
                ax + accel_bias[0] + rng.normal(0.0, self.accel_noise) + rng.normal(0.0, vibration),
                ay + accel_bias[1] + rng.normal(0.0, self.accel_noise) + rng.normal(0.0, vibration),
                accel_bias[2] + rng.normal(0.0, self.accel_noise) + rng.normal(0.0, vibration),
            ];

            out.push(ImuSample {
                at: SimTime::from_nanos((i as f64 * dt * 1e9).round() as u64),
                gyro,
                accel,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::MotionProfile;
    use simcore::SimDuration;

    fn synth(profile: MotionProfile, noiseless: bool) -> Vec<ImuSample> {
        let mut rng = SimRng::seed(5);
        let trace = MotionTrace::generate(profile, SimDuration::from_secs(4), 100.0, &mut rng);
        let s = if noiseless {
            ImuSynthesizer::noiseless()
        } else {
            ImuSynthesizer::default()
        };
        s.synthesize(&trace, &mut rng)
    }

    fn mean_gyro_mag(samples: &[ImuSample]) -> f64 {
        samples.iter().map(|s| s.gyro_magnitude()).sum::<f64>() / samples.len() as f64
    }

    fn mean_accel_mag(samples: &[ImuSample]) -> f64 {
        samples.iter().map(|s| s.accel_magnitude()).sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn one_sample_per_pose_with_monotone_timestamps() {
        let samples = synth(MotionProfile::Stationary, false);
        assert_eq!(samples.len(), 401);
        for w in samples.windows(2) {
            assert!(w[1].at > w[0].at);
        }
    }

    #[test]
    fn noiseless_slow_pan_recovers_true_yaw_rate() {
        let samples = synth(MotionProfile::SlowPan { deg_per_sec: 20.0 }, true);
        // Skip the zero-rate first sample; tremor is injected even in
        // "noiseless" mode only via profile? No: noiseless() zeroes sensor
        // noise but the synthesize() call still adds profile tremor to x/y
        // gyro axes, so check the z axis, which carries yaw.
        let mean_z: f64 =
            samples[1..].iter().map(|s| s.gyro[2]).sum::<f64>() / (samples.len() - 1) as f64;
        assert!(
            (mean_z.to_degrees() - 20.0).abs() < 1.0,
            "mean yaw rate {} deg/s",
            mean_z.to_degrees()
        );
    }

    #[test]
    fn walking_is_noisier_than_stationary() {
        let still = synth(MotionProfile::Stationary, false);
        let walk = synth(MotionProfile::Walking { speed_mps: 1.4 }, false);
        assert!(mean_gyro_mag(&walk) > 3.0 * mean_gyro_mag(&still));
        assert!(mean_accel_mag(&walk) > 3.0 * mean_accel_mag(&still));
    }

    #[test]
    fn stationary_noise_floor_is_small() {
        let still = synth(MotionProfile::Stationary, false);
        assert!(
            mean_gyro_mag(&still) < 0.05,
            "gyro {}",
            mean_gyro_mag(&still)
        );
        assert!(
            mean_accel_mag(&still) < 0.2,
            "accel {}",
            mean_accel_mag(&still)
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = synth(MotionProfile::HandheldJitter, false);
        let b = synth(MotionProfile::HandheldJitter, false);
        assert_eq!(a, b);
    }
}
