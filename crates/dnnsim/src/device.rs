//! Smartphone device classes.

use serde::{Deserialize, Serialize};

/// The class of phone a model runs on: scales both latency and power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Current-generation flagship SoC (fast big cores, NPU offload).
    Flagship,
    /// Mid-range SoC — the calibration reference (multiplier 1.0).
    #[default]
    MidRange,
    /// Entry-level SoC: slow cores, aggressive thermal limits.
    Budget,
}

impl DeviceClass {
    /// Latency multiplier relative to the mid-range reference.
    pub fn latency_factor(self) -> f64 {
        match self {
            DeviceClass::Flagship => 0.45,
            DeviceClass::MidRange => 1.0,
            DeviceClass::Budget => 2.2,
        }
    }

    /// Power multiplier relative to the mid-range reference (flagships
    /// finish sooner but draw more while running).
    pub fn power_factor(self) -> f64 {
        match self {
            DeviceClass::Flagship => 1.3,
            DeviceClass::MidRange => 1.0,
            DeviceClass::Budget => 0.8,
        }
    }

    /// Stable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::Flagship => "flagship",
            DeviceClass::MidRange => "mid-range",
            DeviceClass::Budget => "budget",
        }
    }

    /// All classes, fastest first.
    pub fn all() -> [DeviceClass; 3] {
        [
            DeviceClass::Flagship,
            DeviceClass::MidRange,
            DeviceClass::Budget,
        ]
    }
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering_flagship_fastest() {
        let all = DeviceClass::all();
        for w in all.windows(2) {
            assert!(w[0].latency_factor() < w[1].latency_factor());
        }
        assert_eq!(DeviceClass::MidRange.latency_factor(), 1.0);
    }

    #[test]
    fn energy_per_inference_still_favours_flagship() {
        // Energy ∝ latency_factor × power_factor: racing to idle wins.
        let flagship =
            DeviceClass::Flagship.latency_factor() * DeviceClass::Flagship.power_factor();
        let budget = DeviceClass::Budget.latency_factor() * DeviceClass::Budget.power_factor();
        assert!(flagship < budget);
    }

    #[test]
    fn names_and_default() {
        assert_eq!(DeviceClass::default(), DeviceClass::MidRange);
        assert_eq!(DeviceClass::Flagship.to_string(), "flagship");
        assert_eq!(DeviceClass::Budget.name(), "budget");
    }
}
