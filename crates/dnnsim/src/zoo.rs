//! The model zoo: published mobile profiles of common recognition nets.
//!
//! Latency numbers are single-threaded CPU inference on a mid-range
//! smartphone SoC (Snapdragon 6-series class), in line with the ranges
//! reported by the TensorFlow-Lite model benchmarks and the MobileNet /
//! ResNet / Inception papers; top-1 accuracies are the ImageNet numbers of
//! the corresponding reference models. Absolute values matter less than
//! their *ratios* — the cache's speedup is relative.

use serde::{Deserialize, Serialize};

use simcore::units::Millis;

/// Static cost/quality profile of one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Short identifier used in tables (`mobilenet_v2`, …).
    pub name: &'static str,
    /// Mean inference latency on a mid-range device.
    #[serde(rename = "base_latency_ms")]
    pub base_latency: Millis,
    /// Log-normal sigma of latency variation (run-to-run jitter).
    pub latency_sigma: f64,
    /// Probability a given inference hits a thermal-throttle tail.
    pub throttle_prob: f64,
    /// Latency multiplier when throttled.
    pub throttle_factor: f64,
    /// ImageNet-style top-1 accuracy in `[0, 1]`.
    pub top1_accuracy: f64,
    /// Average SoC power draw during inference, watts.
    pub inference_power_w: f64,
}

impl ModelProfile {
    /// The int8 post-training-quantized variant of this model: roughly
    /// 2–3× faster and slightly less accurate, matching published
    /// TensorFlow-Lite quantization results (≈0.5–2 pp top-1 drop,
    /// 2.5–3× CPU speedup). Quantization is the *other* standard answer
    /// to mobile inference cost; the quantization experiment shows the
    /// two techniques compose rather than compete.
    pub fn quantized(&self) -> ModelProfile {
        ModelProfile {
            name: match self.name {
                "mobilenet_v2" => "mobilenet_v2_int8",
                "squeezenet" => "squeezenet_int8",
                "resnet50" => "resnet50_int8",
                "inception_v3" => "inception_v3_int8",
                _ => "quantized",
            },
            base_latency: self.base_latency / 2.6,
            top1_accuracy: (self.top1_accuracy - 0.012).max(0.0),
            inference_power_w: self.inference_power_w * 0.9,
            ..*self
        }
    }

    /// Validates the profile's ranges.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range.
    pub fn validate(&self) {
        assert!(
            !self.name.is_empty(),
            "ModelProfile: name must be non-empty"
        );
        assert!(
            self.base_latency > Millis::ZERO && self.base_latency.value().is_finite(),
            "ModelProfile: base_latency must be positive"
        );
        assert!(
            self.latency_sigma >= 0.0 && self.latency_sigma.is_finite(),
            "ModelProfile: latency_sigma must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.throttle_prob),
            "ModelProfile: throttle_prob must be in [0, 1]"
        );
        assert!(
            self.throttle_factor >= 1.0,
            "ModelProfile: throttle_factor must be >= 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.top1_accuracy),
            "ModelProfile: top1_accuracy must be in [0, 1]"
        );
        assert!(
            self.inference_power_w > 0.0,
            "ModelProfile: inference_power_w must be positive"
        );
    }
}

impl std::fmt::Display for ModelProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({:.0} ms, top-1 {:.1}%)",
            self.name,
            self.base_latency.value(),
            self.top1_accuracy * 100.0
        )
    }
}

/// MobileNetV2: the paper's "standard mobile neural network".
pub fn mobilenet_v2() -> ModelProfile {
    ModelProfile {
        name: "mobilenet_v2",
        base_latency: Millis::new(75.0),
        latency_sigma: 0.10,
        throttle_prob: 0.02,
        throttle_factor: 2.5,
        top1_accuracy: 0.718,
        inference_power_w: 2.2,
    }
}

/// SqueezeNet 1.1: the fastest, least accurate option.
pub fn squeezenet() -> ModelProfile {
    ModelProfile {
        name: "squeezenet",
        base_latency: Millis::new(45.0),
        latency_sigma: 0.10,
        throttle_prob: 0.02,
        throttle_factor: 2.5,
        top1_accuracy: 0.585,
        inference_power_w: 2.0,
    }
}

/// ResNet-50: a heavyweight server-class net pushed onto the phone.
pub fn resnet50() -> ModelProfile {
    ModelProfile {
        name: "resnet50",
        base_latency: Millis::new(380.0),
        latency_sigma: 0.12,
        throttle_prob: 0.05,
        throttle_factor: 2.0,
        top1_accuracy: 0.761,
        inference_power_w: 3.2,
    }
}

/// InceptionV3: the slowest, most accurate model in the zoo.
pub fn inception_v3() -> ModelProfile {
    ModelProfile {
        name: "inception_v3",
        base_latency: Millis::new(620.0),
        latency_sigma: 0.12,
        throttle_prob: 0.05,
        throttle_factor: 2.0,
        top1_accuracy: 0.772,
        inference_power_w: 3.4,
    }
}

/// Every profile in the zoo, fastest first — the sweep order of the
/// model-zoo experiment.
pub fn all() -> Vec<ModelProfile> {
    vec![squeezenet(), mobilenet_v2(), resnet50(), inception_v3()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for p in all() {
            p.validate();
        }
    }

    #[test]
    fn zoo_ordering_fastest_first() {
        let zoo = all();
        for w in zoo.windows(2) {
            assert!(w[0].base_latency <= w[1].base_latency);
        }
    }

    #[test]
    fn accuracy_latency_tradeoff_holds() {
        // Slower nets in the zoo are more accurate (the reason anyone runs
        // them on a phone at all).
        let zoo = all();
        for w in zoo.windows(2) {
            assert!(w[0].top1_accuracy <= w[1].top1_accuracy);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn quantized_variant_trades_accuracy_for_speed() {
        for base in all() {
            let q = base.quantized();
            q.validate();
            assert!(q.base_latency < base.base_latency / 2.0, "{}", base.name);
            assert!(q.top1_accuracy < base.top1_accuracy);
            assert!(q.top1_accuracy > base.top1_accuracy - 0.02);
            assert!(q.name.ends_with("_int8"), "{}", q.name);
            assert!(q.inference_power_w < base.inference_power_w);
        }
    }

    #[test]
    fn display_mentions_name_and_latency() {
        let s = mobilenet_v2().to_string();
        assert!(s.contains("mobilenet_v2"));
        assert!(s.contains("75 ms"));
    }

    #[test]
    #[should_panic(expected = "base_latency must be positive")]
    fn validate_rejects_zero_latency() {
        ModelProfile {
            base_latency: Millis::new(0.0),
            ..mobilenet_v2()
        }
        .validate();
    }
}
