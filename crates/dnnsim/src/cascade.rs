//! Two-stage inference cascades ("big/little" models).
//!
//! The other classic mobile-inference optimization besides quantization:
//! run a small network first and only escalate to the large one when the
//! small network is unsure. The cascade's expected latency is
//! `lat_small + P(escalate) · lat_large`, trading the big model's
//! accuracy ceiling against the small model's speed on easy inputs.
//! Cache + cascade compose naturally: the cache absorbs repeats, the
//! cascade cheapens the misses.

use features::FeatureVector;
use scene::ClassUniverse;
use simcore::units::Millis;
use simcore::SimRng;

use crate::device::DeviceClass;
use crate::zoo::ModelProfile;
use crate::{DnnModel, Inference};

/// A two-stage cascade: `little` answers when confident, otherwise `big`
/// runs as well (both costs are paid on escalation, as on real devices).
#[derive(Debug, Clone)]
pub struct CascadeModel {
    little: DnnModel,
    big: DnnModel,
    /// Escalate when the little model's confidence is below this.
    escalation_threshold: f64,
}

impl CascadeModel {
    /// Builds a cascade of two profiles on one device.
    ///
    /// # Panics
    ///
    /// Panics if `escalation_threshold` is outside `[0, 1]` or `little`
    /// is not actually faster than `big`.
    pub fn new(
        little: ModelProfile,
        big: ModelProfile,
        escalation_threshold: f64,
        device: DeviceClass,
        universe: &ClassUniverse,
    ) -> CascadeModel {
        assert!(
            (0.0..=1.0).contains(&escalation_threshold),
            "CascadeModel: escalation_threshold must be in [0, 1]"
        );
        assert!(
            little.base_latency < big.base_latency,
            "CascadeModel: little ({}) must be faster than big ({})",
            little.name,
            big.name
        );
        CascadeModel {
            little: DnnModel::new(little, device, universe),
            big: DnnModel::new(big, device, universe),
            escalation_threshold,
        }
    }

    /// The little model.
    pub fn little(&self) -> &DnnModel {
        &self.little
    }

    /// The big model.
    pub fn big(&self) -> &DnnModel {
        &self.big
    }

    /// Runs the cascade on `descriptor`. The returned inference carries
    /// the summed latency and energy of every stage that ran.
    pub fn infer(&self, descriptor: &FeatureVector, rng: &mut SimRng) -> Inference {
        let first = self.little.infer(descriptor, rng);
        if first.confidence >= self.escalation_threshold {
            return first;
        }
        let second = self.big.infer(descriptor, rng);
        Inference {
            label: second.label,
            confidence: second.confidence,
            latency: first.latency + second.latency,
            energy: first.energy + second.energy,
        }
    }

    /// The long-run expected latency for an escalation probability `p`.
    pub fn expected_latency(&self, escalation_prob: f64) -> Millis {
        Millis::from_duration(self.little.nominal_latency())
            + Millis::from_duration(self.big.nominal_latency()) * escalation_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use scene::{ClassId, SceneConfig};

    fn fixture() -> (ClassUniverse, CascadeModel, SimRng) {
        let mut rng = SimRng::seed(1);
        let universe = ClassUniverse::generate(&SceneConfig::default(), &mut rng);
        let cascade = CascadeModel::new(
            zoo::squeezenet(),
            zoo::inception_v3(),
            0.8,
            DeviceClass::MidRange,
            &universe,
        );
        (universe, cascade, rng)
    }

    #[test]
    fn confident_little_answers_alone() {
        let (universe, cascade, mut rng) = fixture();
        // Measure: confident answers must cost only the little model.
        let mut little_only = 0;
        let mut escalated = 0;
        for i in 0..500 {
            let truth = ClassId((i % universe.len()) as u32);
            let result = cascade.infer(universe.center(truth), &mut rng);
            if result.latency.as_millis_f64() < 200.0 {
                little_only += 1;
            } else {
                escalated += 1;
            }
        }
        assert!(little_only > 200, "little answered only {little_only}");
        assert!(escalated > 100, "escalations {escalated}");
    }

    #[test]
    fn cascade_beats_big_alone_on_latency_and_little_on_accuracy() {
        let (universe, cascade, mut rng) = fixture();
        let big = DnnModel::new(zoo::inception_v3(), DeviceClass::MidRange, &universe);
        let little = DnnModel::new(zoo::squeezenet(), DeviceClass::MidRange, &universe);
        let trials = 2_000;
        let mut totals = (0.0f64, 0.0f64, 0.0f64); // cascade, big, little latency
        let mut correct = (0usize, 0usize, 0usize);
        for i in 0..trials {
            let truth = ClassId((i % universe.len()) as u32);
            let d = universe.center(truth);
            let c = cascade.infer(d, &mut rng);
            let b = big.infer(d, &mut rng);
            let l = little.infer(d, &mut rng);
            totals.0 += c.latency.as_millis_f64();
            totals.1 += b.latency.as_millis_f64();
            totals.2 += l.latency.as_millis_f64();
            correct.0 += (c.label == truth) as usize;
            correct.1 += (b.label == truth) as usize;
            correct.2 += (l.label == truth) as usize;
        }
        assert!(
            totals.0 < totals.1 * 0.75,
            "cascade {:.0} !< big {:.0}",
            totals.0,
            totals.1
        );
        assert!(
            correct.0 > correct.2,
            "cascade accuracy {} !> little {}",
            correct.0,
            correct.2
        );
    }

    #[test]
    fn escalation_sums_both_stages() {
        let (universe, cascade, _) = fixture();
        // Force the worst case with threshold 1.0: everything escalates.
        let mut rng = SimRng::seed(2);
        let always = CascadeModel::new(
            zoo::squeezenet(),
            zoo::inception_v3(),
            1.0,
            DeviceClass::MidRange,
            &universe,
        );
        let result = always.infer(universe.center(ClassId(0)), &mut rng);
        assert!(
            result.latency.as_millis_f64() > 500.0,
            "escalation must pay both stages: {}",
            result.latency
        );
        let _ = cascade;
    }

    #[test]
    fn expected_latency_formula() {
        let (_, cascade, _) = fixture();
        let never = cascade.expected_latency(0.0);
        assert!((never.value() - 45.0).abs() < 1e-9);
        let always = cascade.expected_latency(1.0);
        assert!((always.value() - 665.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be faster than")]
    fn rejects_inverted_cascade() {
        let mut rng = SimRng::seed(3);
        let universe = ClassUniverse::generate(&SceneConfig::default(), &mut rng);
        CascadeModel::new(
            zoo::inception_v3(),
            zoo::squeezenet(),
            0.5,
            DeviceClass::MidRange,
            &universe,
        );
    }

    #[test]
    fn accessors() {
        let (_, cascade, _) = fixture();
        assert_eq!(cascade.little().profile().name, "squeezenet");
        assert_eq!(cascade.big().profile().name, "inception_v3");
    }
}
