//! Energy accounting, in millijoules.
//!
//! Mobile vision burns energy in four places the experiments track:
//! running the network, extracting cache-key features, searching the
//! cache, and talking to peers over the radio. All four are modelled here
//! so the energy experiment (`R-8`) charges every pipeline path
//! consistently.

use serde::{Deserialize, Serialize};

use simcore::units::Millijoules;
use simcore::SimDuration;

use crate::device::DeviceClass;

/// Radio technology used for a peer exchange — determines per-byte and
/// per-connection energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Radio {
    /// Bluetooth Low Energy 4.2-class link.
    Ble,
    /// WiFi-Direct / WiFi-Aware-class link.
    WifiDirect,
    /// Cellular (LTE/5G) uplink to an edge server.
    Wan,
}

/// Converts pipeline activity into millijoules for one device class.
///
/// Constants follow the usual mobile measurement literature: SoC inference
/// power of 2–3.5 W, ~0.1 µJ/byte for WiFi payloads (plus per-wake
/// overhead), BLE an order of magnitude cheaper per byte but much slower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    device: DeviceClass,
    /// SoC power while running the DNN, watts (before the device factor).
    inference_power_w: f64,
    /// SoC power during feature extraction / cache search, watts.
    compute_power_w: f64,
    /// WiFi energy per byte.
    #[serde(rename = "wifi_mj_per_byte")]
    wifi_per_byte: Millijoules,
    /// WiFi per-exchange wake overhead.
    #[serde(rename = "wifi_wake_mj")]
    wifi_wake: Millijoules,
    /// BLE energy per byte.
    #[serde(rename = "ble_mj_per_byte")]
    ble_per_byte: Millijoules,
    /// BLE per-exchange wake overhead.
    #[serde(rename = "ble_wake_mj")]
    ble_wake: Millijoules,
    /// Cellular energy per byte (LTE/5G uplink to an edge server —
    /// costlier per byte than WiFi at mobile transmit power).
    #[serde(rename = "wan_mj_per_byte", default = "default_wan_per_byte")]
    wan_per_byte: Millijoules,
    /// Cellular per-exchange wake overhead (RRC promotion out of idle
    /// dominates short transfers).
    #[serde(rename = "wan_wake_mj", default = "default_wan_wake")]
    wan_wake: Millijoules,
}

/// Serde defaults so pre-WAN serialized models still deserialize.
fn default_wan_per_byte() -> Millijoules {
    Millijoules::new(2.5e-4)
}

fn default_wan_wake() -> Millijoules {
    Millijoules::new(15.0)
}

impl EnergyModel {
    /// The energy model for `device`.
    pub fn new(device: DeviceClass) -> EnergyModel {
        EnergyModel {
            device,
            inference_power_w: 2.5,
            compute_power_w: 1.2,
            wifi_per_byte: Millijoules::new(1.0e-4),
            wifi_wake: Millijoules::new(8.0),
            ble_per_byte: Millijoules::new(2.0e-5),
            ble_wake: Millijoules::new(1.0),
            wan_per_byte: default_wan_per_byte(),
            wan_wake: default_wan_wake(),
        }
    }

    /// The device class this model charges for.
    pub fn device(&self) -> DeviceClass {
        self.device
    }

    /// Energy of a DNN inference that ran for `latency`.
    ///
    /// Watts times milliseconds is millijoules, so the wall-clock sample
    /// converts directly into the energy charge.
    pub fn inference_energy(&self, latency: SimDuration) -> Millijoules {
        Millijoules::new(self.inference_power_w * self.device.power_factor())
            * latency.as_millis_f64()
    }

    /// Energy of CPU work (feature extraction, cache lookup) that ran for
    /// `latency`.
    pub fn compute_energy(&self, latency: SimDuration) -> Millijoules {
        Millijoules::new(self.compute_power_w * self.device.power_factor())
            * latency.as_millis_f64()
    }

    /// Energy of one radio exchange moving `bytes` payload bytes.
    pub fn radio_energy(&self, radio: Radio, bytes: usize) -> Millijoules {
        match radio {
            Radio::Ble => self.ble_wake + self.ble_per_byte * bytes as f64,
            Radio::WifiDirect => self.wifi_wake + self.wifi_per_byte * bytes as f64,
            Radio::Wan => self.wan_wake + self.wan_per_byte * bytes as f64,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::new(DeviceClass::MidRange)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_energy_scales_with_latency_and_power() {
        let model = EnergyModel::new(DeviceClass::MidRange);
        let short = model.inference_energy(SimDuration::from_millis(50));
        let long = model.inference_energy(SimDuration::from_millis(100));
        assert!((long / short - 2.0).abs() < 1e-9);
        // 2.5 W × 1.0 × 100 ms = 250 mJ.
        assert!((long.value() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn compute_is_cheaper_than_inference() {
        let model = EnergyModel::default();
        let d = SimDuration::from_millis(10);
        assert!(model.compute_energy(d) < model.inference_energy(d));
    }

    #[test]
    fn radio_wake_dominates_small_payloads() {
        let model = EnergyModel::default();
        let small = model.radio_energy(Radio::WifiDirect, 100);
        assert!((small.value() - 8.01).abs() < 1e-9);
        let big = model.radio_energy(Radio::WifiDirect, 1_000_000);
        assert!(big.value() > 100.0);
    }

    #[test]
    fn ble_is_cheaper_per_exchange() {
        let model = EnergyModel::default();
        for bytes in [0usize, 300, 4096] {
            assert!(
                model.radio_energy(Radio::Ble, bytes)
                    < model.radio_energy(Radio::WifiDirect, bytes)
            );
        }
    }

    #[test]
    fn device_power_factor_applies() {
        let flagship = EnergyModel::new(DeviceClass::Flagship);
        let budget = EnergyModel::new(DeviceClass::Budget);
        let d = SimDuration::from_millis(100);
        assert!(flagship.inference_energy(d) > budget.inference_energy(d));
        assert_eq!(flagship.device(), DeviceClass::Flagship);
    }

    #[test]
    fn cache_hit_beats_inference_energetically() {
        // The economic argument for the whole system: a lookup (≈1 ms CPU)
        // plus even a WiFi peer exchange costs less than one MobileNet
        // inference (75 ms at 2.5 W ≈ 188 mJ).
        let model = EnergyModel::default();
        let lookup = model.compute_energy(SimDuration::from_millis(1));
        let peer = model.radio_energy(Radio::WifiDirect, 600);
        let inference = model.inference_energy(SimDuration::from_millis(75));
        assert!(lookup + peer < inference / 10.0);
    }

    #[test]
    fn edge_query_still_beats_inference_energetically() {
        // Same economics for the edge tier: cellular is the priciest
        // radio (RRC wake ≈ 15 mJ, 0.25 µJ/byte), yet a batched edge
        // exchange must stay well under one inference or the tier would
        // never be worth waking the modem for.
        let model = EnergyModel::default();
        let wan = model.radio_energy(Radio::Wan, 2_000);
        assert!(wan > model.radio_energy(Radio::WifiDirect, 2_000));
        let inference = model.inference_energy(SimDuration::from_millis(75));
        assert!(wan < inference / 5.0, "wan {wan} vs inference {inference}");
    }
}
