//! The ground-truth-aware stochastic classifier.
//!
//! A real network is right on roughly `top1_accuracy` of inputs, and when
//! it errs it confuses the subject with a *similar-looking* class, not a
//! uniformly random one. The simulator reproduces both properties: it
//! starts from the ideal nearest-centre label and, with probability
//! `1 − top1`, flips it to a class sampled with weight decaying in
//! centre-distance rank.

use features::FeatureVector;
use scene::{ClassId, ClassUniverse};
use serde::{Deserialize, Serialize};
use simcore::SimRng;

use crate::zoo::ModelProfile;

/// One classification outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The predicted class.
    pub label: ClassId,
    /// Softmax-style confidence in `[0, 1]`. Correct predictions
    /// concentrate high, errors lower — so confidence is usable as a cache
    /// admission signal.
    pub confidence: f64,
}

/// Stochastic classifier for one model over one class universe.
#[derive(Debug, Clone)]
pub struct DnnClassifier {
    top1: f64,
    /// For each class, the other classes sorted by centre distance.
    confusions: Vec<Vec<ClassId>>,
    universe: ClassUniverse,
}

impl DnnClassifier {
    /// Builds the classifier for `profile` over `universe`.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid.
    pub fn new(profile: &ModelProfile, universe: &ClassUniverse) -> DnnClassifier {
        profile.validate();
        let confusions = universe.ids().map(|id| universe.confusable(id)).collect();
        DnnClassifier {
            top1: profile.top1_accuracy,
            confusions,
            universe: universe.clone(),
        }
    }

    /// The model's top-1 accuracy.
    pub fn top1_accuracy(&self) -> f64 {
        self.top1
    }

    /// Classifies `descriptor`.
    pub fn predict(&self, descriptor: &FeatureVector, rng: &mut SimRng) -> Prediction {
        let ideal = self.universe.nearest_class(descriptor);
        if rng.chance(self.top1) {
            Prediction {
                label: ideal,
                // Correct predictions: confidence high, mildly dispersed.
                confidence: (0.9 + rng.normal(0.0, 0.05)).clamp(0.5, 1.0),
            }
        } else {
            let candidates = &self.confusions[ideal.as_index()];
            let label = if candidates.is_empty() {
                ideal // single-class universe: nothing to confuse with
            } else {
                // Geometric weight over distance rank: nearest classes
                // soak up most of the confusion mass.
                let weights: Vec<f64> = (0..candidates.len())
                    .map(|r| 0.5f64.powi(r as i32))
                    .collect();
                candidates[rng.weighted_index(&weights)]
            };
            Prediction {
                label,
                confidence: (0.55 + rng.normal(0.0, 0.1)).clamp(0.1, 0.85),
            }
        }
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::zoo;
    use scene::SceneConfig;

    fn fixture() -> (ClassUniverse, DnnClassifier, SimRng) {
        let mut rng = SimRng::seed(1);
        let universe = ClassUniverse::generate(&SceneConfig::default(), &mut rng);
        let classifier = DnnClassifier::new(&zoo::mobilenet_v2(), &universe);
        (universe, classifier, rng)
    }

    #[test]
    fn accuracy_on_clean_centres_matches_top1() {
        let (universe, classifier, mut rng) = fixture();
        let trials = 4_000;
        let mut correct = 0;
        for i in 0..trials {
            let truth = ClassId((i % universe.len()) as u32);
            let p = classifier.predict(universe.center(truth), &mut rng);
            if p.label == truth {
                correct += 1;
            }
        }
        let acc = correct as f64 / trials as f64;
        assert!((acc - 0.718).abs() < 0.03, "acc {acc}");
    }

    #[test]
    fn errors_prefer_confusable_classes() {
        let (universe, classifier, mut rng) = fixture();
        let truth = ClassId(0);
        let confusable = universe.confusable(truth);
        let near: std::collections::HashSet<u32> = confusable.iter().take(3).map(|c| c.0).collect();
        let mut near_errors = 0;
        let mut far_errors = 0;
        for _ in 0..20_000 {
            let p = classifier.predict(universe.center(truth), &mut rng);
            if p.label != truth {
                if near.contains(&p.label.0) {
                    near_errors += 1;
                } else {
                    far_errors += 1;
                }
            }
        }
        // 3 of 19 wrong classes carry weight 1 + 1/2 + 1/4 of a total
        // ≈ 2: they should take the lion's share of errors.
        assert!(
            near_errors > far_errors * 3,
            "near {near_errors}, far {far_errors}"
        );
    }

    #[test]
    fn confidence_separates_correct_from_wrong() {
        let (universe, classifier, mut rng) = fixture();
        let mut correct_conf = Vec::new();
        let mut wrong_conf = Vec::new();
        for i in 0..4_000 {
            let truth = ClassId((i % universe.len()) as u32);
            let p = classifier.predict(universe.center(truth), &mut rng);
            if p.label == truth {
                correct_conf.push(p.confidence);
            } else {
                wrong_conf.push(p.confidence);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&correct_conf) > mean(&wrong_conf) + 0.2);
        assert!(correct_conf
            .iter()
            .chain(&wrong_conf)
            .all(|&c| (0.0..=1.0).contains(&c)));
    }

    #[test]
    fn perturbed_descriptor_classifies_to_nearest_centre() {
        let (universe, classifier, mut rng) = fixture();
        // Strong perturbation towards another class should change the
        // *ideal* label the classifier perturbs around.
        let a = ClassId(0);
        let b = universe.confusable(a)[0];
        let towards_b = universe
            .center(a)
            .scale(0.2)
            .add(&universe.center(b).scale(0.8))
            .unwrap();
        let mut b_wins = 0;
        for _ in 0..200 {
            if classifier.predict(&towards_b, &mut rng).label == b {
                b_wins += 1;
            }
        }
        assert!(b_wins > 100, "b won only {b_wins}/200");
    }

    #[test]
    fn exposes_top1() {
        let (_, classifier, _) = fixture();
        assert_eq!(classifier.top1_accuracy(), 0.718);
    }
}
