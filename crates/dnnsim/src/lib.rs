//! Mobile DNN inference simulator.
//!
//! The caching system treats on-device inference as an opaque oracle with
//! three observable properties: it takes *time*, it burns *energy*, and it
//! is *mostly right*. This crate models all three, calibrated to published
//! smartphone benchmarks of common image-recognition networks, so that the
//! latency/energy savings the cache reports are on the scale real
//! deployments see:
//!
//! - [`ModelProfile`] / [`zoo`] — per-network latency, accuracy and energy
//!   profiles (MobileNetV2, SqueezeNet, ResNet-50, InceptionV3).
//! - [`DeviceClass`] — flagship / mid-range / budget phones scale latency
//!   and power.
//! - [`LatencyModel`] — log-normal inference latency with a thermal
//!   throttling tail.
//! - [`EnergyModel`] — inference, feature-extraction, lookup and radio
//!   energy in millijoules.
//! - [`DnnClassifier`] — ground-truth-aware stochastic classifier: right
//!   with the model's top-1 probability, confusably wrong otherwise.
//! - [`DnnModel`] — the façade the pipeline calls: one
//!   [`infer`](DnnModel::infer) per cache miss.
//!
//! # Example
//!
//! ```
//! use dnnsim::{DeviceClass, DnnModel, zoo};
//! use scene::{ClassUniverse, SceneConfig};
//! use simcore::SimRng;
//!
//! let mut rng = SimRng::seed(3);
//! let config = SceneConfig::default();
//! let universe = ClassUniverse::generate(&config, &mut rng);
//! let model = DnnModel::new(zoo::mobilenet_v2(), DeviceClass::MidRange, &universe);
//! let frame = universe.center(scene::ClassId(0)).clone();
//! let result = model.infer(&frame, &mut rng);
//! assert!(result.latency.as_millis() > 0);
//! ```

pub mod cascade;
pub mod classifier;
pub mod device;
pub mod energy;
pub mod latency;
pub mod zoo;

pub use cascade::CascadeModel;
pub use classifier::{DnnClassifier, Prediction};
pub use device::DeviceClass;
pub use energy::{EnergyModel, Radio};
pub use latency::LatencyModel;
pub use zoo::ModelProfile;

use features::FeatureVector;
use scene::ClassUniverse;
use serde::{Deserialize, Serialize};
use simcore::units::Millijoules;
use simcore::{SimDuration, SimRng};

/// The outcome of one full DNN inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Inference {
    /// Predicted class.
    pub label: scene::ClassId,
    /// Classifier confidence in `[0, 1]`.
    pub confidence: f64,
    /// Wall-clock cost of the inference.
    pub latency: SimDuration,
    /// Energy cost.
    #[serde(rename = "energy_mj")]
    pub energy: Millijoules,
}

/// Anything the caching pipeline can fall back to on a miss: a single
/// network ([`DnnModel`]) or a big/little cascade ([`CascadeModel`]).
/// Object-safe so devices can be configured with either at run time.
/// `Send + Sync` so a fleet shard can read devices it does not own
/// (every method takes `&self`).
pub trait InferenceBackend: Send + Sync {
    /// Runs one inference.
    fn infer(&self, descriptor: &FeatureVector, rng: &mut SimRng) -> Inference;
    /// The nominal (planning) latency — for cascades, the no-escalation
    /// case, since budget decisions should not assume the worst.
    fn nominal_latency(&self) -> SimDuration;
    /// A short name for reports.
    fn backend_name(&self) -> String;
}

impl InferenceBackend for DnnModel {
    fn infer(&self, descriptor: &FeatureVector, rng: &mut SimRng) -> Inference {
        DnnModel::infer(self, descriptor, rng)
    }
    fn nominal_latency(&self) -> SimDuration {
        DnnModel::nominal_latency(self)
    }
    fn backend_name(&self) -> String {
        self.profile().name.to_owned()
    }
}

impl InferenceBackend for CascadeModel {
    fn infer(&self, descriptor: &FeatureVector, rng: &mut SimRng) -> Inference {
        CascadeModel::infer(self, descriptor, rng)
    }
    fn nominal_latency(&self) -> SimDuration {
        self.little().nominal_latency()
    }
    fn backend_name(&self) -> String {
        format!(
            "{}+{}",
            self.little().profile().name,
            self.big().profile().name
        )
    }
}

/// A deployed network on a specific device: the inference oracle the
/// caching pipeline falls back to on a miss.
#[derive(Debug, Clone)]
pub struct DnnModel {
    profile: ModelProfile,
    device: DeviceClass,
    latency: LatencyModel,
    energy: EnergyModel,
    classifier: DnnClassifier,
}

impl DnnModel {
    /// Deploys `profile` on a `device`, classifying over `universe`.
    pub fn new(profile: ModelProfile, device: DeviceClass, universe: &ClassUniverse) -> DnnModel {
        DnnModel {
            latency: LatencyModel::new(&profile, device),
            energy: EnergyModel::new(device),
            classifier: DnnClassifier::new(&profile, universe),
            profile,
            device,
        }
    }

    /// The network profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// The device class the model runs on.
    pub fn device(&self) -> DeviceClass {
        self.device
    }

    /// The energy model (shared scale for non-inference costs).
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Runs one full inference on `descriptor`.
    pub fn infer(&self, descriptor: &FeatureVector, rng: &mut SimRng) -> Inference {
        let latency = self.latency.sample(rng);
        let prediction = self.classifier.predict(descriptor, rng);
        let energy = self.energy.inference_energy(latency);
        Inference {
            label: prediction.label,
            confidence: prediction.confidence,
            latency,
            energy,
        }
    }

    /// The mean (un-throttled) inference latency — what latency-budget
    /// planning uses.
    pub fn nominal_latency(&self) -> SimDuration {
        self.latency.nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scene::SceneConfig;

    #[test]
    fn infer_produces_plausible_costs() {
        let mut rng = SimRng::seed(1);
        let config = SceneConfig::default();
        let universe = ClassUniverse::generate(&config, &mut rng);
        let model = DnnModel::new(zoo::mobilenet_v2(), DeviceClass::MidRange, &universe);
        let descriptor = universe.center(scene::ClassId(3)).clone();
        let result = model.infer(&descriptor, &mut rng);
        assert!(
            result.latency.as_millis() >= 20,
            "latency {}",
            result.latency
        );
        assert!(result.latency.as_millis() < 2_000);
        assert!(result.energy > Millijoules::ZERO);
        assert!((0.0..=1.0).contains(&result.confidence));
        assert!(result.label.as_index() < universe.len());
    }

    #[test]
    fn accessors_expose_configuration() {
        let mut rng = SimRng::seed(2);
        let universe = ClassUniverse::generate(&SceneConfig::default(), &mut rng);
        let model = DnnModel::new(zoo::resnet50(), DeviceClass::Flagship, &universe);
        assert_eq!(model.profile().name, "resnet50");
        assert_eq!(model.device(), DeviceClass::Flagship);
        assert!(model.nominal_latency().as_millis() > 0);
    }

    #[test]
    fn accuracy_tracks_profile_top1() {
        let mut rng = SimRng::seed(3);
        let config = SceneConfig::default();
        let universe = ClassUniverse::generate(&config, &mut rng);
        let model = DnnModel::new(zoo::mobilenet_v2(), DeviceClass::MidRange, &universe);
        let trials = 2_000;
        let mut correct = 0;
        for i in 0..trials {
            let truth = scene::ClassId((i % universe.len()) as u32);
            let result = model.infer(universe.center(truth), &mut rng);
            if result.label == truth {
                correct += 1;
            }
        }
        let acc = correct as f64 / trials as f64;
        let expected = model.profile().top1_accuracy;
        assert!(
            (acc - expected).abs() < 0.04,
            "measured {acc}, profile {expected}"
        );
    }
}
