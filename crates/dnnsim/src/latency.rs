//! Inference latency sampling.

use serde::{Deserialize, Serialize};

use simcore::units::Millis;
use simcore::{SimDuration, SimRng};

use crate::device::DeviceClass;
use crate::zoo::ModelProfile;

/// Log-normal latency with a thermal-throttle tail.
///
/// A sample is `base · device_factor · LogNormal(0, σ)`, multiplied by the
/// profile's throttle factor with the profile's throttle probability —
/// matching the bimodal latency traces mobile benchmarks report under
/// sustained load.
///
/// # Example
///
/// ```
/// use dnnsim::{DeviceClass, LatencyModel, zoo};
/// use simcore::SimRng;
///
/// let model = LatencyModel::new(&zoo::mobilenet_v2(), DeviceClass::MidRange);
/// let mut rng = SimRng::seed(1);
/// let sample = model.sample(&mut rng);
/// assert!(sample.as_millis() > 30 && sample.as_millis() < 500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    #[serde(rename = "base_ms")]
    base: Millis,
    sigma: f64,
    throttle_prob: f64,
    throttle_factor: f64,
}

impl LatencyModel {
    /// Builds the latency model for `profile` on `device`.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid.
    pub fn new(profile: &ModelProfile, device: DeviceClass) -> LatencyModel {
        profile.validate();
        LatencyModel {
            base: profile.base_latency * device.latency_factor(),
            sigma: profile.latency_sigma,
            throttle_prob: profile.throttle_prob,
            throttle_factor: profile.throttle_factor,
        }
    }

    /// The un-jittered, un-throttled latency.
    pub fn nominal(&self) -> SimDuration {
        self.base.to_duration()
    }

    /// Draws one inference latency.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        // LogNormal(−σ²/2, σ) has mean exactly 1, so jitter does not bias
        // the base latency.
        let jitter = rng.log_normal(-self.sigma * self.sigma / 2.0, self.sigma);
        let throttle = if rng.chance(self.throttle_prob) {
            self.throttle_factor
        } else {
            1.0
        };
        (self.base * (jitter * throttle)).to_duration()
    }

    /// The long-run mean latency including the throttle tail.
    pub fn expected(&self) -> Millis {
        self.base * (1.0 + self.throttle_prob * (self.throttle_factor - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn mean_matches_expected() {
        let model = LatencyModel::new(&zoo::mobilenet_v2(), DeviceClass::MidRange);
        let mut rng = SimRng::seed(1);
        let n = 20_000;
        let mean_ms: f64 = (0..n)
            .map(|_| model.sample(&mut rng).as_millis_f64())
            .sum::<f64>()
            / n as f64;
        let expected = model.expected().value();
        assert!(
            (mean_ms - expected).abs() / expected < 0.03,
            "mean {mean_ms}, expected {expected}"
        );
    }

    #[test]
    fn device_class_scales_latency() {
        let mid = LatencyModel::new(&zoo::resnet50(), DeviceClass::MidRange);
        let flag = LatencyModel::new(&zoo::resnet50(), DeviceClass::Flagship);
        let budget = LatencyModel::new(&zoo::resnet50(), DeviceClass::Budget);
        assert!(flag.nominal() < mid.nominal());
        assert!(mid.nominal() < budget.nominal());
        assert!(
            (flag.nominal().as_millis_f64() / mid.nominal().as_millis_f64() - 0.45).abs() < 1e-9
        );
    }

    #[test]
    fn samples_are_positive_and_bounded_by_tail() {
        let model = LatencyModel::new(&zoo::inception_v3(), DeviceClass::Budget);
        let mut rng = SimRng::seed(2);
        for _ in 0..1_000 {
            let s = model.sample(&mut rng).as_millis_f64();
            assert!(s > 0.0);
            // base 620 × 2.2 ≈ 1364; tail ×2 plus jitter stays under 5 s.
            assert!(s < 5_000.0, "sample {s}");
        }
    }

    #[test]
    fn throttling_creates_a_visible_tail() {
        let model = LatencyModel::new(&zoo::resnet50(), DeviceClass::MidRange);
        let mut rng = SimRng::seed(3);
        let samples: Vec<f64> = (0..10_000)
            .map(|_| model.sample(&mut rng).as_millis_f64())
            .collect();
        let over = samples.iter().filter(|&&s| s > 380.0 * 1.6).count();
        let frac = over as f64 / samples.len() as f64;
        // throttle_prob is 5%; jitter alone (σ=0.12) produces essentially
        // no mass at +60%.
        assert!((frac - 0.05).abs() < 0.02, "tail fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let model = LatencyModel::new(&zoo::squeezenet(), DeviceClass::MidRange);
        let a: Vec<u64> = {
            let mut rng = SimRng::seed(4);
            (0..10).map(|_| model.sample(&mut rng).as_nanos()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SimRng::seed(4);
            (0..10).map(|_| model.sample(&mut rng).as_nanos()).collect()
        };
        assert_eq!(a, b);
    }
}
