//! Self-lint: the shipped tree must pass every rule, the lock-order
//! graph must certify acyclic, the full pass must stay fast, and the
//! set of `xtask-allow` escape hatches must not grow silently.

use std::path::{Path, PathBuf};
use std::time::Instant;

use xtask::{lint_repo, load_budget};

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels under the repo root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_every_rule() {
    let root = repo_root();
    let budget = load_budget(&root).expect("panic budget must parse");
    let started = Instant::now();
    let report = lint_repo(&root, &budget).expect("lint walks the workspace");
    let elapsed = started.elapsed();

    assert!(
        report.violations.is_empty(),
        "shipped tree must lint clean, got:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule.id(), v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_checked > 100,
        "walk looks truncated: {} files",
        report.files_checked
    );
    // The acceptance bar for the full structural pass is < 5 s; leave
    // headroom so a debug-profile CI box still clears it.
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "full lint took {elapsed:?}, budget is 5 s"
    );
}

#[test]
fn lock_order_graph_is_nonempty_and_acyclic() {
    let root = repo_root();
    let budget = load_budget(&root).unwrap();
    let report = lint_repo(&root, &budget).unwrap();
    assert!(
        report.lock_graph.nodes.len() >= 2,
        "expected the sharded store's lock families, got {:?}",
        report.lock_graph.nodes
    );
    assert!(
        report.lock_graph.cycles().is_empty(),
        "lock-order cycles in the shipped tree: {:?}",
        report.lock_graph.cycles()
    );
}

#[test]
fn allow_census_is_pinned() {
    // Every `xtask-allow(rule)` in linted (non-fixture, non-xtask)
    // sources is an audited escape hatch. Adding one requires updating
    // this census — that is the review hook, not a formality.
    let root = repo_root();
    let mut sites: Vec<(String, String)> = Vec::new();
    collect_allows(&root.join("crates"), &root, &mut sites);
    sites.sort();
    let census: Vec<String> = sites
        .iter()
        .map(|(file, rule)| format!("{file}: {rule}"))
        .collect();
    assert_eq!(
        census,
        vec![
            "crates/reuse/src/concurrent/sharded.rs: panics",
            "crates/reuse/src/store.rs: determinism",
            "crates/reuse/src/store.rs: determinism",
            "crates/reuse/src/store.rs: determinism",
            "crates/reuse/src/store.rs: determinism",
            "crates/reuse/src/store.rs: determinism",
            "crates/reuse/src/store.rs: determinism",
        ],
        "allow census drifted"
    );
}

/// Walks `crates/*/src/**/*.rs` exactly like the linter (skipping the
/// xtask crate and fixtures) and records `xtask-allow(<rule>):` markers.
fn collect_allows(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if rel == "crates/xtask" || rel.ends_with("/fixtures") {
                continue;
            }
            collect_allows(&path, root, out);
        } else if rel.starts_with("crates/") && rel.contains("/src/") && rel.ends_with(".rs") {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            for line in text.lines() {
                let Some(idx) = line.find("xtask-allow(") else {
                    continue;
                };
                let rest = &line[idx + "xtask-allow(".len()..];
                if let Some(end) = rest.find(')') {
                    out.push((rel.clone(), rest[..end].to_string()));
                }
            }
        }
    }
}

#[test]
fn json_report_round_trips_the_key_facts() {
    let root = repo_root();
    let budget = load_budget(&root).unwrap();
    let report = lint_repo(&root, &budget).unwrap();
    let json = report.to_json();
    assert!(json.contains("\"clean\": true"), "{json}");
    assert!(json.contains("\"acyclic\": true"), "{json}");
    assert!(json.contains("\"files_checked\""), "{json}");
}
