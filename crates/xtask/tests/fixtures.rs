//! Fixture-based rule tests: every rule has a known-bad fixture that
//! must fire and a known-good fixture that must stay silent.

use xtask::lint_source;
use xtask::model;
use xtask::rules::{FileContext, Rule};

fn fixture(kind: &str, name: &str) -> String {
    let path = format!("{}/fixtures/{kind}/{name}.rs", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Lints a fixture as if it lived at `rel_path`, with a rule-P budget.
fn lint(kind: &str, name: &str, rel_path: &str, budget: usize) -> Vec<(Rule, usize)> {
    let (violations, _) = lint_source(rel_path, &fixture(kind, name), budget);
    violations.iter().map(|v| (v.rule, v.line)).collect()
}

#[test]
fn bad_determinism_fires() {
    let hits = lint("bad", "determinism", "crates/simcore/src/fixture.rs", 0);
    let rules: Vec<Rule> = hits.iter().map(|&(r, _)| r).collect();
    assert!(rules.contains(&Rule::Determinism), "got {hits:?}");
    // Wall clock, ambient rng, argless default rng, and hash iteration
    // must each be caught.
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Determinism)
        .map(|&(_, l)| l)
        .collect();
    assert!(lines.contains(&11), "Instant::now line, got {lines:?}");
    assert!(lines.contains(&12), "SimRng::default line, got {lines:?}");
    assert!(lines.contains(&13), "thread_rng line, got {lines:?}");
    assert!(lines.contains(&15), "HashMap iteration line, got {lines:?}");
}

#[test]
fn good_determinism_is_clean() {
    let hits = lint("good", "determinism", "crates/simcore/src/fixture.rs", 0);
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn determinism_only_applies_to_sim_crates() {
    // The same bad source in a non-simulation crate is out of scope.
    let hits = lint("bad", "determinism", "crates/features/src/fixture.rs", 0);
    assert!(
        !hits.iter().any(|&(r, _)| r == Rule::Determinism),
        "got {hits:?}"
    );
}

#[test]
fn harness_crate_gets_the_wall_clock_half_only() {
    // In the bench crate only the wall-clock check applies: Instant
    // (line 11) fires, while ambient RNG (13) and hash-order iteration
    // (15) are the simulation crates' concern.
    let hits = lint("bad", "determinism", "crates/bench/src/lib.rs", 0);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Determinism)
        .map(|&(_, l)| l)
        .collect();
    assert!(lines.contains(&11), "Instant::now line, got {lines:?}");
    assert!(
        !lines.contains(&13),
        "thread_rng out of scope, got {lines:?}"
    );
    assert!(
        !lines.contains(&15),
        "hash iteration out of scope, got {lines:?}"
    );
}

#[test]
fn perf_measurement_files_may_read_the_wall_clock() {
    for home in [
        "crates/bench/src/perf.rs",
        "crates/bench/src/bin/perf_smoke.rs",
    ] {
        let hits = lint("bad", "determinism", home, 0);
        assert!(
            !hits.iter().any(|&(r, _)| r == Rule::Determinism),
            "{home}: got {hits:?}"
        );
    }
}

#[test]
fn edge_protocol_files_get_the_full_determinism_rule() {
    // The edge crate's protocol/codec/cache half feeds seeded sim runs,
    // so it is a simulation crate for rule D: all four checks fire.
    let hits = lint("bad", "determinism", "crates/edge/src/protocol.rs", 0);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Determinism)
        .map(|&(_, l)| l)
        .collect();
    for (line, what) in [
        (11, "Instant::now"),
        (12, "SimRng::default"),
        (13, "thread_rng"),
        (15, "HashMap iteration"),
    ] {
        assert!(lines.contains(&line), "{what} line, got {lines:?}");
    }
}

#[test]
fn edge_service_runtime_is_exempt_from_determinism() {
    // The server and client halves run real sockets with read/write
    // deadlines; rule D stays out entirely, like the perf files.
    for home in ["crates/edge/src/server.rs", "crates/edge/src/client.rs"] {
        let hits = lint("bad", "determinism", home, 0);
        assert!(
            !hits.iter().any(|&(r, _)| r == Rule::Determinism),
            "{home}: got {hits:?}"
        );
    }
}

#[test]
fn sweep_module_gets_the_full_determinism_rule() {
    // The sweep orchestrator lives in the bench crate but its cell
    // seeds and resume-merge must replay byte-identically, so it is
    // held to the full rule: wall clock, ambient RNG, and hash-order
    // iteration all fire.
    let hits = lint("bad", "determinism", "crates/bench/src/sweep.rs", 0);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Determinism)
        .map(|&(_, l)| l)
        .collect();
    for (line, what) in [
        (11, "Instant::now"),
        (12, "SimRng::default"),
        (13, "thread_rng"),
        (15, "HashMap iteration"),
    ] {
        assert!(lines.contains(&line), "{what} line, got {lines:?}");
    }
}

#[test]
fn bad_units_fires() {
    let hits = lint("bad", "units", "crates/dnnsim/src/fixture.rs", 0);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Units)
        .map(|&(_, l)| l)
        .collect();
    assert!(lines.contains(&4), "base_ms * throttle, got {lines:?}");
    assert!(lines.contains(&5), "radio_mj + 1.5, got {lines:?}");
}

#[test]
fn good_units_is_clean() {
    let hits = lint("good", "units", "crates/dnnsim/src/fixture.rs", 0);
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn units_exempts_the_newtype_home() {
    let hits = lint("bad", "units", "crates/simcore/src/units.rs", 0);
    assert!(!hits.iter().any(|&(r, _)| r == Rule::Units), "got {hits:?}");
}

#[test]
fn bad_counters_fires() {
    let hits = lint("bad", "counters", "crates/reuse/src/fixture.rs", 0);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Counters)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(lines, vec![9, 10, 14], "lookups, hits, messages_sent");
}

#[test]
fn good_counters_is_clean() {
    let hits = lint("good", "counters", "crates/reuse/src/fixture.rs", 0);
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn counters_exempts_the_registry_itself() {
    let hits = lint("bad", "counters", "crates/reuse/src/stats.rs", 0);
    assert!(
        !hits.iter().any(|&(r, _)| r == Rule::Counters),
        "got {hits:?}"
    );
}

#[test]
fn bad_panics_exceeds_a_zero_budget() {
    let hits = lint("bad", "panics", "crates/reuse/src/fixture.rs", 0);
    assert!(hits.iter().any(|&(r, _)| r == Rule::Panics), "got {hits:?}");
}

#[test]
fn bad_panics_fits_a_sufficient_budget() {
    // The fixture has exactly three sites: one index, one expect, one
    // unwrap. A budget of three admits it; two does not.
    let hits = lint("bad", "panics", "crates/reuse/src/fixture.rs", 3);
    assert!(
        !hits.iter().any(|&(r, _)| r == Rule::Panics),
        "got {hits:?}"
    );
    let hits = lint("bad", "panics", "crates/reuse/src/fixture.rs", 2);
    assert!(hits.iter().any(|&(r, _)| r == Rule::Panics), "got {hits:?}");
}

#[test]
fn good_panics_is_clean_at_zero() {
    let hits = lint("good", "panics", "crates/reuse/src/fixture.rs", 0);
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn panics_only_applies_to_hot_path_crates() {
    let (hits, count) = lint_source(
        "crates/workloads/src/fixture.rs",
        &fixture("bad", "panics"),
        0,
    );
    assert!(count.is_none());
    assert!(!hits.iter().any(|v| v.rule == Rule::Panics), "got {hits:?}");
}

#[test]
fn bad_locks_fires() {
    let hits = lint("bad", "locks", "crates/reuse/src/concurrent/fixture.rs", 0);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Locks)
        .map(|&(_, l)| l)
        .collect();
    assert!(lines.contains(&7), "lock under a live guard, got {lines:?}");
    assert!(
        lines.contains(&12),
        "second lock in one statement, got {lines:?}"
    );
    assert!(
        !lines.contains(&18),
        "allow marker must cover the justified pair, got {lines:?}"
    );
}

#[test]
fn good_locks_is_clean() {
    let hits = lint("good", "locks", "crates/reuse/src/concurrent/fixture.rs", 0);
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn locks_only_applies_to_the_concurrent_core() {
    // The same bad source elsewhere in reuse is out of scope.
    let hits = lint("bad", "locks", "crates/reuse/src/store.rs", 0);
    assert!(!hits.iter().any(|&(r, _)| r == Rule::Locks), "got {hits:?}");
}

/// Runs the cross-file lock-graph pass over one fixture.
fn graph_of(kind: &str, name: &str, rel_path: &str) -> (model::LockGraph, Vec<(Rule, usize)>) {
    let ctx = FileContext::new(rel_path, &fixture(kind, name));
    let (graph, violations) = model::lock_graph(&[&ctx]);
    (graph, violations.iter().map(|v| (v.rule, v.line)).collect())
}

#[test]
fn lock_graph_catches_the_ordering_cycle_rule_l_misses() {
    // The lexical rule first: each fn textually takes one lock, so L
    // stays silent on this fixture.
    let hits = lint(
        "bad",
        "lock_graph",
        "crates/reuse/src/concurrent/fixture.rs",
        9,
    );
    assert!(!hits.iter().any(|&(r, _)| r == Rule::Locks), "got {hits:?}");
    // The graph propagates through the calls: alpha->beta (via
    // grab_beta) and beta->alpha (via grab_alpha) close a cycle.
    let (graph, violations) = graph_of(
        "bad",
        "lock_graph",
        "crates/reuse/src/concurrent/fixture.rs",
    );
    assert!(graph.nodes.contains(&"self.alpha".to_string()), "{graph:?}");
    assert!(graph.nodes.contains(&"self.beta".to_string()), "{graph:?}");
    assert!(!graph.cycles().is_empty(), "{graph:?}");
    assert!(
        violations.iter().any(|&(r, _)| r == Rule::LockGraph),
        "got {violations:?}"
    );
}

#[test]
fn good_lock_graph_has_nodes_but_no_cycles() {
    let (graph, violations) = graph_of(
        "good",
        "lock_graph",
        "crates/reuse/src/concurrent/fixture.rs",
    );
    assert!(!graph.nodes.is_empty(), "{graph:?}");
    assert!(graph.cycles().is_empty(), "{graph:?}");
    assert!(violations.is_empty(), "got {violations:?}");
}

#[test]
fn lock_graph_subsumes_the_legacy_lock_fixture() {
    // Rule L's known-bad fixture also trips rule G: two acquisitions of
    // the `self.shard(_)` family under one guard are a self-edge, the
    // degenerate ordering cycle.
    let (graph, violations) = graph_of("bad", "locks", "crates/reuse/src/concurrent/fixture.rs");
    assert!(
        violations.iter().any(|&(r, _)| r == Rule::LockGraph),
        "got {violations:?}"
    );
    assert!(
        graph
            .cycles()
            .iter()
            .any(|c| c.iter().all(|n| n == "self.shard(_)")),
        "{graph:?}"
    );
    // And the known-good fixture stays acyclic under the graph too.
    let (graph, violations) = graph_of("good", "locks", "crates/reuse/src/concurrent/fixture.rs");
    assert!(graph.cycles().is_empty(), "{graph:?}");
    assert!(violations.is_empty(), "got {violations:?}");
}

#[test]
fn lock_graph_honours_the_locks_allow_marker() {
    // bad/locks.rs `allowed_pair` carries an xtask-allow(locks) span;
    // the graph must not manufacture an edge from the justified pair, so
    // the only cycle is the `transfer` self-edge.
    let (graph, _) = graph_of("bad", "locks", "crates/reuse/src/concurrent/fixture.rs");
    assert!(
        !graph
            .edges
            .iter()
            .any(|e| e.from == "self.shard(_)" && e.to == "self.shard(_)" && e.line > 15),
        "allowed pair leaked an edge: {graph:?}"
    );
}

#[test]
fn bad_seed_split_fires() {
    let hits = lint("bad", "seed_split", "crates/approxcache/src/fixture.rs", 0);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::SeedSplit)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(
        lines,
        vec![5, 7, 21],
        "duplicate label, duplicate (label, index), and duplicate \
         constructor-chain bank, got {hits:?}"
    );
}

#[test]
fn good_seed_split_is_clean() {
    let hits = lint("good", "seed_split", "crates/approxcache/src/fixture.rs", 0);
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn reserved_shard_label_is_rejected_outside_the_fleet_engine() {
    let hits = lint(
        "bad",
        "seed_split_reserved",
        "crates/p2pnet/src/fixture.rs",
        0,
    );
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::SeedSplit)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(
        lines,
        vec![7, 12],
        "every out-of-home \"shard\" split must fire, got {hits:?}"
    );
}

#[test]
fn reserved_shard_label_is_keyed_file_globally_in_its_home() {
    // Same fixture linted as the fleet engine itself: the two sites sit
    // in different fns, which the ordinary per-fn key would allow — the
    // reserved label collapses the scope, so the second site collides.
    let hits = lint(
        "bad",
        "seed_split_reserved",
        "crates/approxcache/src/fleet.rs",
        0,
    );
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::SeedSplit)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(lines, vec![12], "got {hits:?}");
}

#[test]
fn good_reserved_shard_label_is_clean_in_its_home() {
    let hits = lint(
        "good",
        "seed_split_reserved",
        "crates/approxcache/src/fleet.rs",
        0,
    );
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn bad_alloc_fires_in_the_concurrent_core() {
    let hits = lint("bad", "alloc", "crates/reuse/src/concurrent/fixture.rs", 9);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Alloc)
        .map(|&(_, l)| l)
        .collect();
    for line in [5, 6, 12, 13, 19, 23, 24, 28, 32, 38, 42] {
        assert!(lines.contains(&line), "line {line} missing from {lines:?}");
    }
}

#[test]
fn alloc_shard_fns_are_hot_only_in_the_concurrent_core() {
    // Outside concurrent/, `lookup`/`insert` are ordinary fns; the
    // A-kNN kernels (`nearest_into`, `decide_in`) and the per-lookup
    // index internals (`beam_search_into`, `search_into`,
    // `rerank_rows_into`, `quantize_query_into`) stay hot everywhere.
    let hits = lint("bad", "alloc", "crates/reuse/src/fixture.rs", 9);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Alloc)
        .map(|&(_, l)| l)
        .collect();
    assert!(
        !lines.iter().any(|&l| l < 17),
        "shard fns flagged outside the core: {lines:?}"
    );
    for line in [19, 23, 24, 28, 32, 38, 42] {
        assert!(lines.contains(&line), "line {line} missing from {lines:?}");
    }
}

#[test]
fn good_alloc_is_clean() {
    let hits = lint("good", "alloc", "crates/reuse/src/concurrent/fixture.rs", 9);
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn bad_counter_registry_census_fires() {
    let ctx = FileContext::new(
        "crates/reuse/src/stats.rs",
        &fixture("bad", "counter_registry"),
    );
    let violations = model::check_counter_registry(&[&ctx], &[]);
    let messages: Vec<&str> = violations.iter().map(|v| v.message.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`lookups` has 2 record_* helpers")),
        "got {messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`.hits` outside a `record_*` helper")),
        "got {messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`self.stats.inserts +=` bypasses")),
        "got {messages:?}"
    );
}

#[test]
fn good_counter_registry_census_is_clean() {
    let ctx = FileContext::new(
        "crates/reuse/src/stats.rs",
        &fixture("good", "counter_registry"),
    );
    let violations = model::check_counter_registry(&[&ctx], &[]);
    assert!(violations.is_empty(), "got {violations:#?}");
}

#[test]
fn counter_census_requires_reconciliation_sites() {
    // With a reconcile file in play, every field must appear inside an
    // assert-family span; here only `lookups` does.
    let ctx = FileContext::new(
        "crates/reuse/src/stats.rs",
        &fixture("good", "counter_registry"),
    );
    let reconcile = FileContext::new(
        "tests/trace_observability.rs",
        "fn t() { assert_eq!(stats.lookups, 1); }",
    );
    let violations = model::check_counter_registry(&[&ctx], &[&reconcile]);
    assert!(
        violations
            .iter()
            .any(|v| v.message.contains("`hits` has no reconciliation")),
        "got {violations:#?}"
    );
    assert!(
        !violations
            .iter()
            .any(|v| v.message.contains("`lookups` has no reconciliation")),
        "got {violations:#?}"
    );
}

#[test]
fn lexer_edges_panic_sites_are_counted_and_placed() {
    // Two real sites: a raw-identifier `r#unwrap` and an index. The
    // allow marker in `allowed_site` sits after a string continuation,
    // so it only covers its unwrap if line numbers survive `\`-escaped
    // newlines.
    let (_, count) = lint_source(
        "crates/reuse/src/fixture.rs",
        &fixture("bad", "lexer_edges"),
        9,
    );
    assert_eq!(count, Some(2));
    let hits = lint("bad", "lexer_edges", "crates/reuse/src/fixture.rs", 1);
    assert!(hits.iter().any(|&(r, _)| r == Rule::Panics), "got {hits:?}");
}

#[test]
fn good_lexer_edges_hides_panic_text_in_literals_and_comments() {
    // Raw strings, nested block comments, and multi-line strings carry
    // unwrap/index-looking text that must stay opaque.
    let (hits, count) = lint_source(
        "crates/reuse/src/fixture.rs",
        &fixture("good", "lexer_edges"),
        0,
    );
    assert_eq!(count, Some(0));
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn violations_render_with_location_rule_and_hint() {
    let (violations, _) = lint_source(
        "crates/reuse/src/fixture.rs",
        &fixture("bad", "counters"),
        0,
    );
    let rendered = violations[0].to_string();
    assert!(rendered.starts_with("crates/reuse/src/fixture.rs:9: [counters]"));
    assert!(rendered.contains("fix:"), "{rendered}");
}
