//! Fixture-based rule tests: every rule has a known-bad fixture that
//! must fire and a known-good fixture that must stay silent.

use xtask::lint_source;
use xtask::rules::Rule;

fn fixture(kind: &str, name: &str) -> String {
    let path = format!("{}/fixtures/{kind}/{name}.rs", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Lints a fixture as if it lived at `rel_path`, with a rule-P budget.
fn lint(kind: &str, name: &str, rel_path: &str, budget: usize) -> Vec<(Rule, usize)> {
    let (violations, _) = lint_source(rel_path, &fixture(kind, name), budget);
    violations.iter().map(|v| (v.rule, v.line)).collect()
}

#[test]
fn bad_determinism_fires() {
    let hits = lint("bad", "determinism", "crates/simcore/src/fixture.rs", 0);
    let rules: Vec<Rule> = hits.iter().map(|&(r, _)| r).collect();
    assert!(rules.contains(&Rule::Determinism), "got {hits:?}");
    // Wall clock, ambient rng, argless default rng, and hash iteration
    // must each be caught.
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Determinism)
        .map(|&(_, l)| l)
        .collect();
    assert!(lines.contains(&11), "Instant::now line, got {lines:?}");
    assert!(lines.contains(&12), "SimRng::default line, got {lines:?}");
    assert!(lines.contains(&13), "thread_rng line, got {lines:?}");
    assert!(lines.contains(&15), "HashMap iteration line, got {lines:?}");
}

#[test]
fn good_determinism_is_clean() {
    let hits = lint("good", "determinism", "crates/simcore/src/fixture.rs", 0);
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn determinism_only_applies_to_sim_crates() {
    // The same bad source in a non-simulation crate is out of scope.
    let hits = lint("bad", "determinism", "crates/features/src/fixture.rs", 0);
    assert!(
        !hits.iter().any(|&(r, _)| r == Rule::Determinism),
        "got {hits:?}"
    );
}

#[test]
fn harness_crate_gets_the_wall_clock_half_only() {
    // In the bench crate only the wall-clock check applies: Instant
    // (line 11) fires, while ambient RNG (13) and hash-order iteration
    // (15) are the simulation crates' concern.
    let hits = lint("bad", "determinism", "crates/bench/src/lib.rs", 0);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Determinism)
        .map(|&(_, l)| l)
        .collect();
    assert!(lines.contains(&11), "Instant::now line, got {lines:?}");
    assert!(
        !lines.contains(&13),
        "thread_rng out of scope, got {lines:?}"
    );
    assert!(
        !lines.contains(&15),
        "hash iteration out of scope, got {lines:?}"
    );
}

#[test]
fn perf_measurement_files_may_read_the_wall_clock() {
    for home in [
        "crates/bench/src/perf.rs",
        "crates/bench/src/bin/perf_smoke.rs",
    ] {
        let hits = lint("bad", "determinism", home, 0);
        assert!(
            !hits.iter().any(|&(r, _)| r == Rule::Determinism),
            "{home}: got {hits:?}"
        );
    }
}

#[test]
fn bad_units_fires() {
    let hits = lint("bad", "units", "crates/dnnsim/src/fixture.rs", 0);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Units)
        .map(|&(_, l)| l)
        .collect();
    assert!(lines.contains(&4), "base_ms * throttle, got {lines:?}");
    assert!(lines.contains(&5), "radio_mj + 1.5, got {lines:?}");
}

#[test]
fn good_units_is_clean() {
    let hits = lint("good", "units", "crates/dnnsim/src/fixture.rs", 0);
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn units_exempts_the_newtype_home() {
    let hits = lint("bad", "units", "crates/simcore/src/units.rs", 0);
    assert!(!hits.iter().any(|&(r, _)| r == Rule::Units), "got {hits:?}");
}

#[test]
fn bad_counters_fires() {
    let hits = lint("bad", "counters", "crates/reuse/src/fixture.rs", 0);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Counters)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(lines, vec![9, 10, 14], "lookups, hits, messages_sent");
}

#[test]
fn good_counters_is_clean() {
    let hits = lint("good", "counters", "crates/reuse/src/fixture.rs", 0);
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn counters_exempts_the_registry_itself() {
    let hits = lint("bad", "counters", "crates/reuse/src/stats.rs", 0);
    assert!(
        !hits.iter().any(|&(r, _)| r == Rule::Counters),
        "got {hits:?}"
    );
}

#[test]
fn bad_panics_exceeds_a_zero_budget() {
    let hits = lint("bad", "panics", "crates/reuse/src/fixture.rs", 0);
    assert!(hits.iter().any(|&(r, _)| r == Rule::Panics), "got {hits:?}");
}

#[test]
fn bad_panics_fits_a_sufficient_budget() {
    // The fixture has exactly three sites: one index, one expect, one
    // unwrap. A budget of three admits it; two does not.
    let hits = lint("bad", "panics", "crates/reuse/src/fixture.rs", 3);
    assert!(
        !hits.iter().any(|&(r, _)| r == Rule::Panics),
        "got {hits:?}"
    );
    let hits = lint("bad", "panics", "crates/reuse/src/fixture.rs", 2);
    assert!(hits.iter().any(|&(r, _)| r == Rule::Panics), "got {hits:?}");
}

#[test]
fn good_panics_is_clean_at_zero() {
    let hits = lint("good", "panics", "crates/reuse/src/fixture.rs", 0);
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn panics_only_applies_to_hot_path_crates() {
    let (hits, count) = lint_source(
        "crates/workloads/src/fixture.rs",
        &fixture("bad", "panics"),
        0,
    );
    assert!(count.is_none());
    assert!(!hits.iter().any(|v| v.rule == Rule::Panics), "got {hits:?}");
}

#[test]
fn bad_locks_fires() {
    let hits = lint("bad", "locks", "crates/reuse/src/concurrent/fixture.rs", 0);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|&&(r, _)| r == Rule::Locks)
        .map(|&(_, l)| l)
        .collect();
    assert!(lines.contains(&7), "lock under a live guard, got {lines:?}");
    assert!(
        lines.contains(&12),
        "second lock in one statement, got {lines:?}"
    );
    assert!(
        !lines.contains(&18),
        "allow marker must cover the justified pair, got {lines:?}"
    );
}

#[test]
fn good_locks_is_clean() {
    let hits = lint("good", "locks", "crates/reuse/src/concurrent/fixture.rs", 0);
    assert!(hits.is_empty(), "got {hits:?}");
}

#[test]
fn locks_only_applies_to_the_concurrent_core() {
    // The same bad source elsewhere in reuse is out of scope.
    let hits = lint("bad", "locks", "crates/reuse/src/store.rs", 0);
    assert!(!hits.iter().any(|&(r, _)| r == Rule::Locks), "got {hits:?}");
}

#[test]
fn violations_render_with_location_rule_and_hint() {
    let (violations, _) = lint_source(
        "crates/reuse/src/fixture.rs",
        &fixture("bad", "counters"),
        0,
    );
    let rendered = violations[0].to_string();
    assert!(rendered.starts_with("crates/reuse/src/fixture.rs:9: [counters]"));
    assert!(rendered.contains("fix:"), "{rendered}");
}
