//! The lint rules: determinism (D), unit-safety (U), trace-counter
//! discipline (T), panic hygiene (P), lock discipline (L), seed-split
//! discipline (S), and hot-path allocations (A). The cross-file rules —
//! the lock-order graph (G) and the counter census behind the upgraded
//! rule T — live in [`crate::model`].
//!
//! Per-file rules run on the token stream from [`crate::lexer`], with
//! the structural rules consulting the token tree ([`crate::tree`]) for
//! fn/impl boundaries and receiver chains. All rules skip
//! `#[cfg(test)]` / `#[test]` regions and honour
//! `// xtask-allow(<rule>): <reason>` escape hatches. The heuristics are
//! deliberately simple; where a rule cannot be sure, it prefers a
//! justified allow-comment over silence, because every allow carries its
//! reason in the diff.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Lexed, Token, TokenKind};
use crate::tree::{receiver_chain, Tree};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D: no wall-clock, ambient randomness, or hash-order dependence in
    /// simulation crates.
    Determinism,
    /// U: no raw arithmetic on unit-suffixed identifiers; the unit lives
    /// in the type, not the name.
    Units,
    /// T: counter fields are incremented through registry helpers only.
    Counters,
    /// P: panic sites on hot paths are budgeted and only shrink.
    Panics,
    /// L: fast-path lexical pre-check — the concurrent store never
    /// holds two shard locks in one statement / under a live guard.
    Locks,
    /// G: the cross-file lock-order graph over the concurrent core is
    /// acyclic (subsumes L's heuristic; L stays as the cheap pre-check).
    LockGraph,
    /// S: sibling `split(..)` / `split_index(..)` labels are unique per
    /// parent scope — a duplicate silently correlates two RNG streams.
    SeedSplit,
    /// A: no allocation in the designated hot-path fns.
    Alloc,
}

impl Rule {
    /// The id used in reports and `xtask-allow(...)` markers.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::Units => "units",
            Rule::Counters => "counters",
            Rule::Panics => "panics",
            Rule::Locks => "locks",
            Rule::LockGraph => "lock-graph",
            Rule::SeedSplit => "seed-split",
            Rule::Alloc => "alloc",
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Repo-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    fix: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message,
            self.hint
        )
    }
}

/// Simulation crates where rule D applies: anything whose output feeds a
/// seeded, replayable run.
const SIM_CRATES: &[&str] = &[
    "simcore",
    "approxcache",
    "reuse",
    "dnnsim",
    "scene",
    "workloads",
    "edge",
];

/// The edge crate's service runtime: the threaded HTTP server and its
/// blocking client drive real sockets with read/write deadlines, so
/// wall-clock reads are their job and rule D stays out entirely. The
/// protocol, codec, and cache half of the crate feeds seeded sim runs
/// and is held to the full rule.
const SERVICE_RUNTIME_FILES: &[&str] = &["crates/edge/src/server.rs", "crates/edge/src/client.rs"];

/// Individual harness files held to the *full* rule D even though their
/// crate is not a simulation crate: the sweep orchestrator's cell seeds
/// and resume-merge must replay byte-identically, so it gets the RNG
/// and hash-order checks too.
const SIM_FILES: &[&str] = &["crates/bench/src/sweep.rs"];

/// Harness crates where only rule D's wall-clock check applies: their
/// results must not depend on host timing, but they orchestrate rather
/// than simulate, so the RNG and hash-order checks stay out.
const WALL_CLOCK_CRATES: &[&str] = &["bench"];

/// The one legitimate home of wall-clock reads: perf measurement code,
/// whose whole job is timing real execution. Everything else in
/// [`WALL_CLOCK_CRATES`] must stay on simulated time.
const WALL_CLOCK_MEASUREMENT_FILES: &[&str] = &[
    "crates/bench/src/perf.rs",
    "crates/bench/src/bin/perf_smoke.rs",
];

/// Split labels reserved for one home file. The fleet engine's lane
/// streams own `"shard"`: a `split("shard")` anywhere else would read
/// as (and could silently correlate with) a per-shard stream, so rule S
/// rejects it outright, and inside the home file the label is keyed
/// file-globally — two `"shard"` sites in different fns still collide.
const RESERVED_SPLIT_LABELS: &[(&str, &str)] = &[("\"shard\"", "crates/approxcache/src/fleet.rs")];

/// Hot-path crates where rule P applies.
const PANIC_CRATES: &[&str] = &["reuse", "approxcache", "p2pnet"];

/// Directory where rules L and G apply: the sharded store's concurrent
/// core. Its deadlock-freedom argument is that no thread ever holds two
/// shard locks at once, so every acquisition must be the only live one.
pub(crate) const LOCK_SCOPE_PREFIX: &str = "crates/reuse/src/concurrent/";

/// Files that *define* unit newtypes: raw-number arithmetic on unit
/// names is their job.
const UNIT_HOME_FILES: &[&str] = &["crates/simcore/src/units.rs", "crates/simcore/src/time.rs"];

/// One counter registry: the struct that owns the fields, the file it
/// lives in, and the fields whose increments must go through `record_*`
/// helpers. The per-file half of rule T uses the field names; the
/// cross-file census in [`crate::model`] additionally checks that each
/// field has exactly one helper and a reconciliation assertion site.
#[derive(Debug, Clone, Copy)]
pub struct CounterRegistry {
    /// Struct name (`impl` blocks are matched by this name).
    pub name: &'static str,
    /// Repo-relative path of the registry's home file.
    pub home: &'static str,
    /// The counter fields.
    pub fields: &'static [&'static str],
}

/// The four counter registries of the workspace. `EdgeCounters` shares
/// the field names `lookups`/`hits`/`inserts` with `CacheStats`; the
/// census attributes an increment to the registry whose `impl` block
/// encloses it, so the collision is harmless.
pub const COUNTER_REGISTRIES: &[CounterRegistry] = &[
    CounterRegistry {
        name: "CacheStats",
        home: "crates/reuse/src/stats.rs",
        fields: &[
            "lookups",
            "hits",
            "miss_empty",
            "miss_too_far",
            "miss_not_homogeneous",
            "miss_insufficient_support",
            "inserts",
            "refreshes",
            "rejected",
            "evictions",
            "removals",
            "expirations",
            "sketch_rejected",
            "weight_evictions",
        ],
    },
    CounterRegistry {
        name: "TransportCounters",
        home: "crates/p2pnet/src/transport.rs",
        fields: &[
            "messages_sent",
            "messages_delivered",
            "messages_lost",
            "bytes_sent",
        ],
    },
    CounterRegistry {
        name: "ResilienceCounters",
        home: "crates/p2pnet/src/faults.rs",
        fields: &[
            "outage_frames",
            "crashes",
            "poisoned_ads",
            "ad_retries",
            "ad_abandoned",
            "quarantines",
            "reprobes",
            "breaker_skips",
            "peer_fallbacks",
        ],
    },
    CounterRegistry {
        name: "EdgeCounters",
        home: "crates/edge/src/cache.rs",
        fields: &[
            "batches",
            "lookups",
            "hits",
            "inserts",
            "gossip_entries",
            "overloads",
            "queries_sent",
            "query_timeouts",
            "hits_adopted",
        ],
    },
];

/// True when `path` is a counter registry's home file.
pub(crate) fn is_counter_home(path: &str) -> bool {
    COUNTER_REGISTRIES.iter().any(|r| r.home == path)
}

/// The registry owning `field`, if any.
pub(crate) fn registry_of(field: &str) -> Option<&'static CounterRegistry> {
    COUNTER_REGISTRIES
        .iter()
        .find(|r| r.fields.contains(&field))
}

/// Everything the rules know about one file.
#[derive(Debug)]
pub struct FileContext {
    /// Repo-relative path with `/` separators.
    pub rel_path: String,
    lexed: Lexed,
    /// The token tree (delimiter matches, fn/impl boundaries).
    tree: Tree,
    /// Token-index ranges that are test code.
    test_ranges: Vec<(usize, usize)>,
    /// `(rule, first_line, last_line)` spans suppressed by allows.
    allows: Vec<(String, usize, usize)>,
}

impl FileContext {
    /// Lexes `source` and precomputes the token tree, test regions and
    /// allow spans.
    pub fn new(rel_path: &str, source: &str) -> FileContext {
        let lexed = lex(source);
        let tree = Tree::new(&lexed.tokens);
        let test_ranges = find_test_ranges(&lexed.tokens);
        let allows = find_allows(&lexed, source);
        FileContext {
            rel_path: rel_path.replace('\\', "/"),
            lexed,
            tree,
            test_ranges,
            allows,
        }
    }

    /// The crate name (`crates/<name>/…`), or "" outside `crates/`.
    fn crate_name(&self) -> &str {
        let mut parts = self.rel_path.split('/');
        match (parts.next(), parts.next()) {
            (Some("crates"), Some(name)) => name,
            _ => "",
        }
    }

    pub(crate) fn in_test(&self, token_idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| token_idx >= lo && token_idx <= hi)
    }

    pub(crate) fn allowed(&self, rule: Rule, line: usize) -> bool {
        self.allows
            .iter()
            .any(|(r, lo, hi)| r == rule.id() && line >= *lo && line <= *hi)
    }

    pub(crate) fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    pub(crate) fn tree(&self) -> &Tree {
        &self.tree
    }
}

/// Finds `#[cfg(test)]` / `#[test]` regions as token-index ranges
/// covering the gated item (attribute through matching close brace, or
/// the terminating semicolon for brace-less items).
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Collect idents inside the attribute.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut idents: Vec<&str> = Vec::new();
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                } else if tokens[j].kind == TokenKind::Ident {
                    idents.push(&tokens[j].text);
                }
                j += 1;
            }
            let gates_test =
                idents.iter().any(|s| *s == "test" || *s == "bench") && !idents.contains(&"not");
            if gates_test {
                // Skip to the item body: first `{` begins brace matching;
                // a `;` first means a brace-less item.
                let start = i;
                let mut k = j;
                let mut end = None;
                while k < tokens.len() {
                    if tokens[k].is_punct(';') {
                        end = Some(k);
                        break;
                    }
                    if tokens[k].is_punct('{') {
                        let mut brace = 1usize;
                        let mut m = k + 1;
                        while m < tokens.len() && brace > 0 {
                            if tokens[m].is_punct('{') {
                                brace += 1;
                            } else if tokens[m].is_punct('}') {
                                brace -= 1;
                            }
                            m += 1;
                        }
                        end = Some(m.saturating_sub(1));
                        break;
                    }
                    k += 1;
                }
                let end = end.unwrap_or(tokens.len().saturating_sub(1));
                ranges.push((start, end));
                i = end + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Extracts `// xtask-allow(<rule>): <reason>` markers. The allow spans
/// its own line through the end of the statement that follows: the first
/// subsequent non-comment line whose trimmed text ends with `;`, `{` or
/// `}` (multi-line builder chains stay covered).
fn find_allows(lexed: &Lexed, source: &str) -> Vec<(String, usize, usize)> {
    let lines: Vec<&str> = source.lines().collect();
    let mut allows = Vec::new();
    for comment in &lexed.comments {
        let Some(pos) = comment.text.find("xtask-allow(") else {
            continue;
        };
        let rest = &comment.text[pos + "xtask-allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let mut last = comment.line;
        for (offset, text) in lines.iter().enumerate().skip(comment.line) {
            let trimmed = text.trim();
            last = offset + 1;
            if trimmed.starts_with("//") || trimmed.is_empty() {
                continue;
            }
            if trimmed.ends_with(';') || trimmed.ends_with('{') || trimmed.ends_with('}') {
                break;
            }
        }
        allows.push((rule, comment.line, last));
    }
    allows
}

/// Runs the per-file rules (D, U, T's lexical half, L, S, A) on one
/// file, appending to `out`. The cross-file rules (G, T's census) run
/// in [`crate::model`] over the whole workspace.
pub fn check_file(ctx: &FileContext, out: &mut Vec<Violation>) {
    if ctx.crate_name() == "xtask" {
        return;
    }
    check_determinism(ctx, out);
    check_units(ctx, out);
    check_counters(ctx, out);
    check_locks(ctx, out);
    check_seed_splits(ctx, out);
    check_alloc(ctx, out);
}

fn push(
    ctx: &FileContext,
    out: &mut Vec<Violation>,
    rule: Rule,
    line: usize,
    message: String,
    hint: &'static str,
) {
    out.push(Violation {
        file: ctx.rel_path.clone(),
        line,
        rule,
        message,
        hint,
    });
}

/// Rule D. Flags wall-clock types, ambient RNG construction, and
/// iteration over identifiers declared as `HashMap`/`HashSet`. The full
/// rule applies to simulation crates (plus [`SIM_FILES`], minus the
/// [`SERVICE_RUNTIME_FILES`] that run real sockets); harness crates get
/// the wall-clock half only, with the perf measurement files carved
/// out.
fn check_determinism(ctx: &FileContext, out: &mut Vec<Violation>) {
    let sim = (SIM_CRATES.contains(&ctx.crate_name())
        && !SERVICE_RUNTIME_FILES.contains(&ctx.rel_path.as_str()))
        || SIM_FILES.contains(&ctx.rel_path.as_str());
    let wall_clock = sim
        || (WALL_CLOCK_CRATES.contains(&ctx.crate_name())
            && !WALL_CLOCK_MEASUREMENT_FILES.contains(&ctx.rel_path.as_str()));
    if !sim && !wall_clock {
        return;
    }
    let tokens = ctx.tokens();

    // Names declared with a HashMap/HashSet type ascription anywhere in
    // the file (fields and lets): `name : … HashMap`.
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over `path::` segments to the ascription colon, then
        // record the ascribed name: `name: [std::collections::]HashMap`.
        let mut j = i;
        while j >= 3
            && tokens[j - 1].is_punct(':')
            && tokens[j - 2].is_punct(':')
            && tokens[j - 3].kind == TokenKind::Ident
        {
            j -= 3;
        }
        if j >= 2
            && tokens[j - 1].is_punct(':')
            && !tokens[j - 2].is_punct(':')
            && tokens[j - 2].kind == TokenKind::Ident
        {
            hash_names.insert(&tokens[j - 2].text);
        }
    }

    const ORDERED_ITERS: &[&str] = &[
        "iter",
        "iter_mut",
        "values",
        "values_mut",
        "keys",
        "drain",
        "into_iter",
        "into_values",
        "into_keys",
    ];

    for (i, t) in tokens.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        let line = t.line;
        if wall_clock
            && (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && !ctx.allowed(Rule::Determinism, line)
        {
            push(
                ctx,
                out,
                Rule::Determinism,
                line,
                format!("wall-clock `{}` outside the perf measurement files", t.text),
                "use the simulated clock (simcore::SimTime); real timing belongs in \
                 crates/bench/src/perf.rs or the perf_smoke binary",
            );
        }
        if !sim {
            continue;
        }
        if (t.is_ident("thread_rng") || t.is_ident("from_entropy"))
            && !ctx.allowed(Rule::Determinism, line)
        {
            push(
                ctx,
                out,
                Rule::Determinism,
                line,
                format!("ambient randomness `{}` in a simulation crate", t.text),
                "derive randomness from the run seed: SimRng::seed(..) or rng.split(..)",
            );
        }
        // `SomethingRng::default()` — an unseeded generator.
        if t.kind == TokenKind::Ident
            && t.text.ends_with("Rng")
            && i + 3 < tokens.len()
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 3].is_ident("default")
            && !ctx.allowed(Rule::Determinism, line)
        {
            push(
                ctx,
                out,
                Rule::Determinism,
                line,
                format!("argless `{}::default()` hides the seed", t.text),
                "construct RNGs from an explicit seed derived from the run seed",
            );
        }
        // `hash_name.iter()` and friends.
        if t.kind == TokenKind::Ident
            && hash_names.contains(t.text.as_str())
            && i + 3 < tokens.len()
            && tokens[i + 1].is_punct('.')
            && tokens[i + 2].kind == TokenKind::Ident
            && ORDERED_ITERS.contains(&tokens[i + 2].text.as_str())
            && tokens[i + 3].is_punct('(')
            && !ctx.allowed(Rule::Determinism, tokens[i + 2].line)
            && !ctx.allowed(Rule::Determinism, line)
        {
            push(
                ctx,
                out,
                Rule::Determinism,
                tokens[i + 2].line,
                format!(
                    "iteration over hash-ordered `{}.{}()` can leak HashMap order into results",
                    t.text,
                    tokens[i + 2].text
                ),
                "aggregate order-free, sort before use, switch to BTreeMap, or justify with \
                 `// xtask-allow(determinism): <reason>`",
            );
        }
    }
}

/// True when `name` encodes a physical unit this workspace newtypes.
///
/// Deliberately suffix-only: a unit suffix marks a *raw* magnitude (the
/// naming convention for bare `f64`s), which is the trap. Bare
/// `latency`/`energy` identifiers are the refactored state — values of
/// `SimDuration`/`Millis`/`Millijoules` whose operator arithmetic is
/// type-checked — and a lexical rule cannot tell those apart from raw
/// floats, so matching them would flag exactly the code the newtypes
/// fixed.
fn is_unit_name(name: &str) -> bool {
    name.ends_with("_ms") || name.ends_with("_us") || name.ends_with("_mj")
}

/// Rule U. Flags `+ - * /` adjacent to unit-suffixed identifiers outside
/// the newtype home modules: raw numbers named `_ms`/`_us`/`_mj` are the
/// trap the `Millis`/`Micros`/`Millijoules` newtypes exist to remove.
fn check_units(ctx: &FileContext, out: &mut Vec<Violation>) {
    if UNIT_HOME_FILES.contains(&ctx.rel_path.as_str())
        || ctx.rel_path.starts_with("crates/bench/src/bin/")
    {
        return;
    }
    let tokens = ctx.tokens();
    let ops = ['+', '-', '*', '/'];
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !is_unit_name(&t.text) || ctx.in_test(i) {
            continue;
        }
        let prev_op = i > 0
            && ops
                .iter()
                .any(|&c| tokens[i - 1].is_punct(c))
            // `*const`/`*mut`-style derefs and `->` arrows are not math.
            && !(tokens[i - 1].is_punct('-')
                && i > 1
                && (tokens[i - 2].is_punct(',')
                    || tokens[i - 2].is_punct('(')
                    || tokens[i - 2].is_punct('=')));
        let next_op = i + 1 < tokens.len()
            && ops.iter().any(|&c| tokens[i + 1].is_punct(c))
            // `a_ms / 2` is math; `a_ms ->` or `a_ms *=`-less contexts
            // like `..` are filtered by the single-char match already.
            && !(tokens[i + 1].is_punct('-')
                && i + 2 < tokens.len()
                && tokens[i + 2].is_punct('>'));
        if (prev_op || next_op) && !ctx.allowed(Rule::Units, t.line) {
            push(
                ctx,
                out,
                Rule::Units,
                t.line,
                format!("raw arithmetic on unit-suffixed `{}`", t.text),
                "wrap the value in simcore::units (Millis/Micros/Millijoules) — the unit \
                 belongs in the type, not the name",
            );
        }
    }
}

/// Rule T (lexical half). Flags `.field += …` for counter-registry
/// fields outside the registry home files: stats must flow through
/// `record_*` helpers so balance invariants run at every increment. The
/// home files get the sharper impl-scoped census in [`crate::model`].
fn check_counters(ctx: &FileContext, out: &mut Vec<Violation>) {
    if is_counter_home(&ctx.rel_path) {
        return;
    }
    let tokens = ctx.tokens();
    for i in 0..tokens.len() {
        if !tokens[i].is_punct('.') || i + 3 >= tokens.len() || ctx.in_test(i) {
            continue;
        }
        let field = &tokens[i + 1];
        if field.kind != TokenKind::Ident || registry_of(field.ident_name()).is_none() {
            continue;
        }
        if tokens[i + 2].is_punct('+') && tokens[i + 3].is_punct('=') {
            if ctx.allowed(Rule::Counters, field.line) {
                continue;
            }
            push(
                ctx,
                out,
                Rule::Counters,
                field.line,
                format!(
                    "direct counter increment `.{} +=` bypasses the registry",
                    field.text
                ),
                "call the matching CacheStats::record_* / TransportCounters::record_* helper",
            );
        }
    }
}

/// Rule L. Flags a `.lock(` call while another guard binding is live in
/// an enclosing (or the same) scope, and a second `.lock(` within one
/// statement. The sharded store's per-shard mutexes are deadlock-free
/// precisely because no thread ever holds two of them; this rule makes
/// that invariant survive refactors.
///
/// A guard is considered live from the end of a statement of the exact
/// shape `let … = <expr>.lock();` until its enclosing block closes.
/// Statement-scoped temporaries (`…lock().len();`, chained in a larger
/// expression) are not registered — they die at the `;` — but still
/// count toward the one-lock-per-statement limit.
fn check_locks(ctx: &FileContext, out: &mut Vec<Violation>) {
    if !ctx.rel_path.starts_with(LOCK_SCOPE_PREFIX) {
        return;
    }
    let tokens = ctx.tokens();
    let mut depth = 0usize;
    // Registration depths of live guard bindings.
    let mut guards: Vec<usize> = Vec::new();
    // `.lock(` calls seen in the current statement so far.
    let mut locks_this_stmt = 0usize;
    // The current statement is a guard binding; register at its `;`.
    let mut register_at_semi = false;
    let mut has_let = false;

    // Depth bookkeeping must see every brace (including test code), so
    // only the violation reports are gated on `in_test`.
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
            (locks_this_stmt, register_at_semi, has_let) = (0, false, false);
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|&d| depth >= d);
            (locks_this_stmt, register_at_semi, has_let) = (0, false, false);
            continue;
        }
        if t.is_punct(';') {
            if register_at_semi {
                guards.push(depth);
            }
            (locks_this_stmt, register_at_semi, has_let) = (0, false, false);
            continue;
        }
        if t.is_ident("let") {
            has_let = true;
            continue;
        }
        if !(t.is_punct('.')
            && i + 2 < tokens.len()
            && tokens[i + 1].is_ident("lock")
            && tokens[i + 2].is_punct('('))
        {
            continue;
        }
        let line = tokens[i + 1].line;
        if (!guards.is_empty() || locks_this_stmt > 0)
            && !ctx.in_test(i)
            && !ctx.allowed(Rule::Locks, line)
        {
            push(
                ctx,
                out,
                Rule::Locks,
                line,
                "`.lock()` while another shard guard is live — holding two shard locks \
                 risks deadlock"
                    .to_owned(),
                "release the first guard before locking again (shard methods take exactly \
                 one lock), or justify with `// xtask-allow(locks): <reason>`",
            );
        }
        locks_this_stmt += 1;
        // Guard-binding shape: the lock call's matching `)` is followed
        // directly by `;`.
        if has_let {
            let mut j = i + 3;
            let mut paren = 1usize;
            while j < tokens.len() && paren > 0 {
                if tokens[j].is_punct('(') {
                    paren += 1;
                } else if tokens[j].is_punct(')') {
                    paren -= 1;
                }
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct(';') {
                register_at_semi = true;
            }
        }
    }
}

/// Rule S. The seed-split registry: every `split("…")` /
/// `split_index("…", i)` site is keyed by (enclosing fn, receiver
/// chain, method, label — plus the index argument for `split_index`);
/// two sites sharing a key derive the *same* child stream from the same
/// parent, silently correlating the RNG draws downstream. Non-literal
/// labels cannot be checked lexically and are skipped. Constructor
/// chains with a single literal argument (`SimRng::seed(7).split(..)`)
/// keep the literal in the parent key, so differently seeded banks with
/// the same label are not false positives. Labels in
/// [`RESERVED_SPLIT_LABELS`] are rejected outside their home file and
/// keyed file-globally inside it.
fn check_seed_splits(ctx: &FileContext, out: &mut Vec<Violation>) {
    let tokens = ctx.tokens();
    let tree = ctx.tree();
    // key -> (first line, sites so far)
    let mut sites: BTreeMap<(String, String, String, String), (usize, usize)> = BTreeMap::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_punct('.') || i + 3 >= tokens.len() || ctx.in_test(i) {
            continue;
        }
        let method = &tokens[i + 1];
        if !(method.is_ident("split") || method.is_ident("split_index"))
            || !tokens[i + 2].is_punct('(')
        {
            continue;
        }
        let label_tok = &tokens[i + 3];
        if label_tok.kind != TokenKind::Literal || !label_tok.text.starts_with('"') {
            continue;
        }
        // Reserved labels: outside the home file the split is rejected
        // outright; inside it the site is keyed file-globally (scope and
        // receiver dropped), so two sites in different fns still collide.
        let reserved = RESERVED_SPLIT_LABELS
            .iter()
            .find(|&&(label, _)| label == label_tok.text);
        if let Some(&(label, home)) = reserved {
            if ctx.rel_path != home {
                if !ctx.allowed(Rule::SeedSplit, method.line) {
                    push(
                        ctx,
                        out,
                        Rule::SeedSplit,
                        method.line,
                        format!(
                            "split label {label} is reserved for {home} — a stream split \
                             here would masquerade as a per-shard lane stream"
                        ),
                        "pick a label that names this stream's own purpose; \"shard\" \
                         belongs to the fleet engine's lane RNGs",
                    );
                }
                continue;
            }
        }
        let mut label = label_tok.text.clone();
        if method.is_ident("split_index") {
            // The index argument disambiguates: `("device", 0)` and
            // `("device", 1)` are distinct child streams.
            if let (Some(comma), Some(arg)) = (tokens.get(i + 4), tokens.get(i + 5)) {
                if comma.is_punct(',') {
                    label.push(',');
                    label.push_str(&arg.text);
                }
            }
        }
        let scope = if reserved.is_some() {
            "<file>".to_string()
        } else {
            tree.enclosing_fn(i)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| "<file>".to_string())
        };
        let mut recv = if reserved.is_some() {
            "<reserved>".to_string()
        } else {
            receiver_chain(tokens, tree, i)
        };
        // Constructor-chain parents: `receiver_chain` collapses call
        // groups, so `SimRng::seed(1).split("x")` and
        // `SimRng::seed(2).split("x")` would both key as
        // `SimRng::seed(_)` — distinct parent streams, not duplicates
        // (the index crates seed per-structure banks exactly this way).
        // When the call feeding the split takes a single literal
        // argument, keep the literal in the key; non-literal arguments
        // still collapse, so duplicated `seed(config.seed)` chains with
        // the same label are flagged as before.
        if reserved.is_none() && i > 0 && tokens[i - 1].is_punct(')') {
            if let Some(open) = tree.match_of(i - 1) {
                if open + 2 == i - 1 && tokens[open + 1].kind == TokenKind::Literal {
                    recv.push('#');
                    recv.push_str(&tokens[open + 1].text);
                }
            }
        }
        let line = method.line;
        let key = (scope, recv, method.ident_name().to_string(), label);
        match sites.get_mut(&key) {
            None => {
                sites.insert(key, (line, 1));
            }
            Some((first, n)) => {
                *n += 1;
                if ctx.allowed(Rule::SeedSplit, line) {
                    continue;
                }
                let (scope, recv, method, label) = &key;
                push(
                    ctx,
                    out,
                    Rule::SeedSplit,
                    line,
                    format!(
                        "duplicate sibling seed split `{recv}.{method}({label})` in `{scope}` \
                         — first at line {first}; identical labels derive identical child \
                         streams"
                    ),
                    "give every sibling split a unique label (or index); a duplicate \
                     silently correlates two RNG streams",
                );
            }
        }
    }
}

/// Fns that are hot-path everywhere: the per-frame A-kNN kernels plus
/// the per-lookup index internals they fan out to (the NSW beam search,
/// the kd-tree recursion, the flat-buffer re-rank and query
/// quantization). All of these run on every cache lookup; the scratch
/// plumbing exists precisely so they stay allocation-free.
const HOT_FNS_ANYWHERE: &[&str] = &[
    "nearest_into",
    "decide_in",
    "beam_search_into",
    "search_into",
    "rerank_rows_into",
    "quantize_query_into",
];

/// Fns that are hot-path within the concurrent core (shard operations
/// executed under the shard lock).
const HOT_FNS_CONCURRENT: &[&str] = &["lookup", "insert"];

/// Allocation patterns rule A flags inside hot fns.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "collect"];

/// Rule A. Flags allocations (`Vec::new`, `Box::new`, `format!`,
/// `vec!`, `.clone()`, `.to_vec()`, `.collect()`) inside the designated
/// hot-path fn bodies. These fns run per frame — `nearest_into` /
/// `decide_in` on every lookup, shard `lookup` / `insert` under the
/// shard lock — and the flat-buffer kernels exist precisely so they
/// stay allocation-free.
fn check_alloc(ctx: &FileContext, out: &mut Vec<Violation>) {
    let tokens = ctx.tokens();
    let concurrent = ctx.rel_path.starts_with(LOCK_SCOPE_PREFIX);
    for f in ctx.tree().fns() {
        let hot = HOT_FNS_ANYWHERE.contains(&f.name.as_str())
            || (concurrent && HOT_FNS_CONCURRENT.contains(&f.name.as_str()));
        let Some((lo, hi)) = f.body.filter(|_| hot) else {
            continue;
        };
        for i in lo..=hi.min(tokens.len().saturating_sub(1)) {
            if ctx.in_test(i) {
                continue;
            }
            let t = &tokens[i];
            let what = if (t.is_ident("Vec") || t.is_ident("Box"))
                && i + 3 < tokens.len()
                && tokens[i + 1].is_punct(':')
                && tokens[i + 2].is_punct(':')
                && tokens[i + 3].is_ident("new")
            {
                Some(format!("{}::new", t.ident_name()))
            } else if (t.is_ident("format") || t.is_ident("vec"))
                && i + 1 < tokens.len()
                && tokens[i + 1].is_punct('!')
            {
                Some(format!("{}!", t.ident_name()))
            } else if t.is_punct('.')
                && i + 2 < tokens.len()
                && tokens[i + 1].kind == TokenKind::Ident
                && ALLOC_METHODS.contains(&tokens[i + 1].ident_name())
                && tokens[i + 2].is_punct('(')
            {
                Some(format!(".{}()", tokens[i + 1].ident_name()))
            } else {
                None
            };
            let Some(what) = what else { continue };
            let line = t.line;
            if ctx.allowed(Rule::Alloc, line) {
                continue;
            }
            push(
                ctx,
                out,
                Rule::Alloc,
                line,
                format!("allocation `{what}` in hot-path fn `{}`", f.name),
                "reuse a caller-provided or member scratch buffer (clear + extend); \
                 justify unavoidable cases with `// xtask-allow(alloc): <reason>`",
            );
        }
    }
}

/// Rule P's site census for one file: `.unwrap()`, `.expect(`, and index
/// expressions in non-test code. Returns the count (the caller compares
/// it against the checked-in budget).
pub fn count_panic_sites(ctx: &FileContext) -> usize {
    if !PANIC_CRATES.contains(&ctx.crate_name()) {
        return 0;
    }
    let tokens = ctx.tokens();
    let mut count = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        // `.unwrap(` / `.expect(`.
        if t.is_punct('.')
            && i + 2 < tokens.len()
            && (tokens[i + 1].is_ident("unwrap") || tokens[i + 1].is_ident("expect"))
            && tokens[i + 2].is_punct('(')
            && !ctx.allowed(Rule::Panics, tokens[i + 1].line)
        {
            count += 1;
        }
        // Index expressions: `[` directly after an ident, `)` or `]`.
        // Attributes (`#[…]`, `#![…]`) and macros (`vec![…]`) put a
        // punct before the bracket; `let [a, b] = …` destructuring and
        // array literals after keywords are not index expressions.
        const KEYWORDS: &[&str] = &[
            "let", "mut", "ref", "return", "in", "match", "if", "else", "as", "box", "move",
            "break", "continue", "while", "for", "loop", "where", "yield",
        ];
        if t.is_punct('[') && i > 0 && !ctx.allowed(Rule::Panics, t.line) {
            let prev = &tokens[i - 1];
            let indexes = (prev.kind == TokenKind::Ident
                && !KEYWORDS.contains(&prev.text.as_str()))
                || prev.is_punct(')')
                || prev.is_punct(']');
            if indexes {
                count += 1;
            }
        }
    }
    count
}

/// True when rule P applies to this file at all.
pub fn in_panic_scope(ctx: &FileContext) -> bool {
    PANIC_CRATES.contains(&ctx.crate_name())
}
