//! A minimal hand-rolled Rust lexer.
//!
//! The lint rules need just enough structure to reason about source
//! without parsing it: identifiers and punctuation with line numbers,
//! comments separated out (so `xtask-allow` markers and doc text never
//! look like code), and string/char literals collapsed to opaque tokens
//! (so `"unwrap"` inside a message is not an unwrap). No dependencies —
//! this must build offline from the vendored workspace alone.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// A single punctuation character.
    Punct,
    /// A string, char, byte, or numeric literal (content opaque).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// 1-indexed source line the token starts on.
    pub line: usize,
    /// The token text (a single char for punctuation; literals keep
    /// their raw text).
    pub text: String,
}

impl Token {
    /// True when the token is the identifier `name`. Raw identifiers
    /// compare by their unprefixed name: `r#unwrap` is `unwrap`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.ident_name() == name
    }

    /// The identifier text with any raw-identifier prefix stripped.
    pub fn ident_name(&self) -> &str {
        self.text.strip_prefix("r#").unwrap_or(&self.text)
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment (line or block), with its starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-indexed source line the comment starts on.
    pub line: usize,
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in order.
    pub tokens: Vec<Token>,
    /// Comments, in order.
    pub comments: Vec<Comment>,
}

/// Lexes `source`. Unterminated constructs are tolerated (the rest of
/// the file becomes one literal/comment) — a linter must never panic on
/// the code it inspects.
pub fn lex(source: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (incl. doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: chars[start..i.min(n)].iter().collect(),
            });
            continue;
        }
        // Raw (byte) strings: r"..", r#".."#, br##".."##.
        if c == 'r' || (c == 'b' && i + 1 < n && chars[i + 1] == 'r') {
            let r_at = if c == 'r' { i } else { i + 1 };
            let mut j = r_at + 1;
            let mut hashes = 0usize;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && chars[j] == '"' {
                let start = i;
                let start_line = line;
                j += 1;
                // Scan for the closing quote followed by `hashes` #s.
                'raw: while j < n {
                    if chars[j] == '\n' {
                        line += 1;
                    } else if chars[j] == '"' {
                        let mut k = 0;
                        while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line: start_line,
                    text: chars[start..j.min(n)].iter().collect(),
                });
                i = j;
                continue;
            }
            // Raw identifier `r#name`: one Ident token, so `.r#unwrap()`
            // still reads as an unwrap call and `r` `#` `name` never
            // masquerade as three tokens.
            if c == 'r' && hashes == 1 && j < n && (chars[j].is_alphabetic() || chars[j] == '_') {
                let start = i;
                i = j;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    line,
                    text: chars[start..i].iter().collect(),
                });
                continue;
            }
            // Not a raw string: fall through to the ident path.
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"') {
            let start = i;
            let start_line = line;
            i += if c == '"' { 1 } else { 2 };
            while i < n {
                match chars[i] {
                    // An escape consumes the next char — which may be the
                    // newline of a `\`-continuation and must still count,
                    // or every later line number drifts by one.
                    '\\' => {
                        if i + 1 < n && chars[i + 1] == '\n' {
                            line += 1;
                        }
                        i += 2;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                line: start_line,
                text: chars[start..i.min(n)].iter().collect(),
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_lifetime = i + 1 < n
                && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                && !(i + 2 < n && chars[i + 2] == '\'');
            if is_lifetime {
                let start = i;
                i += 1;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    line,
                    text: chars[start..i].iter().collect(),
                });
                continue;
            }
            let start = i;
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => {
                        if i + 1 < n && chars[i + 1] == '\n' {
                            line += 1;
                        }
                        i += 2;
                    }
                    '\'' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                line,
                text: chars[start..i.min(n)].iter().collect(),
            });
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Numeric literal (digits, underscores, a dot, exponents, and
        // type suffixes are swallowed greedily — the rules never look
        // inside numbers).
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (chars[i].is_alphanumeric()
                    || chars[i] == '_'
                    || (chars[i] == '.' && i + 1 < n && chars[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Everything else: single-char punctuation.
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            line,
            text: c.to_string(),
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_code_comments_and_strings() {
        let lexed = lex("let x = \"unwrap()\"; // xtask-allow(determinism): ok\nx.unwrap();");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("xtask-allow"));
        // The string is one opaque literal; the real unwrap is an ident.
        let unwraps: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .collect();
        assert_eq!(unwraps.len(), 1);
        assert_eq!(unwraps[0].line, 2);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let lexed = lex("fn f<'a>(s: &'a str) { let _ = r#\"expect(\"#; }");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Lifetime));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("expect")));
    }

    #[test]
    fn line_numbers_survive_block_comments() {
        let lexed = lex("/* one\ntwo\nthree */\nfoo");
        let foo = lexed.tokens.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!(foo.line, 4);
    }

    #[test]
    fn string_continuations_keep_line_numbers() {
        // `"x\` + newline continues the string; the skipped newline must
        // still advance the line counter or every later token drifts.
        let lexed = lex("let a = \"x\\\n y\";\nb.unwrap();");
        let unwrap = lexed.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 3);
    }

    #[test]
    fn raw_identifier_is_one_token() {
        let lexed = lex("x.r#unwrap()");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["x", ".", "r#unwrap", "(", ")"]);
        assert!(lexed.tokens[2].is_ident("unwrap"), "raw prefix stripped");
    }

    #[test]
    fn nested_block_comments_stay_comments() {
        let lexed = lex("/* a /* b */ still comment .unwrap( */ ok");
        assert_eq!(lexed.comments.len(), 1);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("ok")));
    }

    #[test]
    fn multiline_raw_strings_count_their_lines() {
        let lexed = lex("let s = r#\"one\ntwo\nexpect(\"#;\nz");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("expect")));
        let z = lexed.tokens.iter().find(|t| t.is_ident("z")).unwrap();
        assert_eq!(z.line, 4);
    }

    #[test]
    fn char_literal_is_not_a_lifetime() {
        let lexed = lex("let c = 'x'; let nl = '\\n';");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            2
        );
    }
}
