//! CLI entry point: `cargo run -p xtask -- lint [--fix-budget] [--json]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // The binary lives at crates/xtask; the repo root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--fix-budget] [--json]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, flags) = match args.split_first() {
        Some((cmd, flags)) => (cmd.as_str(), flags),
        None => return usage(),
    };
    if cmd != "lint" || flags.iter().any(|f| f != "--fix-budget" && f != "--json") {
        return usage();
    }
    let fix_budget = flags.iter().any(|f| f == "--fix-budget");
    let json = flags.iter().any(|f| f == "--json");

    let root = repo_root();
    let budget = match xtask::load_budget(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match xtask::lint_repo(&root, &budget) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: walking crates/: {e}");
            return ExitCode::FAILURE;
        }
    };

    if fix_budget {
        let next = budget.ratchet(&report.panic_counts);
        let path = root.join(xtask::BUDGET_PATH);
        if next == budget {
            println!("xtask: budget already tight (total {})", budget.total());
        } else if let Err(e) = std::fs::write(&path, next.to_toml()) {
            eprintln!("xtask: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        } else {
            println!(
                "xtask: budget ratcheted {} -> {} across {} files",
                budget.total(),
                next.total(),
                report.panic_counts.values().filter(|&&c| c > 0).count()
            );
        }
    }

    if json {
        println!("{}", report.to_json());
        return if report.clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for violation in &report.violations {
        println!("{violation}");
    }
    let observed: usize = report.panic_counts.values().sum();
    let cycles = report.lock_graph.cycles();
    println!(
        "xtask lint: {} files, {} violations, panic sites {} (budget {})",
        report.files_checked,
        report.violations.len(),
        observed,
        budget.total()
    );
    println!(
        "lock-order graph: {} nodes, {} edges, {}",
        report.lock_graph.nodes.len(),
        report.lock_graph.edges.len(),
        if cycles.is_empty() {
            "acyclic".to_string()
        } else {
            format!("{} cycle(s)", cycles.len())
        }
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
