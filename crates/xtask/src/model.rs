//! The cross-file model pass: facts no single file can prove.
//!
//! Two analyses live here, both built on the token tree:
//!
//! - **Rule G, the lock-order graph.** Over the concurrent core
//!   (`crates/reuse/src/concurrent/`), nodes are named lock sites (the
//!   normalized receiver chain of each `.lock()` call) and edges are
//!   acquired-while-held relations: a direct second acquisition under a
//!   live guard, or a lock acquired inside a fn called while a guard is
//!   held (call edges propagate one level deep, through `self.method(..)`
//!   and bare-fn calls resolved by name within the core). A cycle —
//!   including a self-edge, two acquisitions of the same lock family —
//!   is a deadlock risk; DFS certifies the graph acyclic.
//!
//! - **Rule T's census.** Each counter registry field must be
//!   incremented by exactly one `record_*` helper inside the registry's
//!   own `impl` block (plus `merge`), and at least one reconciliation
//!   assertion must exercise the field in the designated reconciliation
//!   files — otherwise a drifting counter would never fail a test.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::rules::{
    is_counter_home, registry_of, FileContext, Rule, Violation, COUNTER_REGISTRIES,
};
use crate::tree::receiver_chain;

/// Files whose `assert*!` spans count as reconciliation sites for the
/// counter census: the registry's own balance invariant and the
/// cross-crate trace-observability suite.
pub const RECONCILE_FILES: &[&str] = &["crates/reuse/src/stats.rs", "tests/trace_observability.rs"];

/// One acquired-while-held relation.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock held at the time.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// Fn the edge crossed through (call propagation), if any.
    pub via: Option<String>,
    /// Repo-relative file of the acquiring site.
    pub file: String,
    /// 1-indexed line of the acquiring site.
    pub line: usize,
}

/// The lock-order graph over the concurrent core.
#[derive(Debug, Default, Clone)]
pub struct LockGraph {
    /// Sorted, deduplicated lock-site names.
    pub nodes: Vec<String>,
    /// Acquired-while-held edges.
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// All distinct cycles, each as the node sequence (first node
    /// repeated at the end). Deduplicated by node set.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let index: BTreeMap<&str, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            if let (Some(&f), Some(&t)) = (index.get(e.from.as_str()), index.get(e.to.as_str())) {
                if !adj[f].contains(&t) {
                    adj[f].push(t);
                }
            }
        }
        let mut cycles: Vec<Vec<String>> = Vec::new();
        let mut seen_sets: BTreeSet<Vec<usize>> = BTreeSet::new();
        // Colors: 0 white, 1 on the current path, 2 done.
        let mut color = vec![0u8; self.nodes.len()];
        let mut path: Vec<usize> = Vec::new();
        for start in 0..self.nodes.len() {
            if color[start] != 0 {
                continue;
            }
            // Iterative DFS with an explicit edge cursor per frame.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = 1;
            path.push(start);
            while let Some(top) = stack.last_mut() {
                let node = top.0;
                if top.1 < adj[node].len() {
                    let next = adj[node][top.1];
                    top.1 += 1;
                    match color[next] {
                        0 => {
                            color[next] = 1;
                            path.push(next);
                            stack.push((next, 0));
                        }
                        1 => {
                            // Back edge: the cycle is the path suffix
                            // from `next`.
                            let pos = path.iter().position(|&n| n == next).unwrap_or(0);
                            let mut ids: Vec<usize> = path[pos..].to_vec();
                            let mut key = ids.clone();
                            key.sort_unstable();
                            if seen_sets.insert(key) {
                                ids.push(next);
                                cycles.push(ids.iter().map(|&i| self.nodes[i].clone()).collect());
                            }
                        }
                        _ => {}
                    }
                } else {
                    color[node] = 2;
                    stack.pop();
                    path.pop();
                }
            }
        }
        cycles
    }

    /// A representative edge for the pair `from -> to`, if recorded.
    pub fn edge(&self, from: &str, to: &str) -> Option<&LockEdge> {
        self.edges.iter().find(|e| e.from == from && e.to == to)
    }
}

/// Lock facts extracted from one file's fn bodies.
#[derive(Debug, Default)]
struct LockFacts {
    /// fn name -> lock nodes it acquires directly, with their lines.
    acquires: BTreeMap<String, Vec<(String, String, usize)>>,
    /// (held node, acquired node, file, line) within one fn body.
    direct: Vec<(String, String, String, usize)>,
    /// (held node, callee fn name, file, line) — resolved one level.
    held_calls: Vec<(String, String, String, usize)>,
}

/// Keywords that can directly precede `(` without being a call.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "in", "move", "let", "else",
];

/// Walks one file's fns, mirroring rule L's guard-liveness bookkeeping
/// but keeping *names*: which lock is held, which lock or callee is
/// reached under it.
fn collect_lock_facts(ctx: &FileContext, facts: &mut LockFacts) {
    let tokens = ctx.tokens();
    let tree = ctx.tree();
    for f in tree.fns() {
        let Some((lo, hi)) = f.body else { continue };
        if ctx.in_test(lo) {
            continue;
        }
        let mut depth = 0usize;
        // (registration depth, node name) of live guard bindings.
        let mut guards: Vec<(usize, String)> = Vec::new();
        // Lock nodes acquired in the current statement.
        let mut stmt_locks: Vec<String> = Vec::new();
        let mut register_at_semi: Option<String> = None;
        let mut has_let = false;
        for i in lo..=hi.min(tokens.len().saturating_sub(1)) {
            let t = &tokens[i];
            if t.is_punct('{') {
                depth += 1;
                (stmt_locks, register_at_semi, has_let) = (Vec::new(), None, false);
                continue;
            }
            if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                guards.retain(|&(d, _)| depth >= d);
                (stmt_locks, register_at_semi, has_let) = (Vec::new(), None, false);
                continue;
            }
            if t.is_punct(';') {
                if let Some(node) = register_at_semi.take() {
                    guards.push((depth, node));
                }
                (stmt_locks, has_let) = (Vec::new(), false);
                continue;
            }
            if t.is_ident("let") {
                has_let = true;
                continue;
            }
            // `.lock(` acquisition.
            if t.is_punct('.')
                && i + 2 < tokens.len()
                && tokens[i + 1].is_ident("lock")
                && tokens[i + 2].is_punct('(')
            {
                let line = tokens[i + 1].line;
                let node = receiver_chain(tokens, tree, i);
                let suppressed = ctx.allowed(Rule::LockGraph, line)
                    || ctx.allowed(Rule::Locks, line)
                    || ctx.in_test(i);
                if !suppressed {
                    for held in guards.iter().map(|(_, n)| n).chain(stmt_locks.iter()) {
                        facts
                            .direct
                            .push((held.clone(), node.clone(), ctx.rel_path.clone(), line));
                    }
                    facts.acquires.entry(f.name.clone()).or_default().push((
                        node.clone(),
                        ctx.rel_path.clone(),
                        line,
                    ));
                }
                // Guard-binding shape: the call's `)` directly before `;`.
                if has_let {
                    if let Some(close) = tree.match_of(i + 2) {
                        if tokens.get(close + 1).is_some_and(|n| n.is_punct(';')) {
                            register_at_semi = Some(node.clone());
                        }
                    }
                }
                stmt_locks.push(node);
                continue;
            }
            // Call sites reached while a lock is held: `self.method(`
            // and bare `method(`. Other receivers are skipped — by-name
            // resolution cannot tell `shard.cache.lookup(..)` (the inner
            // store, no shard locks) from a shard method.
            if guards.is_empty() && stmt_locks.is_empty() {
                continue;
            }
            if t.kind != TokenKind::Ident
                || !tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                || CALL_KEYWORDS.contains(&t.ident_name())
            {
                continue;
            }
            let callee = t.ident_name().to_string();
            let bare = i == 0
                || !(tokens[i - 1].is_punct('.')
                    || tokens[i - 1].is_punct(':')
                    || tokens[i - 1].is_ident("fn"));
            let self_call = i >= 2 && tokens[i - 1].is_punct('.') && tokens[i - 2].is_ident("self");
            if !(bare || self_call) || ctx.in_test(i) {
                continue;
            }
            for held in guards.iter().map(|(_, n)| n).chain(stmt_locks.iter()) {
                facts
                    .held_calls
                    .push((held.clone(), callee.clone(), ctx.rel_path.clone(), t.line));
            }
        }
    }
}

/// Builds the lock-order graph over `files` (the concurrent core) and
/// reports every cycle as a rule-G violation.
pub fn lock_graph(files: &[&FileContext]) -> (LockGraph, Vec<Violation>) {
    let mut facts = LockFacts::default();
    for ctx in files {
        collect_lock_facts(ctx, &mut facts);
    }
    let mut graph = LockGraph::default();
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    for sites in facts.acquires.values() {
        for (node, _, _) in sites {
            nodes.insert(node.clone());
        }
    }
    for (from, to, file, line) in &facts.direct {
        graph.edges.push(LockEdge {
            from: from.clone(),
            to: to.clone(),
            via: None,
            file: file.clone(),
            line: *line,
        });
    }
    // One level of call propagation: a fn called under a held lock
    // contributes the locks it acquires directly.
    for (held, callee, file, line) in &facts.held_calls {
        let Some(sites) = facts.acquires.get(callee) else {
            continue;
        };
        for (node, _, _) in sites {
            graph.edges.push(LockEdge {
                from: held.clone(),
                to: node.clone(),
                via: Some(callee.clone()),
                file: file.clone(),
                line: *line,
            });
        }
    }
    graph.nodes = nodes.into_iter().collect();

    let mut violations = Vec::new();
    for cycle in graph.cycles() {
        let edge = cycle.windows(2).find_map(|w| graph.edge(&w[0], &w[1]));
        let (file, line, via) = match edge {
            Some(e) => (
                e.file.clone(),
                e.line,
                e.via
                    .as_ref()
                    .map(|v| format!(" (via fn `{v}`)"))
                    .unwrap_or_default(),
            ),
            None => (String::new(), 1, String::new()),
        };
        let message = if cycle.len() == 2 && cycle[0] == cycle[1] {
            format!(
                "lock-order cycle: `{}` acquired while already held{via} — two \
                 acquisitions of one lock family deadlock under contention",
                cycle[0]
            )
        } else {
            format!(
                "lock-order cycle: {}{via} — concurrent threads taking these locks in \
                 opposite orders deadlock",
                cycle.join(" -> ")
            )
        };
        violations.push(Violation {
            file,
            line,
            rule: Rule::LockGraph,
            message,
            hint: "impose one global acquisition order (or hold at most one shard lock); \
                   justify a provably ordered pair with `// xtask-allow(lock-graph): <reason>`",
        });
    }
    (graph, violations)
}

/// Assert-family macros whose spans count as reconciliation sites.
const ASSERT_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Counter census over the registry home files plus the reconciliation
/// files. See the module docs for the contract.
pub fn check_counter_registry(
    homes: &[&FileContext],
    reconciles: &[&FileContext],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    // (registry, field) -> record_* helpers that increment it.
    let mut helpers: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();

    for ctx in homes {
        if !is_counter_home(&ctx.rel_path) {
            continue;
        }
        let tokens = ctx.tokens();
        let tree = ctx.tree();
        for i in 0..tokens.len() {
            if !tokens[i].is_punct('.') || i + 3 >= tokens.len() || ctx.in_test(i) {
                continue;
            }
            let field = &tokens[i + 1];
            if field.kind != TokenKind::Ident
                || !tokens[i + 2].is_punct('+')
                || !tokens[i + 3].is_punct('=')
            {
                continue;
            }
            // Registries may share field names (`EdgeCounters` and
            // `CacheStats` both count `lookups`); attribute the
            // increment to the registry whose `impl` block encloses it
            // before falling back to the first name match.
            let impl_name = tree.enclosing_impl(i).map(|im| im.name.as_str());
            let by_impl = COUNTER_REGISTRIES
                .iter()
                .find(|r| Some(r.name) == impl_name && r.fields.contains(&field.ident_name()));
            let Some(registry) = by_impl.or_else(|| registry_of(field.ident_name())) else {
                continue;
            };
            let fn_name = tree.enclosing_fn(i).map(|f| f.name.as_str()).unwrap_or("");
            if impl_name == Some(registry.name) && registry.home == ctx.rel_path {
                if fn_name.starts_with("record_") {
                    helpers
                        .entry((registry.name.to_string(), field.ident_name().to_string()))
                        .or_default()
                        .insert(fn_name.to_string());
                } else if fn_name != "merge" && !ctx.allowed(Rule::Counters, field.line) {
                    violations.push(Violation {
                        file: ctx.rel_path.clone(),
                        line: field.line,
                        rule: Rule::Counters,
                        message: format!(
                            "registry `{}` increments its own `.{}` outside a `record_*` \
                             helper (in `{fn_name}`)",
                            registry.name,
                            field.ident_name()
                        ),
                        hint: "route the increment through the field's record_* helper so \
                               every increment runs the balance checks",
                    });
                }
            } else {
                // Another type in a home file touching a registry field:
                // its *own* field of the same name (receiver is plain
                // `self`, e.g. CircuitBreaker's lifetime totals) is
                // fine; reaching through a path into an embedded
                // registry is the bypass rule T exists to stop.
                let recv = receiver_chain(tokens, tree, i);
                if recv != "self" && !ctx.allowed(Rule::Counters, field.line) {
                    violations.push(Violation {
                        file: ctx.rel_path.clone(),
                        line: field.line,
                        rule: Rule::Counters,
                        message: format!(
                            "direct counter increment `{recv}.{} +=` bypasses the \
                             `{}` registry helpers",
                            field.ident_name(),
                            registry.name
                        ),
                        hint: "call the matching record_* helper on the registry instead \
                               of reaching into its fields",
                    });
                }
            }
        }
    }

    // Reconciliation sites: field idents inside assert-family spans.
    let mut reconciled: BTreeSet<String> = BTreeSet::new();
    for ctx in reconciles {
        let tokens = ctx.tokens();
        let tree = ctx.tree();
        for i in 0..tokens.len() {
            if tokens[i].kind != TokenKind::Ident
                || !ASSERT_MACROS.contains(&tokens[i].ident_name())
                || !tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
                || !tokens.get(i + 2).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            let Some(close) = tree.match_of(i + 2) else {
                continue;
            };
            for tok in &tokens[i + 3..close] {
                if tok.kind == TokenKind::Ident && registry_of(tok.ident_name()).is_some() {
                    reconciled.insert(tok.ident_name().to_string());
                }
            }
        }
    }

    // The census: exactly one helper, at least one reconciliation site.
    let homes_present: BTreeSet<&str> = homes.iter().map(|c| c.rel_path.as_str()).collect();
    for registry in COUNTER_REGISTRIES {
        if !homes_present.contains(registry.home) {
            continue; // fixture runs lint a single home file at a time
        }
        let decl_line = |field: &str| {
            homes
                .iter()
                .find(|c| c.rel_path == registry.home)
                .and_then(|c| {
                    c.tokens()
                        .iter()
                        .find(|t| t.is_ident(field))
                        .map(|t| t.line)
                })
                .unwrap_or(1)
        };
        for field in registry.fields {
            let count = helpers
                .get(&(registry.name.to_string(), field.to_string()))
                .map(BTreeSet::len)
                .unwrap_or(0);
            if count != 1 {
                violations.push(Violation {
                    file: registry.home.to_string(),
                    line: decl_line(field),
                    rule: Rule::Counters,
                    message: format!(
                        "registry `{}` field `{field}` has {count} record_* helpers \
                         (want exactly one)",
                        registry.name
                    ),
                    hint: "give every counter field exactly one record_* helper; merge \
                           stays the one sanctioned bulk path",
                });
            }
            if !reconciled.contains(*field) && !reconciles.is_empty() {
                violations.push(Violation {
                    file: registry.home.to_string(),
                    line: decl_line(field),
                    rule: Rule::Counters,
                    message: format!(
                        "registry `{}` field `{field}` has no reconciliation assertion \
                         in {}",
                        registry.name,
                        RECONCILE_FILES.join(" / ")
                    ),
                    hint: "assert a conservation relation over the field (see \
                           tests/trace_observability.rs) so a drifting counter fails a test",
                });
            }
        }
    }
    violations
}
