//! The panic-site budget: a checked-in per-file allowance that only
//! ratchets downward.
//!
//! Stored as a tiny TOML subset (`crates/xtask/panic_budget.toml`):
//! comments, a `[budget]` header, and `"path" = count` lines. Parsed by
//! hand — the vendored workspace has no TOML crate, and the format is
//! deliberately too small to need one.

use std::collections::BTreeMap;

/// Per-file allowed panic-site counts, keyed by repo-relative path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PanicBudget {
    entries: BTreeMap<String, usize>,
}

impl PanicBudget {
    /// Parses the budget file. Unknown lines are errors — a malformed
    /// budget silently allowing everything would defeat the ratchet.
    pub fn parse(text: &str) -> Result<PanicBudget, String> {
        let mut entries = BTreeMap::new();
        let mut in_budget = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[budget]" {
                in_budget = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "panic_budget.toml:{}: unknown table {line}",
                    idx + 1
                ));
            }
            if !in_budget {
                return Err(format!(
                    "panic_budget.toml:{}: entry outside [budget]",
                    idx + 1
                ));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "panic_budget.toml:{}: expected `\"path\" = n`",
                    idx + 1
                ));
            };
            let key = key.trim();
            let key = key
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("panic_budget.toml:{}: path must be quoted", idx + 1))?;
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("panic_budget.toml:{}: bad count {value}", idx + 1))?;
            entries.insert(key.to_string(), count);
        }
        Ok(PanicBudget { entries })
    }

    /// Serializes back to the canonical file text (sorted, commented).
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# Per-file allowance of panic sites (`unwrap`/`expect`/indexing) in\n\
             # non-test hot-path code, enforced by `cargo run -p xtask -- lint`.\n\
             # The budget only shrinks: burn a site down, then run\n\
             # `cargo run -p xtask -- lint --fix-budget` to lock in the gain.\n\
             \n[budget]\n",
        );
        for (path, count) in &self.entries {
            out.push_str(&format!("\"{path}\" = {count}\n"));
        }
        out
    }

    /// The allowance for `path` (0 when absent).
    pub fn allowed(&self, path: &str) -> usize {
        self.entries.get(path).copied().unwrap_or(0)
    }

    /// Total allowance across all files.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    /// Ratchets against observed `counts`: existing entries may only
    /// shrink (`min(old, observed)`); files new to the census enter at
    /// their observed count; files with zero observed sites drop out.
    pub fn ratchet(&self, counts: &BTreeMap<String, usize>) -> PanicBudget {
        let mut entries = BTreeMap::new();
        for (path, &count) in counts {
            if count == 0 {
                continue;
            }
            let new = match self.entries.get(path) {
                Some(&old) => old.min(count),
                None => count,
            };
            entries.insert(path.clone(), new);
        }
        PanicBudget { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let text = "# comment\n\n[budget]\n\"crates/a/src/x.rs\" = 3\n\"crates/b/src/y.rs\" = 1\n";
        let budget = PanicBudget::parse(text).unwrap();
        assert_eq!(budget.allowed("crates/a/src/x.rs"), 3);
        assert_eq!(budget.allowed("crates/missing.rs"), 0);
        assert_eq!(budget.total(), 4);
        let reparsed = PanicBudget::parse(&budget.to_toml()).unwrap();
        assert_eq!(reparsed, budget);
    }

    #[test]
    fn ratchet_only_shrinks() {
        let budget = PanicBudget::parse("[budget]\n\"a.rs\" = 3\n\"gone.rs\" = 2\n").unwrap();
        let mut counts = BTreeMap::new();
        counts.insert("a.rs".to_string(), 5); // grew: keep the old cap
        counts.insert("new.rs".to_string(), 2); // new file: enters as-is
        counts.insert("gone.rs".to_string(), 0); // clean now: drops out
        let next = budget.ratchet(&counts);
        assert_eq!(next.allowed("a.rs"), 3);
        assert_eq!(next.allowed("new.rs"), 2);
        assert_eq!(next.allowed("gone.rs"), 0);
        assert_eq!(next.total(), 5);
    }

    #[test]
    fn rejects_malformed_budgets() {
        assert!(PanicBudget::parse("\"a.rs\" = 1\n").is_err());
        assert!(PanicBudget::parse("[budget]\na.rs = 1\n").is_err());
        assert!(PanicBudget::parse("[budget]\n\"a.rs\" = x\n").is_err());
        assert!(PanicBudget::parse("[other]\n").is_err());
    }
}
