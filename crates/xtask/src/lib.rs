//! Workspace lint driver: static checks the compiler cannot express.
//!
//! `cargo run -p xtask -- lint` walks every `crates/*/src/**/*.rs` (plus
//! the designated reconciliation test files) and enforces the repo
//! invariants (see DESIGN.md, "Invariants & static checks"):
//!
//! - **D determinism** — no wall clock, ambient RNG, or hash-order
//!   dependence in simulation crates.
//! - **U unit-safety** — no raw arithmetic on `_ms`/`_us`/`_mj`-suffixed
//!   identifiers; units live in `simcore::units` newtypes.
//! - **T trace-counter discipline** — counter fields increment only
//!   through `record_*` registry helpers, every field has exactly one
//!   helper, and every field has a reconciliation assertion site.
//! - **P panic hygiene** — `unwrap`/`expect`/indexing on hot paths is
//!   budgeted by `panic_budget.toml`, and the budget only shrinks.
//! - **L lock discipline** — fast lexical pre-check: the concurrent core
//!   never holds two shard locks in one statement / under a live guard.
//! - **G lock-order graph** — the cross-file acquired-while-held graph
//!   over `reuse::concurrent` is certified acyclic (subsumes L).
//! - **S seed-split discipline** — sibling `split(..)` labels are unique
//!   per parent scope, so no two RNG child streams silently correlate.
//! - **A hot-path allocations** — the per-frame kernels and shard
//!   operations stay allocation-free.
//!
//! The per-file rules run lexically over the token stream; the
//! structural rules (G, S, A, T's census) sit on the token tree
//! ([`tree`]) and the cross-file model pass ([`model`]). Escape hatch:
//! `// xtask-allow(<rule>): <reason>` on the line above a flagged
//! statement. Built dependency-free on a hand-rolled lexer so it works
//! offline from the vendored workspace alone.

pub mod budget;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod tree;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use budget::PanicBudget;
use model::LockGraph;
use rules::{FileContext, Rule, Violation, LOCK_SCOPE_PREFIX};

/// Where the panic budget lives, relative to the repo root.
pub const BUDGET_PATH: &str = "crates/xtask/panic_budget.toml";

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All violations, sorted by file then line.
    pub violations: Vec<Violation>,
    /// Observed panic-site counts per in-scope file (including zeros).
    pub panic_counts: BTreeMap<String, usize>,
    /// Files inspected.
    pub files_checked: usize,
    /// The lock-order graph over the concurrent core.
    pub lock_graph: LockGraph,
}

impl LintReport {
    /// True when the run found nothing.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as JSON (hand-rolled — xtask stays
    /// dependency-free). Schema:
    /// `{"clean": bool, "files_checked": n, "violations": [...],
    ///   "panic_sites": {...}, "lock_graph": {"acyclic": bool,
    ///   "nodes": [...], "edges": [...]}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str(&format!("  \"files_checked\": {},\n", self.files_checked));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \
                 \"hint\": {}}}",
                json_str(&v.file),
                v.line,
                json_str(v.rule.id()),
                json_str(&v.message),
                json_str(v.hint)
            ));
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"panic_sites\": {");
        let total: usize = self.panic_counts.values().sum();
        out.push_str(&format!("\n    \"total\": {total}"));
        for (file, count) in &self.panic_counts {
            out.push_str(&format!(",\n    {}: {count}", json_str(file)));
        }
        out.push_str("\n  },\n");
        let cycles = self.lock_graph.cycles();
        out.push_str("  \"lock_graph\": {\n");
        out.push_str(&format!("    \"acyclic\": {},\n", cycles.is_empty()));
        out.push_str("    \"nodes\": [");
        for (i, node) in self.lock_graph.nodes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(node));
        }
        out.push_str("],\n");
        out.push_str("    \"edges\": [");
        for (i, e) in self.lock_graph.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let via = match &e.via {
                Some(v) => json_str(v),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "\n      {{\"from\": {}, \"to\": {}, \"via\": {via}, \"site\": {}}}",
                json_str(&e.from),
                json_str(&e.to),
                json_str(&format!("{}:{}", e.file, e.line))
            ));
        }
        if !self.lock_graph.edges.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n");
        out.push_str("  }\n");
        out.push('}');
        out
    }
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lints one file's source against the per-file rules. `allowed_panics`
/// is the budget for this path. Returns the violations plus the observed
/// panic-site count (`None` when the file is outside rule P's scope) so
/// callers can ratchet. The cross-file rules (G, T's census) need the
/// whole workspace and run in [`lint_repo`] / [`model`].
pub fn lint_source(
    rel_path: &str,
    source: &str,
    allowed_panics: usize,
) -> (Vec<Violation>, Option<usize>) {
    let ctx = FileContext::new(rel_path, source);
    let mut violations = Vec::new();
    rules::check_file(&ctx, &mut violations);
    if !rules::in_panic_scope(&ctx) {
        return (violations, None);
    }
    let count = rules::count_panic_sites(&ctx);
    if count > allowed_panics {
        violations.push(Violation {
            file: ctx.rel_path.clone(),
            line: 1,
            rule: Rule::Panics,
            message: format!(
                "{count} panic sites (unwrap/expect/indexing) exceed the budget of \
                 {allowed_panics}"
            ),
            hint: "restructure with if-let/get/total_cmp; the budget in \
                   crates/xtask/panic_budget.toml only shrinks",
        });
    }
    (violations, Some(count))
}

/// Recursively collects `.rs` files under `dir`, sorted for stable
/// output.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut children: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            rs_files(&child, out)?;
        } else if child.extension().is_some_and(|e| e == "rs") {
            out.push(child);
        }
    }
    Ok(())
}

/// Runs the full lint — per-file rules plus the cross-file model pass —
/// over `repo_root`, using `budget` for rule P.
pub fn lint_repo(repo_root: &Path, budget: &PanicBudget) -> std::io::Result<LintReport> {
    let crates_dir = repo_root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut report = LintReport::default();
    // Contexts the cross-file pass needs a second look at: the
    // concurrent core (lock graph) and counter registry homes (census).
    let mut lock_ctxs: Vec<FileContext> = Vec::new();
    let mut home_ctxs: Vec<FileContext> = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&src, &mut files)?;
        for file in files {
            let rel = file
                .strip_prefix(repo_root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let source = std::fs::read_to_string(&file)?;
            let (violations, count) = lint_source(&rel, &source, budget.allowed(&rel));
            if let Some(count) = count {
                report.panic_counts.insert(rel.clone(), count);
            }
            report.violations.extend(violations);
            report.files_checked += 1;
            if rel.starts_with(LOCK_SCOPE_PREFIX) {
                lock_ctxs.push(FileContext::new(&rel, &source));
            }
            if rules::is_counter_home(&rel) {
                home_ctxs.push(FileContext::new(&rel, &source));
            }
        }
    }

    // Reconciliation files live outside `crates/*/src` (workspace-level
    // tests); read them directly. A missing file simply contributes no
    // assertion sites — the census then reports the uncovered fields.
    let mut reconcile_ctxs: Vec<FileContext> = Vec::new();
    for rel in model::RECONCILE_FILES {
        let path = repo_root.join(rel);
        if let Ok(source) = std::fs::read_to_string(&path) {
            reconcile_ctxs.push(FileContext::new(rel, &source));
        }
    }

    let lock_refs: Vec<&FileContext> = lock_ctxs.iter().collect();
    let (graph, graph_violations) = model::lock_graph(&lock_refs);
    report.lock_graph = graph;
    report.violations.extend(graph_violations);

    let home_refs: Vec<&FileContext> = home_ctxs.iter().collect();
    let reconcile_refs: Vec<&FileContext> = reconcile_ctxs.iter().collect();
    report
        .violations
        .extend(model::check_counter_registry(&home_refs, &reconcile_refs));

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Loads the checked-in budget (empty when the file does not exist yet).
pub fn load_budget(repo_root: &Path) -> Result<PanicBudget, String> {
    let path = repo_root.join(BUDGET_PATH);
    match std::fs::read_to_string(&path) {
        Ok(text) => PanicBudget::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(PanicBudget::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}
