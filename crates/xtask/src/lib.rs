//! Workspace lint driver: static checks the compiler cannot express.
//!
//! `cargo run -p xtask -- lint` walks every `crates/*/src/**/*.rs` and
//! enforces five repo invariants (see DESIGN.md, "Invariants & static
//! checks"):
//!
//! - **D determinism** — no wall clock, ambient RNG, or hash-order
//!   dependence in simulation crates.
//! - **U unit-safety** — no raw arithmetic on `_ms`/`_us`/`_mj`-suffixed
//!   identifiers; units live in `simcore::units` newtypes.
//! - **T trace-counter discipline** — counter fields increment only
//!   through their registry helpers.
//! - **P panic hygiene** — `unwrap`/`expect`/indexing on hot paths is
//!   budgeted by `panic_budget.toml`, and the budget only shrinks.
//! - **L lock discipline** — the sharded store's concurrent core never
//!   holds two shard locks at once (its deadlock-freedom argument).
//!
//! Escape hatch: `// xtask-allow(<rule>): <reason>` on the line above a
//! flagged statement. Built dependency-free on a hand-rolled lexer so it
//! works offline from the vendored workspace alone.

pub mod budget;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use budget::PanicBudget;
use rules::{FileContext, Rule, Violation};

/// Where the panic budget lives, relative to the repo root.
pub const BUDGET_PATH: &str = "crates/xtask/panic_budget.toml";

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All violations, sorted by file then line.
    pub violations: Vec<Violation>,
    /// Observed panic-site counts per in-scope file (including zeros).
    pub panic_counts: BTreeMap<String, usize>,
    /// Files inspected.
    pub files_checked: usize,
}

impl LintReport {
    /// True when the run found nothing.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lints one file's source against all rules. `allowed_panics` is the
/// budget for this path. Returns the violations plus the observed
/// panic-site count (`None` when the file is outside rule P's scope) so
/// callers can ratchet.
pub fn lint_source(
    rel_path: &str,
    source: &str,
    allowed_panics: usize,
) -> (Vec<Violation>, Option<usize>) {
    let ctx = FileContext::new(rel_path, source);
    let mut violations = Vec::new();
    rules::check_file(&ctx, &mut violations);
    if !rules::in_panic_scope(&ctx) {
        return (violations, None);
    }
    let count = rules::count_panic_sites(&ctx);
    if count > allowed_panics {
        violations.push(Violation {
            file: ctx.rel_path.clone(),
            line: 1,
            rule: Rule::Panics,
            message: format!(
                "{count} panic sites (unwrap/expect/indexing) exceed the budget of \
                 {allowed_panics}"
            ),
            hint: "restructure with if-let/get/total_cmp; the budget in \
                   crates/xtask/panic_budget.toml only shrinks",
        });
    }
    (violations, Some(count))
}

/// Recursively collects `.rs` files under `dir`, sorted for stable
/// output.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut children: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            rs_files(&child, out)?;
        } else if child.extension().is_some_and(|e| e == "rs") {
            out.push(child);
        }
    }
    Ok(())
}

/// Runs the full lint over `repo_root`, using `budget` for rule P.
pub fn lint_repo(repo_root: &Path, budget: &PanicBudget) -> std::io::Result<LintReport> {
    let crates_dir = repo_root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut report = LintReport::default();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&src, &mut files)?;
        for file in files {
            let rel = file
                .strip_prefix(repo_root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let source = std::fs::read_to_string(&file)?;
            let (violations, count) = lint_source(&rel, &source, budget.allowed(&rel));
            if let Some(count) = count {
                report.panic_counts.insert(rel, count);
            }
            report.violations.extend(violations);
            report.files_checked += 1;
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Loads the checked-in budget (empty when the file does not exist yet).
pub fn load_budget(repo_root: &Path) -> Result<PanicBudget, String> {
    let path = repo_root.join(BUDGET_PATH);
    match std::fs::read_to_string(&path) {
        Ok(text) => PanicBudget::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(PanicBudget::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}
