//! The token-tree layer: just enough structure over the flat token
//! stream for cross-statement reasoning — matched delimiters, `fn` item
//! boundaries, `impl` block boundaries, and receiver-chain naming.
//!
//! Deliberately not a parser: no `syn`, no grammar, no AST. The
//! structural rules (lock-order graph, seed-split registry, hot-path
//! allocation lint, counter census) only ever ask three questions —
//! "where does this bracket close?", "which fn/impl am I inside?", and
//! "what expression chain does this method call hang off?" — and each is
//! answerable from delimiter matching alone, which keeps the layer
//! dependency-free and tolerant of malformed input like the lexer below
//! it.

use crate::lexer::{Token, TokenKind};

/// One `fn` item: its name and the token range of its `{ … }` body.
#[derive(Debug, Clone)]
pub struct FnScope {
    /// The fn's name (raw-identifier prefix stripped).
    pub name: String,
    /// 1-indexed line of the name.
    pub line: usize,
    /// Token indices of the body's `{` and its matching `}`; `None` for
    /// brace-less declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
}

/// One `impl` block: the self-type name and its body token range.
#[derive(Debug, Clone)]
pub struct ImplScope {
    /// The last path segment of the implementing type (`ShardedCache`
    /// for `impl<L> fmt::Debug for ShardedCache<L>`).
    pub name: String,
    /// Token indices of the body's `{` and its matching `}`.
    pub body: (usize, usize),
}

/// The token tree for one file: delimiter matches plus item boundaries.
#[derive(Debug, Default)]
pub struct Tree {
    match_of: Vec<Option<usize>>,
    fns: Vec<FnScope>,
    impls: Vec<ImplScope>,
}

impl Tree {
    /// Builds the tree for `tokens`.
    pub fn new(tokens: &[Token]) -> Tree {
        let match_of = match_delimiters(tokens);
        let fns = find_fns(tokens, &match_of);
        let impls = find_impls(tokens, &match_of);
        Tree {
            match_of,
            fns,
            impls,
        }
    }

    /// The index of the delimiter matching the one at `idx` (either
    /// direction), when the file is well-formed around it.
    pub fn match_of(&self, idx: usize) -> Option<usize> {
        self.match_of.get(idx).copied().flatten()
    }

    /// All fn items, in source order.
    pub fn fns(&self) -> &[FnScope] {
        &self.fns
    }

    /// The innermost fn whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnScope> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(lo, hi)| idx > lo && idx < hi))
            .max_by_key(|f| f.body.map(|(lo, _)| lo))
    }

    /// The innermost impl block whose body contains token `idx`.
    pub fn enclosing_impl(&self, idx: usize) -> Option<&ImplScope> {
        self.impls
            .iter()
            .filter(|im| idx > im.body.0 && idx < im.body.1)
            .max_by_key(|im| im.body.0)
    }
}

/// Pairs `(`/`[`/`{` with their closers. Mismatched closers pop through
/// the stack (a linter must survive the code it inspects); unmatched
/// delimiters stay `None`.
fn match_delimiters(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut out = vec![None; tokens.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct || t.text.len() != 1 {
            continue;
        }
        match t.text.as_bytes()[0] as char {
            '(' => stack.push((')', i)),
            '[' => stack.push((']', i)),
            '{' => stack.push(('}', i)),
            c @ (')' | ']' | '}') => {
                while let Some((want, open)) = stack.pop() {
                    if want == c {
                        out[open] = Some(i);
                        out[i] = Some(open);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Finds every `fn` item. The body is the first top-level `{ … }` after
/// the name; parenthesized and bracketed groups in the signature are
/// skipped via the match table, and a `;` first means a declaration.
fn find_fns(tokens: &[Token], match_of: &[Option<usize>]) -> Vec<FnScope> {
    let mut fns = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") || i + 1 >= tokens.len() {
            continue;
        }
        let name_tok = &tokens[i + 1];
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn(u32) -> u32` pointer types have no name
        }
        let mut j = i + 2;
        let mut body = None;
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                body = match_of[j].map(|close| (j, close));
                break;
            }
            if tokens[j].is_punct(';') {
                break;
            }
            if tokens[j].is_punct('(') || tokens[j].is_punct('[') {
                if let Some(close) = match_of[j] {
                    j = close;
                }
            }
            j += 1;
        }
        fns.push(FnScope {
            name: name_tok.ident_name().to_string(),
            line: name_tok.line,
            body,
        });
    }
    fns
}

/// Finds every `impl` block and names it after the implementing type:
/// the last path segment before the body (after `for` in trait impls),
/// with generics and `where` clauses ignored.
fn find_impls(tokens: &[Token], match_of: &[Option<usize>]) -> Vec<ImplScope> {
    let mut impls = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("impl") {
            continue;
        }
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut naming = true;
        let mut name = String::new();
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('{') && angle <= 0 {
                if let Some(close) = match_of[j] {
                    if !name.is_empty() {
                        impls.push(ImplScope {
                            name: std::mem::take(&mut name),
                            body: (j, close),
                        });
                    }
                }
                break;
            }
            if t.is_punct(';') && angle <= 0 {
                break; // `impl Trait for Type;`-style malformed input
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle <= 0 && t.is_ident("for") {
                name.clear();
            } else if angle <= 0 && t.is_ident("where") {
                naming = false;
            } else if naming && angle <= 0 && t.kind == TokenKind::Ident {
                name = t.ident_name().to_string();
            }
            j += 1;
        }
    }
    impls
}

/// Names the receiver chain ending at the `.` (or field) token at
/// `dot_idx`, walking left: identifiers and `.`/`::` joins are kept,
/// call and index groups collapse to `(_)` / `[_]`. `self.shard(idx)`
/// becomes `self.shard(_)`; an unrecognizable receiver is `<expr>`.
pub fn receiver_chain(tokens: &[Token], tree: &Tree, dot_idx: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut owned: Vec<String> = Vec::new();
    let mut j = dot_idx;
    while j > 0 {
        let p = j - 1;
        let t = &tokens[p];
        if t.is_punct(')') || t.is_punct(']') {
            let Some(open) = tree.match_of(p) else { break };
            parts.push(if t.is_punct(')') { "(_)" } else { "[_]" });
            j = open;
            continue;
        }
        if t.kind == TokenKind::Ident {
            owned.push(t.ident_name().to_string());
            parts.push("\0"); // placeholder resolved below
            j = p;
            if j >= 1 && tokens[j - 1].is_punct('.') {
                parts.push(".");
                j -= 1;
                continue;
            }
            if j >= 2 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
                parts.push("::");
                j -= 2;
                continue;
            }
        }
        break;
    }
    if parts.is_empty() {
        return "<expr>".to_string();
    }
    let mut names = owned.iter();
    let mut out = String::new();
    for part in parts.iter().rev() {
        match *part {
            "\0" => out.push_str(names.next_back().map(String::as_str).unwrap_or("")),
            s => out.push_str(s),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn matches_nested_delimiters() {
        let lexed = lex("fn f(a: [u8; 2]) { g(h(1)); }");
        let tree = Tree::new(&lexed.tokens);
        let open = lexed.tokens.iter().position(|t| t.is_punct('{')).unwrap();
        let close = tree.match_of(open).unwrap();
        assert!(lexed.tokens[close].is_punct('}'));
        assert_eq!(tree.match_of(close), Some(open));
    }

    #[test]
    fn finds_fn_bodies_and_declarations() {
        let lexed = lex("trait T { fn decl(&self); } fn real(x: u32) -> u32 { x + 1 }");
        let tree = Tree::new(&lexed.tokens);
        let names: Vec<(&str, bool)> = tree
            .fns()
            .iter()
            .map(|f| (f.name.as_str(), f.body.is_some()))
            .collect();
        assert_eq!(names, vec![("decl", false), ("real", true)]);
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let lexed = lex("fn outer() { fn inner() { mark(); } }");
        let tree = Tree::new(&lexed.tokens);
        let mark = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("mark"))
            .unwrap();
        assert_eq!(tree.enclosing_fn(mark).unwrap().name, "inner");
    }

    #[test]
    fn impl_names_cover_trait_and_inherent_blocks() {
        let lexed = lex("impl CacheStats { fn a(&self) {} } \
             impl<L> fmt::Debug for ShardedCache<L> { fn b(&self) {} }");
        let tree = Tree::new(&lexed.tokens);
        let names: Vec<&str> = tree.impls.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["CacheStats", "ShardedCache"]);
        let a = lexed.tokens.iter().position(|t| t.is_ident("a")).unwrap();
        assert_eq!(tree.enclosing_impl(a).unwrap().name, "CacheStats");
    }

    #[test]
    fn receiver_chains_normalize_calls_and_indexes() {
        let lexed = lex("self.shard(idx).lock(); self.shards[i].lock(); guard.lock();");
        let tree = Tree::new(&lexed.tokens);
        let dots: Vec<usize> = lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|&(i, t)| {
                t.is_punct('.') && lexed.tokens.get(i + 1).is_some_and(|n| n.is_ident("lock"))
            })
            .map(|(i, _)| i)
            .collect();
        let chains: Vec<String> = dots
            .iter()
            .map(|&d| receiver_chain(&lexed.tokens, &tree, d))
            .collect();
        assert_eq!(chains, vec!["self.shard(_)", "self.shards[_]", "guard"]);
    }
}
