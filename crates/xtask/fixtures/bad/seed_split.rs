//! Known-bad fixture for rule S: sibling splits sharing a label.

fn build(root: &SimRng) {
    let a = root.split("device");
    let b = root.split("device");
    let c = root.split_index("peer", 0);
    let d = root.split_index("peer", 0);
    let ok = root.split_index("peer", 1);
    drop((a, b, c, d, ok));
}

fn justified(root: &SimRng) {
    let a = root.split("twin");
    // xtask-allow(seed-split): fixture justification for a deliberate twin
    let b = root.split("twin");
    drop((a, b));
}

fn index_banks(config: &LshConfig) {
    let planes = SimRng::seed(config.seed).split("lsh-planes");
    let rotations = SimRng::seed(config.seed).split("lsh-planes");
    drop((planes, rotations));
}
