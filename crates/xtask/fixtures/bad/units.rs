//! Known-bad fixture for rule U (linted as if in crates/dnnsim/src/).

fn frame_cost(base_ms: f64, throttle: f64, radio_mj: f64) -> (f64, f64) {
    let total_ms = base_ms * throttle;
    let energy_mj = radio_mj + 1.5;
    (total_ms, energy_mj)
}
