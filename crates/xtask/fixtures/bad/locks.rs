//! Known-bad fixture for rule L (linted as if in
//! crates/reuse/src/concurrent/).

impl Sharded {
    fn transfer(&self, from: usize, to: usize) {
        let src = self.shard(from).lock();
        let dst = self.shard(to).lock();
        drop((src, dst));
    }

    fn double(&self) -> usize {
        self.first.lock().len() + self.second.lock().len()
    }

    fn allowed_pair(&self) {
        let first = self.shard(0).lock();
        // xtask-allow(locks): fixture justification for a deliberate pair
        let second = self.shard(1).lock();
        drop((first, second));
    }
}
