//! Known-bad fixture for rule G: an A->B / B->A ordering cycle built
//! through one level of calls. Each fn textually acquires only one lock,
//! so the lexical rule L stays silent — but `forward` holds `alpha`
//! while `grab_beta` takes `beta`, and `backward` holds `beta` while
//! `grab_alpha` takes `alpha`: two threads running them concurrently
//! deadlock. Only the cross-file graph sees it.

impl Pair {
    fn forward(&self) {
        let guard = self.alpha.lock();
        self.grab_beta();
        drop(guard);
    }

    fn backward(&self) {
        let guard = self.beta.lock();
        self.grab_alpha();
        drop(guard);
    }

    fn grab_beta(&self) {
        let b = self.beta.lock();
        drop(b);
    }

    fn grab_alpha(&self) {
        let a = self.alpha.lock();
        drop(a);
    }
}
