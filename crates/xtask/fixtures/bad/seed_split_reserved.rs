//! Known-bad fixture for rule S's reserved labels. Linted outside the
//! fleet engine, both `"shard"` splits are rejected outright; linted
//! *as* the fleet engine, the label is keyed file-globally, so the
//! second site collides with the first even though the fns differ.

fn lanes_a(root: &SimRng) {
    let lane = root.split_index("shard", 0);
    drop(lane);
}

fn lanes_b(root: &SimRng) {
    let lane = root.split_index("shard", 0);
    drop(lane);
}
