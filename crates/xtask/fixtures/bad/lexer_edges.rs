//! Known-bad fixture for the lexer edge cases: real panic sites that a
//! line-drifting or token-splitting lexer would hide or misplace.

fn real_sites(x: Option<u32>, v: &[u32]) -> u32 {
    let s = "a\
 continued";
    let first = x.r#unwrap();
    first + v[0] + s.len() as u32
}

fn allowed_site(y: Option<u32>) -> u32 {
    let s = "x\
 y";
    // xtask-allow(panics): fixture justification pinned after a continuation
    let v = y.unwrap();
    v + s.len() as u32
}
