//! Known-bad fixture for the rule T census (linted as if it were
//! crates/reuse/src/stats.rs, the CacheStats registry home).

impl CacheStats {
    pub fn record_lookup(&mut self) {
        self.lookups += 1;
    }

    pub fn record_lookup_again(&mut self) {
        // A second helper for the same field: the census wants exactly
        // one, so every increment funnels through one audited site.
        self.lookups += 1;
    }

    pub fn note_hit(&mut self) {
        // Increment outside a record_* helper, inside the registry.
        self.hits += 1;
    }
}

impl Device {
    fn bump(&mut self) {
        // Reaching through a path into an embedded registry.
        self.stats.inserts += 1;
    }
}
