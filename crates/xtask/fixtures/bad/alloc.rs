//! Known-bad fixture for rule A (linted as if in the concurrent core).

impl Shard {
    fn lookup(&self, key: &Key) -> Vec<f64> {
        let mut out = Vec::new();
        let copy = key.components.to_vec();
        out.extend(copy);
        out
    }

    fn insert(&mut self, key: Key) -> String {
        let label = format!("{key:?}");
        self.entries.push(Box::new(key));
        label
    }
}

fn nearest_into(candidates: &[f64]) -> Vec<f64> {
    candidates.iter().map(|c| c * 2.0).collect()
}

fn decide_in(votes: &[Vote]) -> Vec<Vote> {
    let v = votes.clone();
    v.to_vec()
}

fn beam_search_into(nodes: &[u64]) -> Vec<u64> {
    nodes.to_vec()
}

fn search_into(rows: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    out.extend(rows);
    out
}

fn rerank_rows_into(rows: &[u64]) -> String {
    format!("{rows:?}")
}

fn quantize_query_into(query: &[f64]) -> Vec<u8> {
    query.iter().map(|&x| x as u8).collect()
}
