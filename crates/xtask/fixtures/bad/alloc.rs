//! Known-bad fixture for rule A (linted as if in the concurrent core).

impl Shard {
    fn lookup(&self, key: &Key) -> Vec<f64> {
        let mut out = Vec::new();
        let copy = key.components.to_vec();
        out.extend(copy);
        out
    }

    fn insert(&mut self, key: Key) -> String {
        let label = format!("{key:?}");
        self.entries.push(Box::new(key));
        label
    }
}

fn nearest_into(candidates: &[f64]) -> Vec<f64> {
    candidates.iter().map(|c| c * 2.0).collect()
}

fn decide_in(votes: &[Vote]) -> Vec<Vote> {
    let v = votes.clone();
    v.to_vec()
}
