//! Known-bad fixture for rule D (linted as if in crates/simcore/src/).
use std::collections::HashMap;
use std::time::Instant;

struct Tally {
    by_label: HashMap<u32, u64>,
}

impl Tally {
    fn elapsed_and_sum(&self) -> (u128, u64) {
        let started = Instant::now();
        let mut rng = SimRng::default();
        let _ = thread_rng();
        let mut order_sensitive = Vec::new();
        for (label, count) in self.by_label.iter() {
            order_sensitive.push((*label, *count + rng.next()));
        }
        (started.elapsed().as_nanos(), order_sensitive.len() as u64)
    }
}
