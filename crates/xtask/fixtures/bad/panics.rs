//! Known-bad fixture for rule P (linted as if in crates/reuse/src/,
//! with a budget of zero).

fn hot_path(entries: &std::collections::HashMap<u64, u64>, order: &[u64]) -> u64 {
    let first = order[0];
    let entry = entries.get(&first).expect("indexed entry exists");
    let doubled = Some(*entry).map(|e| e * 2).unwrap();
    doubled
}
