//! Known-bad fixture for rule T (linted as if in crates/reuse/src/).

struct Cache {
    stats: CacheStats,
}

impl Cache {
    fn lookup(&mut self) {
        self.stats.lookups += 1;
        self.stats.hits += 1;
    }

    fn network(&mut self, counters: &mut TransportCounters) {
        counters.messages_sent += 1;
    }
}
