//! Known-good fixture for rule D (linted as if in crates/simcore/src/).
use std::collections::{BTreeMap, HashMap};

struct Tally {
    by_label: BTreeMap<u32, u64>,
    scratch: HashMap<u32, u64>,
}

impl Tally {
    fn sum(&self, seed: u64) -> u64 {
        let mut rng = SimRng::seed(seed);
        let mut total = rng.next();
        // BTreeMap iteration is ordered; no hash-order leak.
        for (_, count) in self.by_label.iter() {
            total += count;
        }
        // xtask-allow(determinism): addition is order-free.
        total += self.scratch.values().sum::<u64>();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn wall_clock_is_fine_in_tests() {
        let _ = Instant::now();
    }
}
