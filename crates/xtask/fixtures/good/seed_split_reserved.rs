//! Known-good fixture for rule S's reserved labels: the fleet engine
//! derives one `"shard"` lane stream per shard index (the index keeps
//! the sites distinct even under file-global keying), alongside its
//! ordinary labeled streams.

fn lanes(root: &SimRng, shards: usize) {
    for s in 0..shards {
        let lane = root.split_index("shard", s);
        drop(lane);
    }
    let world = root.split("fleet-world");
    let faults = root.split("fleet-faults");
    drop((world, faults));
}

fn beacons(root: &SimRng) {
    let rx = root.split_index("shard", 1);
    drop(rx);
}
