//! Known-good fixture for rule L: one shard lock at a time, the way the
//! sharded store actually locks.

impl Sharded {
    fn len(&self) -> usize {
        let mut total = 0;
        for shard in &self.shards {
            let guard = shard.lock();
            total += guard.len();
        }
        total
    }

    fn threshold(&self) -> f64 {
        let guard = self.shard(0).lock();
        guard.threshold()
    }

    fn chained_temporary(&self) -> usize {
        self.shard(0).lock().len()
    }

    fn sequential_guards(&self) {
        {
            let first = self.shard(0).lock();
            drop(first);
        }
        let second = self.shard(1).lock();
        drop(second);
    }
}
