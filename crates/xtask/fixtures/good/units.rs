//! Known-good fixture for rule U (linted as if in crates/dnnsim/src/).
use simcore::units::{Millijoules, Millis};

fn frame_cost(base: Millis, throttle: f64, radio: Millijoules) -> (Millis, Millijoules) {
    // Arithmetic on newtyped values: the unit is in the type.
    let total = base * throttle;
    let energy = radio + Millijoules::new(1.5);
    (total, energy)
}

fn serialize(latency_ms: f64) -> f64 {
    // Plain mention of a unit-suffixed name (no arithmetic) is fine:
    // wire formats and JSON keys keep their suffixes.
    latency_ms
}

#[cfg(test)]
mod tests {
    #[test]
    fn raw_arithmetic_is_fine_in_tests() {
        let base_ms = 40.0;
        assert!(base_ms * 2.0 > 79.0);
    }
}
