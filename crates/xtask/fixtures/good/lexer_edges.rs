//! Known-good fixture for the lexer edge cases: panic-looking text in
//! places where it cannot execute — raw strings, nested block comments,
//! multi-line strings — must stay invisible to every rule.

/* outer /* nested .unwrap( */ still one comment with v[0] inside */
fn no_sites() -> usize {
    let raw = r#"x.unwrap() and v[0] and "quoted" inside"#;
    let multi = "line one
        line two .expect( not code";
    raw.len() + multi.len()
}
