//! Known-good fixture for the rule T census: every CacheStats field has
//! exactly one record_* helper, `merge` is the one sanctioned bulk path,
//! and another type's same-named own field (plain `self` receiver) does
//! not collide with the registry.

impl CacheStats {
    pub fn record_lookup(&mut self) {
        self.lookups += 1;
    }

    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    pub fn record_miss(&mut self, class: MissClass) {
        match class {
            MissClass::Empty => self.miss_empty += 1,
            MissClass::TooFar => self.miss_too_far += 1,
            MissClass::NotHomogeneous => self.miss_not_homogeneous += 1,
            MissClass::InsufficientSupport => self.miss_insufficient_support += 1,
        }
    }

    pub fn record_insert(&mut self) {
        self.inserts += 1;
    }

    pub fn record_refresh(&mut self) {
        self.refreshes += 1;
    }

    pub fn record_rejected(&mut self) {
        self.rejected += 1;
    }

    pub fn record_eviction(&mut self) {
        self.evictions += 1;
    }

    pub fn record_removal(&mut self) {
        self.removals += 1;
    }

    pub fn record_expirations(&mut self, n: u64) {
        self.expirations += n;
    }

    pub fn record_sketch_rejected(&mut self) {
        self.sketch_rejected += 1;
    }

    pub fn record_weight_eviction(&mut self) {
        self.weight_evictions += 1;
    }

    pub fn merge(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.miss_empty += other.miss_empty;
        self.miss_too_far += other.miss_too_far;
        self.miss_not_homogeneous += other.miss_not_homogeneous;
        self.miss_insufficient_support += other.miss_insufficient_support;
        self.inserts += other.inserts;
        self.refreshes += other.refreshes;
        self.rejected += other.rejected;
        self.evictions += other.evictions;
        self.removals += other.removals;
        self.expirations += other.expirations;
        self.sketch_rejected += other.sketch_rejected;
        self.weight_evictions += other.weight_evictions;
    }
}

impl ProbeTally {
    fn tick(&mut self) {
        // This type's *own* `lookups` field: the receiver is plain
        // `self`, not a path into an embedded registry.
        self.lookups += 1;
    }
}
