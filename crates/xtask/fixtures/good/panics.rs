//! Known-good fixture for rule P (linted as if in crates/reuse/src/,
//! with a budget of zero).

fn hot_path(entries: &std::collections::HashMap<u64, u64>, order: &[u64]) -> Option<u64> {
    let first = order.first()?;
    let entry = entries.get(first)?;
    Some(*entry * 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let entries = std::collections::HashMap::from([(1u64, 2u64)]);
        assert_eq!(hot_path(&entries, &[1]).unwrap(), 4);
    }
}
