//! Known-good fixture for rule G: every guard is released before the
//! next acquisition — including across calls — so the graph has nodes
//! but no acquired-while-held edges.

impl Pair {
    fn forward(&self) {
        {
            let guard = self.alpha.lock();
            drop(guard);
        }
        self.grab_beta();
    }

    fn backward(&self) {
        let len = self.beta.lock().len();
        if len > 0 {
            self.grab_beta();
        }
    }

    fn grab_beta(&self) {
        let b = self.beta.lock();
        drop(b);
    }
}
