//! Known-good fixture for rule S: sibling labels are unique per parent
//! scope — distinct labels, distinct indexes, or distinct fns.

fn build(root: &SimRng) {
    let a = root.split("world");
    let b = root.split("faults");
    let c = root.split_index("device", 0);
    let d = root.split_index("device", 1);
    let child = b.split("world");
    drop((a, c, d, child));
}

fn other(root: &SimRng) {
    let w = root.split("world");
    drop(w);
}

fn index_banks(config: &LshConfig) {
    let planes = SimRng::seed(1).split("planes");
    let graph = SimRng::seed(2).split("planes");
    let banks = SimRng::seed(config.seed).split("lsh-planes");
    let probes = SimRng::seed(config.seed).split("lsh-probes");
    drop((planes, graph, banks, probes));
}
