//! Known-good fixture for rule S: sibling labels are unique per parent
//! scope — distinct labels, distinct indexes, or distinct fns.

fn build(root: &SimRng) {
    let a = root.split("world");
    let b = root.split("faults");
    let c = root.split_index("device", 0);
    let d = root.split_index("device", 1);
    let child = b.split("world");
    drop((a, c, d, child));
}

fn other(root: &SimRng) {
    let w = root.split("world");
    drop(w);
}
