//! Known-good fixture for rule T (linted as if in crates/reuse/src/).

struct Cache {
    stats: CacheStats,
    frames: u64,
}

impl Cache {
    fn lookup(&mut self) {
        self.stats.record_lookup();
        self.stats.record_hit();
        // Non-registry fields may be incremented directly.
        self.frames += 1;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn direct_increments_are_fine_in_tests() {
        let mut stats = CacheStats::default();
        stats.hits += 1;
    }
}
