//! Known-good fixture for rule A: hot paths reuse scratch buffers; cold
//! paths and justified one-offs may still allocate.

impl Shard {
    fn lookup(&self, key: &Key, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&key.components);
    }

    fn insert(&mut self, key: Key) {
        self.scratch.clear();
        self.entries.push(key);
    }

    fn cold_rebuild(&mut self) -> Vec<Entry> {
        // Not a designated hot fn: allocation is fine here.
        self.entries.to_vec()
    }
}

fn nearest_into(candidates: &[f64], out: &mut Vec<f64>) {
    out.clear();
    for c in candidates {
        out.push(c * 2.0);
    }
}

fn decide_in(votes: &[Vote]) -> usize {
    // xtask-allow(alloc): fixture justification for a measured one-off
    let snapshot = votes.to_vec();
    snapshot.len()
}
