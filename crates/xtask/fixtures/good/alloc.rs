//! Known-good fixture for rule A: hot paths reuse scratch buffers; cold
//! paths and justified one-offs may still allocate.

impl Shard {
    fn lookup(&self, key: &Key, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&key.components);
    }

    fn insert(&mut self, key: Key) {
        self.scratch.clear();
        self.entries.push(key);
    }

    fn cold_rebuild(&mut self) -> Vec<Entry> {
        // Not a designated hot fn: allocation is fine here.
        self.entries.to_vec()
    }
}

fn nearest_into(candidates: &[f64], out: &mut Vec<f64>) {
    out.clear();
    for c in candidates {
        out.push(c * 2.0);
    }
}

fn decide_in(votes: &[Vote]) -> usize {
    // xtask-allow(alloc): fixture justification for a measured one-off
    let snapshot = votes.to_vec();
    snapshot.len()
}

fn beam_search_into(nodes: &[u64], scratch: &mut Scratch) {
    scratch.beam.clear();
    scratch.beam.extend_from_slice(nodes);
}

fn search_into(rows: &[u64], out: &mut Vec<u64>) {
    out.clear();
    out.extend_from_slice(rows);
}

fn rerank_rows_into(rows: &[u64], out: &mut Vec<(f64, u64)>) {
    out.clear();
    for &row in rows {
        out.push((row as f64, row));
    }
}

fn quantize_query_into(query: &[f64], out: &mut Vec<u8>) {
    out.clear();
    for &x in query {
        out.push(x as u8);
    }
}
