//! Oracle tests for the approximate indexes, pinned as properties.
//!
//! The `ann` crate's correctness contract has two halves:
//!
//! 1. **Exactness invariant** — an approximate index (LSH, NSW) may
//!    *miss* a true neighbour, but every neighbour it does report must
//!    carry the exact Euclidean distance. Shortlists are scored with the
//!    quantized u8 kernel only to *rank* candidates; survivors are
//!    re-ranked with the exact f64 kernel before anything escapes the
//!    index. These properties recompute each reported distance from the
//!    original key material and fail on any drift.
//! 2. **Recall floor** — on cache-shaped workloads (clustered keys,
//!    queries that are near-duplicates of cached entries — the reuse
//!    pattern the paper's cache exists to serve) the approximate indexes
//!    must actually find the true nearest entries, not merely plausible
//!    ones. Measured against [`ReferenceLinearScan`], the never-optimized
//!    oracle.
//!
//! A third property pins **determinism**: two indexes built with the same
//! config over the same insertion sequence answer every query with
//! identical ids and bit-identical distances, which is what lets peers
//! share cache entries and lets golden results stay byte-stable.

use ann::{
    build, IndexConfig, IndexScratch, LshConfig, Neighbor, NnIndex, NswConfig, ReferenceLinearScan,
};
use features::FeatureVector;
use proptest::prelude::*;

/// The approximate backends under test. kd-tree rides along: it is exact
/// by construction, so the invariants must hold for it trivially.
fn backends() -> Vec<(&'static str, IndexConfig)> {
    vec![
        ("kdtree", IndexConfig::KdTree),
        ("lsh", IndexConfig::Lsh(LshConfig::default())),
        ("nsw", IndexConfig::Nsw(NswConfig::default())),
    ]
}

/// Deterministic pseudo-random unit-ish coordinate stream, independent of
/// the proptest RNG so key geometry is easy to reason about per case.
fn coords(seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f32 / (1u64 << 53) as f32).mul_add(2.0, -1.0)
        })
        .collect()
}

/// `count` keys of `dim` coordinates drawn around `clusters` centers,
/// jittered by `spread` — the shape of a cache fed by revisited scenes.
fn clustered_keys(
    seed: u64,
    count: usize,
    dim: usize,
    clusters: usize,
    spread: f32,
) -> Vec<Vec<f32>> {
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|c| coords(seed.wrapping_add(c as u64 * 7919), dim))
        .collect();
    (0..count)
        .map(|i| {
            let center = &centers[i % clusters];
            let jitter = coords(seed.wrapping_add(0x5EED).wrapping_add(i as u64), dim);
            center
                .iter()
                .zip(&jitter)
                .map(|(&c, &j)| c + j * spread)
                .collect()
        })
        .collect()
}

fn fv(coords: &[f32]) -> FeatureVector {
    FeatureVector::from_vec(coords.to_vec()).unwrap()
}

/// Exact f64 Euclidean distance recomputed naively from the raw keys —
/// deliberately *not* via the crate's kernels, so a kernel bug cannot
/// self-certify.
fn naive_distance(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every distance any index reports matches an independent exact
    /// recomputation from the key material. Approximate indexes may
    /// return fewer or different ids than the oracle — they must never
    /// return a fabricated distance.
    #[test]
    fn reported_distances_are_exact(
        seed in 0u64..1_000_000,
        dim in 2usize..24,
        count in 8usize..160,
        k in 1usize..8,
    ) {
        let keys = clustered_keys(seed, count, dim, 5, 0.15);
        let query = fv(&coords(seed ^ 0xFACE, dim));
        let mut scratch = IndexScratch::new();
        let mut out: Vec<Neighbor> = Vec::new();
        for (name, config) in backends() {
            let mut index = build(dim, &config);
            for (id, key) in keys.iter().enumerate() {
                index.insert(id as u64, fv(key));
            }
            index.nearest_into(&query, k, &mut scratch, &mut out);
            prop_assert!(out.len() <= k, "{name} returned more than k");
            for n in &out {
                let exact = naive_distance(query.as_slice(), &keys[n.id as usize]);
                let err = (n.distance - exact).abs();
                prop_assert!(
                    err <= 1e-9 * (1.0 + exact),
                    "{name} reported {} for id {}, exact is {} (err {err:e})",
                    n.distance, n.id, exact
                );
            }
            // Results come back sorted ascending — a ranking produced by
            // quantized scores must not leak into the final order.
            for pair in out.windows(2) {
                prop_assert!(pair[0].distance <= pair[1].distance, "{name} unsorted");
            }
        }
    }

    /// On clustered keys with near-duplicate queries (the cache's actual
    /// workload), the approximate indexes keep a recall floor against the
    /// exact oracle. Aggregated over all queries of a case so a single
    /// unlucky hash/graph neighbourhood cannot fail the property.
    #[test]
    fn recall_floor_on_clustered_keys(
        seed in 0u64..1_000_000,
        count in 64usize..256,
    ) {
        let dim = 16;
        let k = 4;
        let keys = clustered_keys(seed, count, dim, 6, 0.05);
        // Tight, well-separated clusters are the adversarial case for
        // graph navigability (few inter-cluster links to route through),
        // so the NSW point under test runs a wider beam than the default
        // — the knob a deployment would actually turn on such data.
        let recall_backends = vec![
            ("kdtree", IndexConfig::KdTree),
            ("lsh", IndexConfig::Lsh(LshConfig::default())),
            ("nsw", IndexConfig::Nsw(NswConfig { m: 16, ef: 192 })),
        ];
        let mut oracle = ReferenceLinearScan::new(dim);
        for (id, key) in keys.iter().enumerate() {
            oracle.insert(id as u64, fv(key));
        }
        // Queries are near-duplicates of cached keys: a revisit of an
        // already-seen subject, jittered by a frame's worth of noise.
        let queries: Vec<FeatureVector> = (0..24)
            .map(|q| {
                let base = &keys[(q * 7) % count];
                let noise = coords(seed.wrapping_add(0xBEEF + q as u64), dim);
                fv(&base
                    .iter()
                    .zip(&noise)
                    .map(|(&b, &n)| b + n * 0.01)
                    .collect::<Vec<f32>>())
            })
            .collect();
        let mut scratch = IndexScratch::new();
        let mut out: Vec<Neighbor> = Vec::new();
        for (name, config) in recall_backends {
            let mut index = build(dim, &config);
            for (id, key) in keys.iter().enumerate() {
                index.insert(id as u64, fv(key));
            }
            let mut found = 0usize;
            let mut wanted = 0usize;
            for query in &queries {
                let truth: Vec<u64> = oracle.nearest(query, k).iter().map(|n| n.id).collect();
                index.nearest_into(query, k, &mut scratch, &mut out);
                wanted += truth.len();
                found += truth
                    .iter()
                    .filter(|id| out.iter().any(|n| n.id == **id))
                    .count();
            }
            let recall = found as f64 / wanted as f64;
            let floor = if name == "kdtree" { 1.0 } else { 0.75 };
            prop_assert!(
                recall >= floor,
                "{name} recall@{k} = {recall:.3} below floor {floor} (seed {seed}, n {count})"
            );
        }
    }

    /// Same config + same insertion sequence ⇒ identical answers, bit for
    /// bit. Randomness lives only in the seeds the configs carry.
    #[test]
    fn same_seed_builds_are_deterministic(
        seed in 0u64..1_000_000,
        count in 16usize..128,
    ) {
        let dim = 12;
        let keys = clustered_keys(seed, count, dim, 4, 0.2);
        let queries: Vec<FeatureVector> =
            (0..8).map(|q| fv(&coords(seed ^ (q + 1), dim))).collect();
        let mut scratch = IndexScratch::new();
        for (name, config) in backends() {
            let mut a = build(dim, &config);
            let mut b = build(dim, &config);
            for (id, key) in keys.iter().enumerate() {
                a.insert(id as u64, fv(key));
                b.insert(id as u64, fv(key));
            }
            let mut out_a: Vec<Neighbor> = Vec::new();
            let mut out_b: Vec<Neighbor> = Vec::new();
            for query in &queries {
                a.nearest_into(query, 4, &mut scratch, &mut out_a);
                b.nearest_into(query, 4, &mut scratch, &mut out_b);
                prop_assert!(out_a.len() == out_b.len(), "{name} cardinality drift");
                for (x, y) in out_a.iter().zip(&out_b) {
                    prop_assert!(x.id == y.id, "{name} id drift: {} vs {}", x.id, y.id);
                    prop_assert!(
                        x.distance.to_bits() == y.distance.to_bits(),
                        "{name} distance drift: {} vs {}",
                        x.distance,
                        y.distance
                    );
                }
            }
        }
    }
}

/// The exactness invariant also survives churn: removals force LSH bucket
/// maintenance, NSW tombstones, and kd-tree rebuilds; distances reported
/// afterwards must still be exact. Plain test — churn schedules are more
/// legible pinned than generated.
#[test]
fn distances_stay_exact_under_churn() {
    let dim = 8;
    let keys = clustered_keys(0xC0FFEE, 96, dim, 4, 0.1);
    for (name, config) in backends() {
        let mut index = build(dim, &config);
        for (id, key) in keys.iter().enumerate() {
            index.insert(id as u64, fv(key));
        }
        // Remove every third entry, then re-insert half of those under
        // fresh ids — exercises tombstone and rebuild paths.
        for id in (0..96u64).step_by(3) {
            assert!(index.remove(id), "{name} lost id {id}");
        }
        for (slot, id) in (0..96u64).step_by(6).enumerate() {
            index.insert(1000 + slot as u64, fv(&keys[id as usize]));
        }
        let mut scratch = IndexScratch::new();
        let mut out: Vec<Neighbor> = Vec::new();
        let query = fv(&coords(0xDEAD_BEA7, dim));
        index.nearest_into(&query, 6, &mut scratch, &mut out);
        assert!(!out.is_empty(), "{name} returned nothing after churn");
        for n in &out {
            let original = if n.id >= 1000 {
                &keys[((n.id - 1000) * 6) as usize]
            } else {
                &keys[n.id as usize]
            };
            let exact = naive_distance(query.as_slice(), original);
            assert!(
                (n.distance - exact).abs() <= 1e-9 * (1.0 + exact),
                "{name} drifted after churn: {} vs exact {exact}",
                n.distance
            );
        }
    }
}
