//! Nearest-neighbour search for the approximate cache.
//!
//! A cache lookup is a k-nearest-neighbour query over the cached
//! signatures. Four interchangeable indexes implement [`NnIndex`], all
//! backed by the contiguous [`FlatBuffer`] key storage and the chunked
//! flat distance kernels, and all constructed through one serde-able
//! [`IndexConfig`] + [`build`] factory:
//!
//! - [`LinearScan`] — exact, `O(n)` per query; the correctness reference
//!   and the fastest choice below a few hundred entries.
//! - [`KdTree`] — exact, logarithmic-ish in low dimension; degrades
//!   towards linear as dimension grows (the classic curse).
//! - [`LshIndex`] — sign-random-projection LSH, sublinear candidate
//!   generation with quantized shortlist scoring; approximate but
//!   tunable via tables × bits.
//! - [`NswIndex`] — navigable-small-world graph; the scalable choice at
//!   fleet-size caches.
//!
//! The primary query path is [`NnIndex::nearest_into`]: callers hold a
//! reusable [`IndexScratch`] and output buffer, and steady-state lookups
//! allocate nothing. Approximate indexes may miss neighbours but never
//! report wrong distances — shortlists are always re-ranked with the
//! exact f64 kernel before anything is returned.
//!
//! On top of the raw neighbour list sits [`aknn`]: the *homogenized
//! adaptive k-NN* hit test (after FoggyCache's A-kNN) that decides whether
//! the neighbours are close and unanimous enough to trust their label
//! instead of running the DNN.
//!
//! # Example
//!
//! ```
//! use ann::{build, IndexConfig};
//! use features::FeatureVector;
//!
//! let mut index = build(2, &IndexConfig::Linear);
//! index.insert(1, FeatureVector::from_vec(vec![0.0, 0.0]).unwrap());
//! index.insert(2, FeatureVector::from_vec(vec![5.0, 5.0]).unwrap());
//! let hits = index.nearest(&FeatureVector::from_vec(vec![0.1, 0.0]).unwrap(), 1);
//! assert_eq!(hits[0].id, 1);
//! ```

pub mod aknn;
pub mod config;
pub mod flat;
pub mod index;
pub mod kdtree;
pub mod linear;
pub mod lsh;
pub mod nsw;

pub use aknn::{AknnConfig, AknnOutcome, DecideScratch, MissReason};
pub use config::{build, IndexConfig};
pub use flat::FlatBuffer;
pub use index::{IndexScratch, Neighbor, NnIndex};
pub use kdtree::KdTree;
pub use linear::{LinearScan, ReferenceLinearScan};
pub use lsh::{LshConfig, LshIndex};
pub use nsw::{NswConfig, NswIndex};
