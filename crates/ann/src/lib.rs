//! Nearest-neighbour search for the approximate cache.
//!
//! A cache lookup is a k-nearest-neighbour query over the cached
//! signatures. Three interchangeable indexes implement [`NnIndex`]:
//!
//! - [`LinearScan`] — exact, `O(n)` per query; the correctness reference
//!   and the fastest choice below a few hundred entries.
//! - [`KdTree`] — exact, logarithmic-ish in low dimension; degrades
//!   towards linear as dimension grows (the classic curse).
//! - [`LshIndex`] — sign-random-projection LSH, sublinear candidate
//!   generation; approximate but tunable via tables × bits.
//!
//! On top of the raw neighbour list sits [`aknn`]: the *homogenized
//! adaptive k-NN* hit test (after FoggyCache's A-kNN) that decides whether
//! the neighbours are close and unanimous enough to trust their label
//! instead of running the DNN.
//!
//! # Example
//!
//! ```
//! use ann::{LinearScan, NnIndex};
//! use features::FeatureVector;
//!
//! let mut index = LinearScan::new(2);
//! index.insert(1, FeatureVector::from_vec(vec![0.0, 0.0]).unwrap());
//! index.insert(2, FeatureVector::from_vec(vec![5.0, 5.0]).unwrap());
//! let hits = index.nearest(&FeatureVector::from_vec(vec![0.1, 0.0]).unwrap(), 1);
//! assert_eq!(hits[0].id, 1);
//! ```

pub mod aknn;
pub mod index;
pub mod kdtree;
pub mod linear;
pub mod lsh;
pub mod nsw;

pub use aknn::{AknnConfig, AknnOutcome, DecideScratch, MissReason};
pub use index::{Neighbor, NnIndex};
pub use kdtree::KdTree;
pub use linear::{LinearScan, ReferenceLinearScan};
pub use lsh::{LshConfig, LshIndex};
pub use nsw::{NswConfig, NswIndex};
