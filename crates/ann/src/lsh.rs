//! Sign-random-projection LSH (multi-table).

use std::collections::HashMap;

use features::FeatureVector;
use serde::{Deserialize, Serialize};
use simcore::SimRng;

use crate::flat::FlatBuffer;
use crate::index::{check_insert, check_query, IndexScratch, Neighbor, NnIndex};

/// Tuning of an [`LshIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LshConfig {
    /// Number of hash tables. More tables ⇒ higher recall, more memory.
    pub tables: usize,
    /// Bits per table key. More bits ⇒ smaller buckets ⇒ faster but lower
    /// recall.
    pub bits: usize,
    /// Seed for the hyperplane banks (devices sharing entries must agree).
    pub seed: u64,
    /// Multiprobe radius: each query additionally probes every bucket
    /// within this Hamming distance of its signature in each table.
    /// `0` disables multiprobe; `1` probes `bits + 1` buckets per table
    /// and substantially improves recall at modest cost.
    pub probe_radius: usize,
}

impl Default for LshConfig {
    fn default() -> Self {
        LshConfig {
            tables: 8,
            bits: 12,
            seed: 0x15_4ea,
            probe_radius: 1,
        }
    }
}

impl LshConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `tables == 0`, `bits == 0`, or `bits > 32`.
    pub fn validate(&self) {
        assert!(self.tables > 0, "LshConfig: tables must be positive");
        assert!(
            self.bits > 0 && self.bits <= 32,
            "LshConfig: bits must be in 1..=32"
        );
        assert!(
            self.probe_radius <= 2,
            "LshConfig: probe_radius above 2 explodes the probe count"
        );
    }
}

/// One table's `bits`-bit signature of `key`: the sign bit of each
/// hyperplane dot product. Free-standing so callers holding disjoint
/// mutable borrows of the index can still hash.
fn signature_of(planes: &[f32], dim: usize, bits: usize, table: usize, key: &[f32]) -> u32 {
    let mut sig = 0u32;
    for bit in 0..bits {
        let row_start = ((table * bits) + bit) * dim;
        let row = &planes[row_start..row_start + dim];
        let mut acc = 0.0f64;
        for (a, b) in row.iter().zip(key) {
            acc += *a as f64 * *b as f64;
        }
        if acc >= 0.0 {
            sig |= 1 << bit;
        }
    }
    sig
}

/// Approximate nearest-neighbour search via signed random projections.
///
/// Each of `tables` hash tables assigns a vector a `bits`-bit signature
/// (one sign bit per random hyperplane). A query gathers the union of its
/// buckets across tables as candidates, shortlists them by quantized
/// `u8` score, and re-ranks the shortlist by exact distance — the
/// FoggyCache shape: cheap wide filter, exact narrow finish.
/// Near-duplicates — the only thing an approximate cache needs to find —
/// collide in at least one table with very high probability.
///
/// Keys live in a quantized [`FlatBuffer`], so both the shortlist pass
/// (integer codes) and the exact re-rank (contiguous `f32` rows) run on
/// the flat kernels.
#[derive(Debug, Clone)]
pub struct LshIndex {
    dim: usize,
    config: LshConfig,
    /// Hyperplanes: `tables × bits` rows of `dim` components.
    planes: Vec<f32>,
    /// One bucket map per table: signature → entry ids.
    buckets: Vec<HashMap<u32, Vec<u64>>>,
    /// Authoritative key storage: exact rows + quantized mirror.
    flat: FlatBuffer,
}

impl LshIndex {
    /// Internal constructor behind [`crate::build`].
    pub(crate) fn with_config(dim: usize, config: LshConfig) -> LshIndex {
        assert!(dim > 0, "LshIndex: dim must be positive");
        config.validate();
        let mut rng = SimRng::seed(config.seed).split("lsh-planes");
        let planes = (0..config.tables * config.bits * dim)
            .map(|_| rng.std_normal() as f32)
            .collect();
        LshIndex {
            dim,
            config,
            planes,
            buckets: vec![HashMap::new(); config.tables],
            flat: FlatBuffer::new_quantized(dim),
        }
    }

    /// The index configuration.
    pub fn config(&self) -> LshConfig {
        self.config
    }

    fn signature(&self, table: usize, key: &[f32]) -> u32 {
        signature_of(&self.planes, self.dim, self.config.bits, table, key)
    }

    /// Appends the ids bucketed under `sig` in `table` to `candidates`.
    fn gather(&self, table: usize, sig: u32, candidates: &mut Vec<u64>) {
        if let Some(bucket) = self.buckets[table].get(&sig) {
            candidates.extend_from_slice(bucket);
        }
    }

    /// Average bucket occupancy over non-empty buckets (diagnostics).
    pub fn mean_bucket_size(&self) -> f64 {
        let (count, total) = self
            .buckets
            .iter()
            .flat_map(|t| t.values())
            .fold((0usize, 0usize), |(c, t), b| (c + 1, t + b.len()));
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}

/// How many quantized-score survivors go to exact re-rank: enough slack
/// over `k` that code rounding cannot squeeze out a true neighbour.
fn shortlist_cap(k: usize) -> usize {
    (4 * k).max(16)
}

impl NnIndex for LshIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.flat.len()
    }

    fn insert(&mut self, id: u64, key: FeatureVector) {
        check_insert(self.dim, &key);
        if self.flat.contains(id) {
            self.remove(id);
        }
        for table in 0..self.config.tables {
            let sig = self.signature(table, key.as_slice());
            self.buckets[table].entry(sig).or_default().push(id);
        }
        self.flat.insert(id, key.as_slice());
    }

    fn remove(&mut self, id: u64) -> bool {
        let Some(row) = self.flat.row_of(id) else {
            return false;
        };
        for table in 0..self.config.tables {
            let sig = signature_of(
                &self.planes,
                self.dim,
                self.config.bits,
                table,
                self.flat.key_at(row),
            );
            if let Some(bucket) = self.buckets[table].get_mut(&sig) {
                bucket.retain(|&other| other != id);
                if bucket.is_empty() {
                    self.buckets[table].remove(&sig);
                }
            }
        }
        self.flat.remove(id)
    }

    fn nearest_into(
        &self,
        query: &FeatureVector,
        k: usize,
        scratch: &mut IndexScratch,
        out: &mut Vec<Neighbor>,
    ) {
        check_query(self.dim, query, k);
        let q = query.as_slice();
        // Phase 1: gather the bucket union across tables and probes.
        scratch.candidates.clear();
        let bits = self.config.bits;
        for table in 0..self.config.tables {
            let sig = self.signature(table, q);
            self.gather(table, sig, &mut scratch.candidates);
            if self.config.probe_radius >= 1 {
                for b in 0..bits {
                    self.gather(table, sig ^ (1 << b), &mut scratch.candidates);
                }
            }
            if self.config.probe_radius >= 2 {
                for b1 in 0..bits {
                    for b2 in (b1 + 1)..bits {
                        self.gather(table, sig ^ (1 << b1) ^ (1 << b2), &mut scratch.candidates);
                    }
                }
            }
        }
        scratch.candidates.sort_unstable();
        scratch.candidates.dedup();
        // Phase 2: shortlist by quantized integer score. When the bucket
        // union fits the cap this keeps every candidate, so the result is
        // then exactly the pre-quantization behaviour.
        let cap = shortlist_cap(k);
        self.flat.quantize_query_into(q, &mut scratch.qquery);
        scratch.shortlist.clear();
        for &id in &scratch.candidates {
            let row = self.flat.row_of(id).expect("bucketed id must have a row");
            let entry = (self.flat.qdist(row, &scratch.qquery), row as u64);
            if scratch.shortlist.len() == cap {
                match scratch.shortlist.last() {
                    Some(worst) if entry < *worst => {
                        scratch.shortlist.pop();
                    }
                    _ => continue,
                }
            }
            let pos = scratch.shortlist.partition_point(|e| *e < entry);
            scratch.shortlist.insert(pos, entry);
        }
        // Phase 3: exact re-rank of the shortlist rows (the only
        // distances ever reported), then one sqrt per survivor.
        self.flat.rerank_rows_into(
            scratch.shortlist.iter().map(|&(_, row)| row as usize),
            q,
            k,
            out,
        );
        for n in out.iter_mut() {
            n.distance = n.distance.sqrt();
        }
    }

    fn clear(&mut self) {
        self.flat.clear();
        for table in &mut self.buckets {
            table.clear();
        }
    }

    fn kind(&self) -> &'static str {
        "lsh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use features::projection::random_vectors;

    fn index_with(keys: &[FeatureVector]) -> LshIndex {
        let mut index = LshIndex::with_config(keys[0].dim(), LshConfig::default());
        for (i, key) in keys.iter().enumerate() {
            index.insert(i as u64, key.clone());
        }
        index
    }

    #[test]
    fn finds_exact_duplicates_always() {
        let mut rng = SimRng::seed(1);
        let keys = random_vectors(500, 16, &mut rng);
        let index = index_with(&keys);
        for (i, key) in keys.iter().enumerate().step_by(17) {
            let hits = index.nearest(key, 1);
            assert_eq!(
                hits[0].id, i as u64,
                "exact key must hash to its own bucket"
            );
            assert!(hits[0].distance < 1e-6);
        }
    }

    #[test]
    fn finds_planted_near_duplicates() {
        let mut rng = SimRng::seed(2);
        let keys = random_vectors(400, 32, &mut rng);
        let index = index_with(&keys);
        let mut found = 0;
        let trials = 100;
        for i in 0..trials {
            let base = &keys[i * 3];
            let noise: Vec<f32> = (0..32).map(|_| rng.normal(0.0, 0.01) as f32).collect();
            let query = base.add(&FeatureVector::from_vec(noise).unwrap()).unwrap();
            let hits = index.nearest(&query, 1);
            if hits.first().map(|h| h.id) == Some((i * 3) as u64) {
                found += 1;
            }
        }
        assert!(found >= 95, "recall on near-duplicates {found}/{trials}");
    }

    #[test]
    fn recall_of_true_nearest_is_reasonable() {
        let mut rng = SimRng::seed(3);
        let keys = random_vectors(300, 16, &mut rng);
        let lsh = index_with(&keys);
        let mut linear = LinearScan::with_dim(16);
        for (i, key) in keys.iter().enumerate() {
            linear.insert(i as u64, key.clone());
        }
        let queries = random_vectors(100, 16, &mut rng);
        let mut agree = 0;
        for q in &queries {
            let a = lsh.nearest(q, 1);
            let b = linear.nearest(q, 1);
            if a.first().map(|n| n.id) == b.first().map(|n| n.id) {
                agree += 1;
            }
        }
        // Arbitrary query points (not near-duplicates) are the hard case;
        // even there the multi-table index finds the true NN usually.
        assert!(agree >= 50, "agreement {agree}/100");
    }

    #[test]
    // Exact comparison is intentional: an empty index has exactly zero mean.
    #[allow(clippy::float_cmp)]
    fn remove_purges_all_tables() {
        let mut rng = SimRng::seed(4);
        let keys = random_vectors(50, 8, &mut rng);
        let mut index = index_with(&keys);
        for i in 0..50u64 {
            assert!(index.remove(i));
        }
        assert!(index.is_empty());
        assert_eq!(index.mean_bucket_size(), 0.0);
        assert!(!index.remove(0));
    }

    #[test]
    fn update_replaces_key() {
        let mut index = LshIndex::with_config(4, LshConfig::default());
        let a = FeatureVector::from_vec(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let b = FeatureVector::from_vec(vec![0.0, 5.0, 0.0, 0.0]).unwrap();
        index.insert(1, a);
        index.insert(1, b.clone());
        assert_eq!(index.len(), 1);
        let hits = index.nearest(&b, 1);
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn reported_distances_are_exact() {
        let mut rng = SimRng::seed(5);
        let keys = random_vectors(100, 8, &mut rng);
        let index = index_with(&keys);
        let q = &keys[0];
        for hit in index.nearest(q, 5) {
            let true_d = features::distance::euclidean(&keys[hit.id as usize], q);
            assert!((hit.distance - true_d).abs() < 1e-9);
        }
    }

    #[test]
    fn same_seed_same_hashes_across_instances() {
        // Two devices with the same config must bucket keys identically,
        // otherwise shared entries would not collide.
        let mut rng = SimRng::seed(6);
        let key = &random_vectors(1, 16, &mut rng)[0];
        let a = LshIndex::with_config(16, LshConfig::default());
        let b = LshIndex::with_config(16, LshConfig::default());
        for table in 0..a.config().tables {
            assert_eq!(
                a.signature(table, key.as_slice()),
                b.signature(table, key.as_slice())
            );
        }
    }

    #[test]
    fn shortlist_survivors_are_rescored_exactly() {
        // Force the shortlist cap to bind: many candidates, small k. The
        // winners' distances must still be bit-exact.
        let mut rng = SimRng::seed(7);
        let keys = random_vectors(600, 8, &mut rng);
        let index = index_with(&keys);
        let q = &keys[42];
        let hits = index.nearest(q, 2);
        assert_eq!(hits[0].id, 42);
        for hit in &hits {
            let true_d = features::distance::euclidean(&keys[hit.id as usize], q);
            assert!((hit.distance - true_d).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_into_reuses_buffers_across_queries() {
        let mut rng = SimRng::seed(8);
        let keys = random_vectors(200, 8, &mut rng);
        let index = index_with(&keys);
        let mut scratch = IndexScratch::new();
        let mut out = Vec::new();
        index.nearest_into(&keys[0], 3, &mut scratch, &mut out);
        let caps = (
            out.capacity(),
            scratch.candidates.capacity(),
            scratch.shortlist.capacity(),
            scratch.qquery.capacity(),
        );
        for key in keys.iter().take(50) {
            index.nearest_into(key, 3, &mut scratch, &mut out);
            assert!(!out.is_empty());
        }
        // Steady state: the warm buffers already fit every later query.
        assert!(out.capacity() >= caps.0);
        assert!(scratch.qquery.capacity() == caps.3);
    }

    #[test]
    fn clear_and_kind() {
        let mut index = LshIndex::with_config(2, LshConfig::default());
        index.insert(1, FeatureVector::zeros(2));
        index.clear();
        assert!(index.is_empty());
        assert_eq!(index.kind(), "lsh");
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=32")]
    fn config_validates_bits() {
        LshConfig {
            bits: 40,
            ..LshConfig::default()
        }
        .validate();
    }
}
