//! The shared flat-buffer key store behind every index.
//!
//! PR 4 gave `LinearScan` contiguous structure-of-arrays storage — one
//! row-major `f32` buffer kept dense by swap-remove — so scans walk
//! memory linearly and the chunked distance kernel auto-vectorizes. This
//! module extracts that storage so the approximate indexes (LSH, NSW,
//! k-d tree) sit on the same layout instead of chasing a
//! `FeatureVector` allocation per entry.
//!
//! On top of the exact `f32` rows the buffer can keep a *quantized
//! mirror*: one `u8` code per component under a single global
//! `(lo, scale)` so candidate rows can be scored with the 16-lane
//! integer kernel ([`features::distance::squared_euclidean_u8`]) before
//! the survivors are re-ranked exactly. The mirror is an accelerator,
//! never an authority — [`FlatBuffer::rerank_rows_into`] always reads
//! the `f32` rows with the exact f64 kernel, so reported distances are
//! bit-identical to a plain scan over the same rows (the exactness
//! invariant: approximate indexes may *miss* neighbours, but never
//! report wrong distances).

use std::collections::HashMap;

use features::distance::{squared_euclidean_flat_within, squared_euclidean_u8};

use crate::index::Neighbor;

/// Strict `(distance, id)` order: ascending distance, ids breaking ties.
/// Distances here are sums of squares, so `-0.0` never occurs and
/// `total_cmp` agrees with the naive `<` on every value that can appear.
pub(crate) fn closer(a: &Neighbor, b: &Neighbor) -> bool {
    a.distance
        .total_cmp(&b.distance)
        .then(a.id.cmp(&b.id))
        .is_lt()
}

/// Keeps `out` as the up-to-`k` smallest neighbours seen so far, sorted
/// ascending by `(distance, id)` — a bounded max-heap where the current
/// maximum sits at the tail. Once the buffer is full, most candidates
/// fail the single tail comparison and cost nothing more.
pub(crate) fn push_bounded(out: &mut Vec<Neighbor>, k: usize, candidate: Neighbor) {
    if out.len() == k {
        match out.last() {
            Some(worst) if closer(&candidate, worst) => {
                out.pop();
            }
            _ => return,
        }
    }
    let pos = out.partition_point(|n| closer(n, &candidate));
    out.insert(pos, candidate);
}

/// Quantized mirror of the key rows: one code per component under a
/// single global `(lo, scale)` shared by every row, so two rows' codes
/// are directly comparable with integer arithmetic.
#[derive(Debug, Clone, Default)]
struct QuantMirror {
    /// Codes, row-major, parallel to the `f32` rows.
    codes: Vec<u8>,
    /// Smallest value the current params cover.
    lo: f32,
    /// Largest value the current params cover.
    hi: f32,
    /// Code step: `value ≈ lo + code · scale`; `0` while all stored
    /// components are equal (every code is then 0).
    scale: f32,
}

impl QuantMirror {
    fn code_of(&self, x: f32) -> u8 {
        if self.scale <= 0.0 {
            return 0;
        }
        (((x - self.lo) / self.scale).round() as i32).clamp(0, 255) as u8
    }

    /// Grows `[lo, hi]` to cover `key`, returning whether the params
    /// changed (existing codes are then stale and must be recomputed).
    /// Growth pads the moving edge by 1/8 of the new span so a slowly
    /// expanding key population amortizes its re-quantizations.
    fn cover(&mut self, key: &[f32], first: bool) -> bool {
        let mut kmin = f32::INFINITY;
        let mut kmax = f32::NEG_INFINITY;
        for &x in key {
            kmin = kmin.min(x);
            kmax = kmax.max(x);
        }
        if first {
            self.lo = kmin;
            self.hi = kmax;
            self.scale = (self.hi - self.lo) / 255.0;
            return true;
        }
        if kmin >= self.lo && kmax <= self.hi {
            return false;
        }
        let pad = ((kmax.max(self.hi) - kmin.min(self.lo)) / 8.0).max(0.0);
        if kmin < self.lo {
            self.lo = kmin - pad;
        }
        if kmax > self.hi {
            self.hi = kmax + pad;
        }
        self.scale = (self.hi - self.lo) / 255.0;
        true
    }
}

/// Contiguous structure-of-arrays key storage with id bookkeeping and an
/// optional quantized mirror.
///
/// Rows are kept dense by swap-remove: removing a row moves the last row
/// into the hole, in both the `f32` buffer and the mirror, and the
/// id↔row maps are patched to match. Insertion with an existing id
/// replaces the row in place (no reordering), so consumers that scan in
/// row order see exactly the insertion order a `LinearScan` always had.
#[derive(Debug, Clone, Default)]
pub struct FlatBuffer {
    dim: usize,
    /// Row `r`'s id; swap-remove keeps this parallel to `keys`.
    ids: Vec<u64>,
    /// All keys, row-major: row `r` occupies `keys[r*dim .. (r+1)*dim]`.
    keys: Vec<f32>,
    /// id → row (swap-remove keeps this dense).
    positions: HashMap<u64, usize>,
    /// The quantized mirror, when this buffer was built with one.
    quant: Option<QuantMirror>,
}

impl FlatBuffer {
    /// An empty buffer for rows of dimension `dim`, exact storage only.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> FlatBuffer {
        assert!(dim > 0, "FlatBuffer: dim must be positive");
        FlatBuffer {
            dim,
            ..FlatBuffer::default()
        }
    }

    /// Like [`new`](Self::new) but also maintaining the quantized `u8`
    /// mirror for shortlist scoring.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new_quantized(dim: usize) -> FlatBuffer {
        let mut buffer = FlatBuffer::new(dim);
        buffer.quant = Some(QuantMirror::default());
        buffer
    }

    /// Row dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True when this buffer maintains the quantized mirror.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// The row holding `id`, if present.
    pub fn row_of(&self, id: u64) -> Option<usize> {
        self.positions.get(&id).copied()
    }

    /// True when `id` has a row.
    pub fn contains(&self, id: u64) -> bool {
        self.positions.contains_key(&id)
    }

    /// The id stored at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    pub fn id_at(&self, row: usize) -> u64 {
        self.ids[row]
    }

    /// The key stored at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    pub fn key_at(&self, row: usize) -> &[f32] {
        &self.keys[row * self.dim..(row + 1) * self.dim]
    }

    /// All ids, in row order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The raw row-major key buffer (`len · dim` components) — scan it
    /// with `chunks_exact(dim)` for the fastest linear walk.
    pub fn keys(&self) -> &[f32] {
        &self.keys
    }

    /// Stores `key` under `id`, replacing the row in place when the id
    /// already exists. Returns `true` when a new row was created.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != self.dim()`.
    pub fn insert(&mut self, id: u64, key: &[f32]) -> bool {
        assert_eq!(
            key.len(),
            self.dim,
            "FlatBuffer: key dim {} does not match buffer dim {}",
            key.len(),
            self.dim
        );
        let created = match self.positions.get(&id) {
            Some(&row) => {
                self.keys[row * self.dim..(row + 1) * self.dim].copy_from_slice(key);
                false
            }
            None => {
                self.positions.insert(id, self.ids.len());
                self.ids.push(id);
                self.keys.extend_from_slice(key);
                true
            }
        };
        if let Some(mut quant) = self.quant.take() {
            let first = self.ids.len() == 1 && created;
            if quant.cover(key, first) {
                // Params moved: every stored code is stale. Recode all
                // rows — O(n·dim), but the range stabilizes quickly so
                // this amortizes to a constant per insert.
                quant.codes.clear();
                for &x in &self.keys {
                    quant.codes.push(quant.code_of(x));
                }
            } else if created {
                for &x in key {
                    quant.codes.push(quant.code_of(x));
                }
            } else {
                let row = self.positions[&id];
                for (offset, &x) in key.iter().enumerate() {
                    quant.codes[row * self.dim + offset] = quant.code_of(x);
                }
            }
            self.quant = Some(quant);
        }
        created
    }

    /// Removes `id`'s row by swap-remove, returning whether it existed.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(row) = self.positions.remove(&id) else {
            return false;
        };
        self.ids.swap_remove(row);
        if row < self.ids.len() {
            self.positions.insert(self.ids[row], row);
        }
        // Mirror the swap-remove in the flat buffers: the last row moves
        // into the vacated slot, the buffers shrink by one row.
        let last = self.ids.len();
        if row < last {
            self.keys
                .copy_within(last * self.dim..(last + 1) * self.dim, row * self.dim);
        }
        self.keys.truncate(last * self.dim);
        if let Some(quant) = &mut self.quant {
            if row < last {
                quant
                    .codes
                    .copy_within(last * self.dim..(last + 1) * self.dim, row * self.dim);
            }
            quant.codes.truncate(last * self.dim);
        }
        true
    }

    /// Removes every row. Quantization params are re-derived from the
    /// first insert after the clear, so a long-lived buffer re-tightens
    /// its code resolution when its population is replaced.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.keys.clear();
        self.positions.clear();
        if let Some(quant) = &mut self.quant {
            quant.codes.clear();
        }
    }

    /// Quantizes `query` under the buffer's current params into `out`
    /// (cleared first), so it can be scored against stored rows with
    /// [`qdist`](Self::qdist).
    ///
    /// # Panics
    ///
    /// Panics if the buffer has no quantized mirror or
    /// `query.len() != self.dim()`.
    pub fn quantize_query_into(&self, query: &[f32], out: &mut Vec<u8>) {
        let quant = self
            .quant
            .as_ref()
            .expect("quantize_query_into: buffer has no quantized mirror");
        assert_eq!(query.len(), self.dim, "FlatBuffer: query dim mismatch");
        out.clear();
        out.extend(query.iter().map(|&x| quant.code_of(x)));
    }

    /// Approximate squared distance (in code units) between `row` and a
    /// query quantized by [`quantize_query_into`](Self::quantize_query_into).
    ///
    /// # Panics
    ///
    /// Panics if the buffer has no quantized mirror or `row` is out of
    /// range.
    pub fn qdist(&self, row: usize, qquery: &[u8]) -> u64 {
        let quant = self
            .quant
            .as_ref()
            .expect("qdist: buffer has no quantized mirror");
        squared_euclidean_u8(&quant.codes[row * self.dim..(row + 1) * self.dim], qquery)
    }

    /// Exact re-rank: scores each row in `rows` against `query` with the
    /// exact f64 kernel (early-exit bounded) and keeps the `k` nearest
    /// in `out` (cleared first), ascending by `(squared distance, id)`.
    /// Distances are left *squared* — callers apply the final `sqrt`
    /// once, after selection.
    ///
    /// Passing `0..self.len()` makes this exactly the `LinearScan` hot
    /// loop; approximate indexes pass their shortlisted rows instead.
    pub fn rerank_rows_into(
        &self,
        rows: impl Iterator<Item = usize>,
        query: &[f32],
        k: usize,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        for row in rows {
            // Once the selection buffer is full, its tail is the current
            // k-th best: rows whose partial sum already exceeds it can be
            // abandoned mid-kernel without changing the result (squared
            // terms only grow the sum, and the exit is strict so distance
            // ties still reach the id tie-break).
            let bound = match out.last() {
                Some(worst) if out.len() == k => worst.distance,
                _ => f64::INFINITY,
            };
            let key = &self.keys[row * self.dim..(row + 1) * self.dim];
            let Some(distance) = squared_euclidean_flat_within(key, query, bound) else {
                continue;
            };
            push_bounded(
                out,
                k,
                Neighbor {
                    id: self.ids[row],
                    distance,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use features::distance::squared_euclidean_flat;

    fn filled(dim: usize, rows: &[(u64, Vec<f32>)], quantized: bool) -> FlatBuffer {
        let mut buffer = if quantized {
            FlatBuffer::new_quantized(dim)
        } else {
            FlatBuffer::new(dim)
        };
        for (id, key) in rows {
            buffer.insert(*id, key);
        }
        buffer
    }

    #[test]
    fn insert_replace_remove_keep_rows_dense() {
        let mut b = filled(
            2,
            &[
                (10, vec![0.0, 1.0]),
                (20, vec![2.0, 3.0]),
                (30, vec![4.0, 5.0]),
            ],
            false,
        );
        assert_eq!(b.len(), 3);
        assert!(!b.insert(20, &[9.0, 9.0]), "replace is not a create");
        assert_eq!(b.key_at(b.row_of(20).unwrap()), &[9.0, 9.0]);
        assert!(b.remove(10));
        assert!(!b.remove(10));
        assert_eq!(b.len(), 2);
        // Swap-remove moved row 2 (id 30) into row 0.
        assert_eq!(b.id_at(0), 30);
        assert_eq!(b.key_at(0), &[4.0, 5.0]);
        assert_eq!(b.keys().len(), 4);
        assert!(b.contains(30) && !b.contains(10));
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dim(), 2);
    }

    #[test]
    fn rerank_over_all_rows_is_an_exact_scan() {
        let rows: Vec<(u64, Vec<f32>)> = (0..50u64).map(|i| (i, vec![i as f32, 0.5])).collect();
        let b = filled(2, &rows, false);
        let mut out = Vec::new();
        b.rerank_rows_into(0..b.len(), &[20.2, 0.5], 3, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].id, 20);
        assert_eq!(out[1].id, 21);
        assert_eq!(out[2].id, 19);
        // Distances are squared and exact.
        let expect = squared_euclidean_flat(&[20.0, 0.5], &[20.2, 0.5]);
        assert_eq!(out[0].distance.to_bits(), expect.to_bits());
    }

    #[test]
    fn quantized_mirror_scores_identical_rows_at_zero() {
        let rows: Vec<(u64, Vec<f32>)> = (0..20u64)
            .map(|i| (i, vec![i as f32 * 0.3 - 2.0, 1.0 - i as f32 * 0.1]))
            .collect();
        let b = filled(2, &rows, true);
        assert!(b.is_quantized());
        let mut q = Vec::new();
        for (id, key) in &rows {
            b.quantize_query_into(key, &mut q);
            assert_eq!(b.qdist(b.row_of(*id).unwrap(), &q), 0, "row {id}");
        }
    }

    #[test]
    fn quantized_scores_track_true_distances_through_range_growth() {
        // Inserts that repeatedly widen the range force re-quantization;
        // afterwards near rows must still score far below far rows.
        let mut b = FlatBuffer::new_quantized(1);
        for i in 0..64u64 {
            // Alternate sides so the covered range grows both ways.
            let x = if i % 2 == 0 { i as f32 } else { -(i as f32) };
            b.insert(i, &[x]);
        }
        let mut q = Vec::new();
        b.quantize_query_into(&[10.0], &mut q);
        let near = b.qdist(b.row_of(10).unwrap(), &q);
        let far = b.qdist(b.row_of(62).unwrap(), &q);
        assert!(near < far, "near {near} vs far {far}");
        // Swap-remove keeps the mirror parallel.
        assert!(b.remove(10));
        b.quantize_query_into(&[62.0], &mut q);
        assert_eq!(b.qdist(b.row_of(62).unwrap(), &q), 0);
    }

    #[test]
    fn constant_rows_quantize_to_zero_codes() {
        let b = filled(3, &[(1, vec![4.2; 3]), (2, vec![4.2; 3])], true);
        let mut q = Vec::new();
        b.quantize_query_into(&[4.2; 3], &mut q);
        assert_eq!(q, vec![0, 0, 0]);
        assert_eq!(b.qdist(0, &q), 0);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_rejected() {
        FlatBuffer::new(0);
    }

    #[test]
    #[should_panic(expected = "no quantized mirror")]
    fn quantize_requires_mirror() {
        let b = FlatBuffer::new(2);
        let mut q = Vec::new();
        b.quantize_query_into(&[0.0, 0.0], &mut q);
    }
}
