//! The index abstraction shared by every search structure.

use std::collections::BinaryHeap;

use features::FeatureVector;

/// One query result: an entry id and its (exact) distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The id the entry was inserted under.
    pub id: u64,
    /// Euclidean distance to the query (always exact — approximate indexes
    /// may miss neighbours, but never report wrong distances).
    pub distance: f64,
}

/// Ordered-by-distance entry for a best-first search frontier (min-heap
/// via inverted `Ord`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HeapCandidate {
    pub(crate) distance: f64,
    pub(crate) node: usize,
}

impl Eq for HeapCandidate {}
impl Ord for HeapCandidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap: closer first.
        other.distance.total_cmp(&self.distance)
    }
}
impl PartialOrd for HeapCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable per-query working memory for [`NnIndex::nearest_into`].
///
/// Each index family uses the subset it needs — LSH the candidate/
/// shortlist buffers, NSW the visited stamps and frontier heap — but the
/// scratch is one concrete type so it can travel behind `dyn NnIndex`
/// without the caller knowing which index is live (the cache swaps
/// indexes at runtime during migration). After the first few queries the
/// buffers reach their working size and the whole lookup path is
/// allocation-free.
///
/// A scratch carries no results, only capacity: any scratch works with
/// any index and queries are read-only, so reusing one across indexes
/// (or after a migration) is always correct.
#[derive(Debug, Clone, Default)]
pub struct IndexScratch {
    /// Candidate ids gathered before ranking (LSH bucket union).
    pub(crate) candidates: Vec<u64>,
    /// The query's quantized codes under the index buffer's params.
    pub(crate) qquery: Vec<u8>,
    /// Bounded `(approx score, id)` shortlist, ascending.
    pub(crate) shortlist: Vec<(u64, u64)>,
    /// Per-node visit stamps (graph search); a node is visited in the
    /// current query iff `visited[node] == epoch`.
    pub(crate) visited: Vec<u32>,
    /// The stamp of the current query.
    pub(crate) epoch: u32,
    /// Best-first search frontier.
    pub(crate) frontier: BinaryHeap<HeapCandidate>,
    /// Beam of `(squared distance, node)` results, ascending.
    pub(crate) beam: Vec<(f64, usize)>,
}

impl IndexScratch {
    /// An empty scratch; buffers grow to their working size on first use.
    pub fn new() -> IndexScratch {
        IndexScratch::default()
    }

    /// Stamps a fresh query epoch and returns it, resetting every visit
    /// mark in O(1) — except once per `u32` wrap, where the stamps are
    /// cleared for real to keep stale marks from aliasing.
    pub(crate) fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// A mutable nearest-neighbour index over feature vectors.
///
/// All implementations measure Euclidean distance, reject vectors of the
/// wrong dimension, and treat `insert` with an existing id as an update
/// (replace the key, keep the id).
///
/// The trait is object-safe: the cache stores a `Box<dyn NnIndex>` chosen
/// at configuration time.
pub trait NnIndex: Send {
    /// The dimension of keys this index accepts.
    fn dim(&self) -> usize;

    /// Number of entries currently indexed.
    fn len(&self) -> usize;

    /// True if the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `key` under `id`, replacing any existing entry with that id.
    ///
    /// # Panics
    ///
    /// Panics if `key.dim() != self.dim()`.
    fn insert(&mut self, id: u64, key: FeatureVector);

    /// Removes the entry with `id`, returning whether it existed.
    fn remove(&mut self, id: u64) -> bool;

    /// The primary query path: writes the up-to-`k` nearest entries to
    /// `query` into `out` (cleared first), ascending by distance, using
    /// `scratch` for working memory. Approximate indexes may return
    /// fewer or slightly farther entries, but reported distances are
    /// always exact.
    ///
    /// This is the *required* method — every index implements its real
    /// search here, allocation-free in steady state (enforced by xtask
    /// rule A), and the allocating [`nearest`](NnIndex::nearest) is just
    /// a convenience wrapper over it. Callers on the hot path hold a
    /// reusable [`IndexScratch`] and output buffer; any scratch works
    /// with any index.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()` or `k == 0`.
    fn nearest_into(
        &self,
        query: &FeatureVector,
        k: usize,
        scratch: &mut IndexScratch,
        out: &mut Vec<Neighbor>,
    );

    /// Convenience wrapper over [`nearest_into`](NnIndex::nearest_into)
    /// that allocates a fresh scratch and result buffer per call — fine
    /// for tests and cold paths, wasteful per frame.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()` or `k == 0`.
    fn nearest(&self, query: &FeatureVector, k: usize) -> Vec<Neighbor> {
        let mut scratch = IndexScratch::new();
        let mut out = Vec::new();
        self.nearest_into(query, k, &mut scratch, &mut out);
        out
    }

    /// Removes all entries.
    fn clear(&mut self);

    /// A short name for reports (`"linear"`, `"kdtree"`, `"lsh"`).
    fn kind(&self) -> &'static str;
}

/// Validates common query preconditions; used by all implementations.
pub(crate) fn check_query(dim: usize, query: &FeatureVector, k: usize) {
    assert_eq!(
        query.dim(),
        dim,
        "nearest: query dim {} does not match index dim {dim}",
        query.dim()
    );
    assert!(k > 0, "nearest: k must be positive");
}

/// Validates common insert preconditions; used by all implementations.
pub(crate) fn check_insert(dim: usize, key: &FeatureVector) {
    assert_eq!(
        key.dim(),
        dim,
        "insert: key dim {} does not match index dim {dim}",
        key.dim()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_is_plain_data() {
        let n = Neighbor {
            id: 7,
            distance: 1.5,
        };
        assert_eq!(n, n.clone());
        assert_eq!(format!("{n:?}"), "Neighbor { id: 7, distance: 1.5 }");
    }

    #[test]
    fn epoch_wrap_clears_stale_visit_marks() {
        let mut scratch = IndexScratch::new();
        scratch.visited = vec![u32::MAX - 1, 3, 0];
        scratch.epoch = u32::MAX - 1;
        // Wrapping to 0 must clear the stamps and restart at 1, so the
        // pre-wrap mark in slot 0 cannot alias the new epoch.
        assert_eq!(scratch.next_epoch(), u32::MAX);
        assert_eq!(scratch.next_epoch(), 1);
        assert_eq!(scratch.visited, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn check_query_rejects_zero_k() {
        check_query(2, &FeatureVector::zeros(2), 0);
    }

    #[test]
    #[should_panic(expected = "query dim")]
    fn check_query_rejects_dim_mismatch() {
        check_query(2, &FeatureVector::zeros(3), 1);
    }

    #[test]
    #[should_panic(expected = "key dim")]
    fn check_insert_rejects_dim_mismatch() {
        check_insert(4, &FeatureVector::zeros(2));
    }
}
