//! The index abstraction shared by every search structure.

use features::FeatureVector;

/// One query result: an entry id and its (exact) distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The id the entry was inserted under.
    pub id: u64,
    /// Euclidean distance to the query (always exact — approximate indexes
    /// may miss neighbours, but never report wrong distances).
    pub distance: f64,
}

/// A mutable nearest-neighbour index over feature vectors.
///
/// All implementations measure Euclidean distance, reject vectors of the
/// wrong dimension, and treat `insert` with an existing id as an update
/// (replace the key, keep the id).
///
/// The trait is object-safe: the cache stores a `Box<dyn NnIndex>` chosen
/// at configuration time.
pub trait NnIndex: Send {
    /// The dimension of keys this index accepts.
    fn dim(&self) -> usize;

    /// Number of entries currently indexed.
    fn len(&self) -> usize;

    /// True if the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `key` under `id`, replacing any existing entry with that id.
    ///
    /// # Panics
    ///
    /// Panics if `key.dim() != self.dim()`.
    fn insert(&mut self, id: u64, key: FeatureVector);

    /// Removes the entry with `id`, returning whether it existed.
    fn remove(&mut self, id: u64) -> bool;

    /// The up-to-`k` nearest entries to `query`, ascending by distance.
    /// Approximate indexes may return fewer or slightly farther entries.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()` or `k == 0`.
    fn nearest(&self, query: &FeatureVector, k: usize) -> Vec<Neighbor>;

    /// Like [`nearest`](NnIndex::nearest) but writes the results into a
    /// caller-owned buffer (cleared first), so a steady-state caller that
    /// reuses the buffer pays no allocation per query. The default
    /// implementation delegates to `nearest`; indexes on the hot path
    /// override it with a genuinely allocation-free scan.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()` or `k == 0`.
    fn nearest_into(&self, query: &FeatureVector, k: usize, out: &mut Vec<Neighbor>) {
        out.clear();
        out.extend(self.nearest(query, k));
    }

    /// Removes all entries.
    fn clear(&mut self);

    /// A short name for reports (`"linear"`, `"kdtree"`, `"lsh"`).
    fn kind(&self) -> &'static str;
}

/// Validates common query preconditions; used by all implementations.
pub(crate) fn check_query(dim: usize, query: &FeatureVector, k: usize) {
    assert_eq!(
        query.dim(),
        dim,
        "nearest: query dim {} does not match index dim {dim}",
        query.dim()
    );
    assert!(k > 0, "nearest: k must be positive");
}

/// Validates common insert preconditions; used by all implementations.
pub(crate) fn check_insert(dim: usize, key: &FeatureVector) {
    assert_eq!(
        key.dim(),
        dim,
        "insert: key dim {} does not match index dim {dim}",
        key.dim()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_is_plain_data() {
        let n = Neighbor {
            id: 7,
            distance: 1.5,
        };
        assert_eq!(n, n.clone());
        assert_eq!(format!("{n:?}"), "Neighbor { id: 7, distance: 1.5 }");
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn check_query_rejects_zero_k() {
        check_query(2, &FeatureVector::zeros(2), 0);
    }

    #[test]
    #[should_panic(expected = "query dim")]
    fn check_query_rejects_dim_mismatch() {
        check_query(2, &FeatureVector::zeros(3), 1);
    }

    #[test]
    #[should_panic(expected = "key dim")]
    fn check_insert_rejects_dim_mismatch() {
        check_insert(4, &FeatureVector::zeros(2));
    }
}
