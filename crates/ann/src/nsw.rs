//! A navigable-small-world (NSW) graph index.
//!
//! The graph-based family (NSW / HNSW) is what production ANN systems use
//! at scale: each inserted point is connected to its `m` nearest
//! neighbours found by a best-first *beam search* over the existing
//! graph, and queries run the same beam search. This implementation is
//! the single-layer variant (no hierarchy — at mobile cache sizes the
//! entry-point walk the hierarchy saves is negligible), with tombstone
//! deletion and periodic compaction like the k-d tree.
//!
//! Keys live in one contiguous row-major `f32` buffer parallel to the
//! node table (tombstoned rows stay until compaction, so node indexes
//! stay stable), and every distance goes through the chunked flat
//! kernel. Query-time working memory — visit stamps, the frontier heap,
//! the beam — lives in [`IndexScratch`], so steady-state lookups do not
//! allocate.
//!
//! Compared to LSH it needs no tuning per dimension and its recall
//! degrades smoothly with the beam width `ef`.

use std::collections::HashMap;

use features::{distance::squared_euclidean_flat, FeatureVector};
use serde::{Deserialize, Serialize};

use crate::index::{check_insert, check_query, HeapCandidate, IndexScratch, Neighbor, NnIndex};

/// Tuning of an [`NswIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NswConfig {
    /// Bidirectional links kept per node.
    pub m: usize,
    /// Beam width during search and insertion (larger ⇒ higher recall,
    /// slower).
    pub ef: usize,
}

impl Default for NswConfig {
    fn default() -> Self {
        NswConfig { m: 12, ef: 48 }
    }
}

impl NswConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `ef < m`.
    pub fn validate(&self) {
        assert!(self.m > 0, "NswConfig: m must be positive");
        assert!(self.ef >= self.m, "NswConfig: ef must be at least m");
    }
}

#[derive(Debug, Clone)]
struct Node {
    id: u64,
    links: Vec<usize>,
    deleted: bool,
}

/// Approximate nearest-neighbour search over a navigable-small-world
/// graph.
#[derive(Debug, Clone)]
pub struct NswIndex {
    dim: usize,
    config: NswConfig,
    nodes: Vec<Node>,
    /// Keys, row-major, parallel to `nodes`: node `n`'s key occupies
    /// `keys[n*dim .. (n+1)*dim]`. Tombstoned rows are retained so node
    /// indexes (and the links pointing at them) stay stable between
    /// compactions.
    keys: Vec<f32>,
    positions: HashMap<u64, usize>,
    live: usize,
    /// Scratch reused by insertion-time beam searches (queries bring
    /// their own through the trait).
    insert_scratch: IndexScratch,
}

impl NswIndex {
    /// Internal constructor behind [`crate::build`].
    pub(crate) fn with_config(dim: usize, config: NswConfig) -> NswIndex {
        assert!(dim > 0, "NswIndex: dim must be positive");
        config.validate();
        NswIndex {
            dim,
            config,
            nodes: Vec::new(),
            keys: Vec::new(),
            positions: HashMap::new(),
            live: 0,
            insert_scratch: IndexScratch::new(),
        }
    }

    /// The index configuration.
    pub fn config(&self) -> NswConfig {
        self.config
    }

    /// Exact squared distance from node `n`'s key row to `query`.
    fn row_distance(&self, n: usize, query: &[f32]) -> f64 {
        squared_euclidean_flat(&self.keys[n * self.dim..(n + 1) * self.dim], query)
    }

    /// Best-first beam search; leaves up to `ef` candidates (live nodes
    /// only) in `scratch.beam`, ascending by squared distance. Visit
    /// marks are epoch stamps in `scratch` — one counter bump resets them
    /// all, so repeated searches touch no new memory once the stamp table
    /// covers the node count.
    ///
    /// The search is seeded from several entry points spread across
    /// insertion order, not one: link pruning keeps only a node's `2m`
    /// closest edges, so on tightly clustered keys the long-range bridges
    /// between clusters are eventually pruned away and a single-entry
    /// search is trapped in the entry's component. Multiple well-spread
    /// entries restore reachability (and, because insertion uses the same
    /// search, newly inserted nodes link into their true neighbourhood,
    /// healing the graph as it grows).
    fn beam_search_into(&self, query: &[f32], ef: usize, scratch: &mut IndexScratch) {
        scratch.beam.clear();
        if self.nodes.is_empty() {
            return;
        }
        if scratch.visited.len() < self.nodes.len() {
            scratch.visited.resize(self.nodes.len(), 0);
        }
        let epoch = scratch.next_epoch();
        scratch.frontier.clear();
        const ENTRY_FANOUT: usize = 8;
        let len = self.nodes.len();
        let stride = len.div_ceil(ENTRY_FANOUT);
        for seed in (0..len).step_by(stride).chain([len - 1]) {
            if scratch.visited[seed] != epoch {
                scratch.visited[seed] = epoch;
                scratch.frontier.push(HeapCandidate {
                    distance: self.row_distance(seed, query),
                    node: seed,
                });
            }
        }

        while let Some(HeapCandidate { distance, node }) = scratch.frontier.pop() {
            // Stop when the frontier is strictly worse than the beam's
            // current worst and the beam is full.
            if scratch.beam.len() >= ef && distance > scratch.beam[scratch.beam.len() - 1].0 {
                break;
            }
            if !self.nodes[node].deleted {
                let at = scratch.beam.partition_point(|&(d, _)| d <= distance);
                scratch.beam.insert(at, (distance, node));
                scratch.beam.truncate(ef);
            }
            for &next in &self.nodes[node].links {
                if scratch.visited[next] != epoch {
                    scratch.visited[next] = epoch;
                    let d = self.row_distance(next, query);
                    if scratch.beam.len() < ef || d <= scratch.beam[scratch.beam.len() - 1].0 {
                        scratch.frontier.push(HeapCandidate {
                            distance: d,
                            node: next,
                        });
                    }
                }
            }
        }
    }

    fn compact(&mut self) {
        // Rebuild the graph from live nodes, in node order so the result
        // is deterministic.
        let dim = self.dim;
        let entries: Vec<(u64, Vec<f32>)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.deleted)
            .map(|(i, n)| (n.id, self.keys[i * dim..(i + 1) * dim].to_vec()))
            .collect();
        self.nodes.clear();
        self.keys.clear();
        self.positions.clear();
        self.live = 0;
        for (id, key) in &entries {
            self.insert_internal(*id, key);
        }
    }

    fn insert_internal(&mut self, id: u64, key: &[f32]) {
        let mut scratch = std::mem::take(&mut self.insert_scratch);
        self.beam_search_into(key, self.config.ef, &mut scratch);
        let new_index = self.nodes.len();
        let links: Vec<usize> = scratch
            .beam
            .iter()
            .take(self.config.m)
            .map(|&(_, node)| node)
            .collect();
        self.insert_scratch = scratch;
        self.nodes.push(Node {
            id,
            links: links.clone(),
            deleted: false,
        });
        self.keys.extend_from_slice(key);
        // Bidirectional links, pruning the neighbour's list to the m
        // closest when it overflows.
        for linked in links {
            self.nodes[linked].links.push(new_index);
            if self.nodes[linked].links.len() > 2 * self.config.m {
                let mut with_d: Vec<(f64, usize)> = self.nodes[linked]
                    .links
                    .iter()
                    .map(|&l| {
                        (
                            squared_euclidean_flat(
                                &self.keys[l * self.dim..(l + 1) * self.dim],
                                &self.keys[linked * self.dim..(linked + 1) * self.dim],
                            ),
                            l,
                        )
                    })
                    .collect();
                with_d.sort_by(|a, b| a.0.total_cmp(&b.0));
                with_d.truncate(2 * self.config.m);
                self.nodes[linked].links.clear();
                self.nodes[linked]
                    .links
                    .extend(with_d.iter().map(|&(_, l)| l));
            }
        }
        self.positions.insert(id, new_index);
        self.live += 1;
    }
}

impl NnIndex for NswIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.live
    }

    fn insert(&mut self, id: u64, key: FeatureVector) {
        check_insert(self.dim, &key);
        if self.positions.contains_key(&id) {
            self.remove(id);
        }
        self.insert_internal(id, key.as_slice());
    }

    fn remove(&mut self, id: u64) -> bool {
        let Some(index) = self.positions.remove(&id) else {
            return false;
        };
        debug_assert!(!self.nodes[index].deleted);
        self.nodes[index].deleted = true;
        self.live -= 1;
        if self.live * 2 < self.nodes.len() {
            self.compact();
        }
        true
    }

    fn nearest_into(
        &self,
        query: &FeatureVector,
        k: usize,
        scratch: &mut IndexScratch,
        out: &mut Vec<Neighbor>,
    ) {
        check_query(self.dim, query, k);
        self.beam_search_into(query.as_slice(), self.config.ef.max(k), scratch);
        out.clear();
        for &(distance, node) in scratch.beam.iter().take(k) {
            out.push(Neighbor {
                id: self.nodes[node].id,
                distance: distance.sqrt(),
            });
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.keys.clear();
        self.positions.clear();
        self.live = 0;
    }

    fn kind(&self) -> &'static str {
        "nsw"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use features::projection::random_vectors;
    use simcore::SimRng;
    use std::collections::HashSet;

    fn index_with(keys: &[FeatureVector]) -> NswIndex {
        let mut index = NswIndex::with_config(keys[0].dim(), NswConfig::default());
        for (i, key) in keys.iter().enumerate() {
            index.insert(i as u64, key.clone());
        }
        index
    }

    #[test]
    fn finds_exact_duplicates() {
        let mut rng = SimRng::seed(1);
        let keys = random_vectors(400, 16, &mut rng);
        let index = index_with(&keys);
        for (i, key) in keys.iter().enumerate().step_by(13) {
            let hits = index.nearest(key, 1);
            assert_eq!(hits[0].id, i as u64);
            assert!(hits[0].distance < 1e-6);
        }
    }

    #[test]
    fn recall_against_linear_scan() {
        let mut rng = SimRng::seed(2);
        let keys = random_vectors(500, 16, &mut rng);
        let nsw = index_with(&keys);
        let mut linear = LinearScan::with_dim(16);
        for (i, key) in keys.iter().enumerate() {
            linear.insert(i as u64, key.clone());
        }
        let queries = random_vectors(100, 16, &mut rng);
        let mut top1_agree = 0;
        let mut top5_recall = 0usize;
        for q in &queries {
            let approx = nsw.nearest(q, 5);
            let exact = linear.nearest(q, 5);
            if approx.first().map(|n| n.id) == exact.first().map(|n| n.id) {
                top1_agree += 1;
            }
            let approx_ids: HashSet<u64> = approx.iter().map(|n| n.id).collect();
            top5_recall += exact.iter().filter(|n| approx_ids.contains(&n.id)).count();
        }
        assert!(top1_agree >= 90, "top-1 agreement {top1_agree}/100");
        assert!(top5_recall >= 420, "top-5 recall {top5_recall}/500");
    }

    #[test]
    fn results_are_sorted_with_exact_distances() {
        let mut rng = SimRng::seed(3);
        let keys = random_vectors(200, 8, &mut rng);
        let index = index_with(&keys);
        let q = &random_vectors(1, 8, &mut rng)[0];
        let hits = index.nearest(q, 10);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        for hit in &hits {
            let true_d = features::distance::euclidean(&keys[hit.id as usize], q);
            assert!((hit.distance - true_d).abs() < 1e-9);
        }
    }

    #[test]
    fn removal_and_compaction_keep_queries_correct() {
        let mut rng = SimRng::seed(4);
        let keys = random_vectors(300, 8, &mut rng);
        let mut index = index_with(&keys);
        for i in 0..300u64 {
            if i % 3 != 0 {
                assert!(index.remove(i));
            }
        }
        assert_eq!(index.len(), 100);
        // Every surviving key is still findable.
        for i in (0..300).step_by(3) {
            let hits = index.nearest(&keys[i], 1);
            assert_eq!(hits[0].id, i as u64, "survivor {i} lost after compaction");
        }
        // Deleted keys never surface.
        let all_ids: HashSet<u64> = (0..300)
            .step_by(3)
            .flat_map(|i| index.nearest(&keys[i], 5))
            .map(|n| n.id)
            .collect();
        assert!(all_ids.iter().all(|id| id % 3 == 0));
    }

    #[test]
    fn shared_scratch_works_across_queries_and_indexes() {
        let mut rng = SimRng::seed(5);
        let keys = random_vectors(200, 8, &mut rng);
        let index = index_with(&keys);
        let other = index_with(&keys[..50]);
        let mut scratch = IndexScratch::new();
        let mut out = Vec::new();
        // The same scratch serves interleaved queries against different
        // indexes; results match the fresh-scratch path exactly.
        for (i, q) in keys.iter().take(20).enumerate() {
            let live = if i % 2 == 0 { &index } else { &other };
            live.nearest_into(q, 3, &mut scratch, &mut out);
            let fresh = live.nearest(q, 3);
            assert_eq!(out.len(), fresh.len());
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
    }

    #[test]
    fn update_replaces_key() {
        let mut index = NswIndex::with_config(2, NswConfig::default());
        let a = FeatureVector::from_vec(vec![0.0, 0.0]).unwrap();
        let b = FeatureVector::from_vec(vec![9.0, 9.0]).unwrap();
        index.insert(1, a);
        index.insert(1, b.clone());
        assert_eq!(index.len(), 1);
        let hits = index.nearest(&b, 1);
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn empty_and_clear() {
        let mut index = NswIndex::with_config(4, NswConfig::default());
        assert!(index.nearest(&FeatureVector::zeros(4), 3).is_empty());
        index.insert(1, FeatureVector::zeros(4));
        index.clear();
        assert!(index.is_empty());
        assert_eq!(index.kind(), "nsw");
        assert!(!index.remove(1));
    }

    #[test]
    #[should_panic(expected = "ef must be at least m")]
    fn config_validates() {
        NswIndex::with_config(4, NswConfig { m: 16, ef: 8 });
    }
}
