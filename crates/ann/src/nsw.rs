//! A navigable-small-world (NSW) graph index.
//!
//! The graph-based family (NSW / HNSW) is what production ANN systems use
//! at scale: each inserted point is connected to its `m` nearest
//! neighbours found by a best-first *beam search* over the existing
//! graph, and queries run the same beam search. This implementation is
//! the single-layer variant (no hierarchy — at mobile cache sizes the
//! entry-point walk the hierarchy saves is negligible), with tombstone
//! deletion and periodic compaction like the k-d tree.
//!
//! Compared to LSH it needs no tuning per dimension and its recall
//! degrades smoothly with the beam width `ef`.

use std::collections::{BinaryHeap, HashMap, HashSet};

use features::{distance::squared_euclidean, FeatureVector};
use serde::{Deserialize, Serialize};

use crate::index::{check_insert, check_query, Neighbor, NnIndex};

/// Tuning of an [`NswIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NswConfig {
    /// Bidirectional links kept per node.
    pub m: usize,
    /// Beam width during search and insertion (larger ⇒ higher recall,
    /// slower).
    pub ef: usize,
}

impl Default for NswConfig {
    fn default() -> Self {
        NswConfig { m: 12, ef: 48 }
    }
}

impl NswConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `ef < m`.
    pub fn validate(&self) {
        assert!(self.m > 0, "NswConfig: m must be positive");
        assert!(self.ef >= self.m, "NswConfig: ef must be at least m");
    }
}

#[derive(Debug, Clone)]
struct Node {
    id: u64,
    key: FeatureVector,
    links: Vec<usize>,
    deleted: bool,
}

/// Ordered-by-distance entry for the search frontier (min-heap via
/// `Reverse` semantics implemented manually).
#[derive(PartialEq)]
struct Candidate {
    distance: f64,
    node: usize,
}

impl Eq for Candidate {}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap: closer first.
        other.distance.total_cmp(&self.distance)
    }
}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Approximate nearest-neighbour search over a navigable-small-world
/// graph.
#[derive(Debug, Clone)]
pub struct NswIndex {
    dim: usize,
    config: NswConfig,
    nodes: Vec<Node>,
    positions: HashMap<u64, usize>,
    live: usize,
}

impl NswIndex {
    /// Creates an empty index for keys of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or the config is invalid.
    pub fn new(dim: usize, config: NswConfig) -> NswIndex {
        assert!(dim > 0, "NswIndex: dim must be positive");
        config.validate();
        NswIndex {
            dim,
            config,
            nodes: Vec::new(),
            positions: HashMap::new(),
            live: 0,
        }
    }

    /// The index configuration.
    pub fn config(&self) -> NswConfig {
        self.config
    }

    /// Best-first beam search from an arbitrary entry point; returns up
    /// to `ef` candidates (live nodes only), ascending by distance.
    fn beam_search(&self, query: &FeatureVector, ef: usize) -> Vec<(f64, usize)> {
        let Some(entry) = self.entry_point() else {
            return Vec::new();
        };
        let mut visited: HashSet<usize> = HashSet::new();
        let mut frontier: BinaryHeap<Candidate> = BinaryHeap::new();
        let mut best: Vec<(f64, usize)> = Vec::new(); // sorted ascending

        let entry_distance = squared_euclidean(&self.nodes[entry].key, query);
        visited.insert(entry);
        frontier.push(Candidate {
            distance: entry_distance,
            node: entry,
        });

        while let Some(Candidate { distance, node }) = frontier.pop() {
            // Stop when the frontier is strictly worse than the beam's
            // current worst and the beam is full.
            if best.len() >= ef && distance > best[best.len() - 1].0 {
                break;
            }
            if !self.nodes[node].deleted {
                let at = best.partition_point(|&(d, _)| d <= distance);
                best.insert(at, (distance, node));
                best.truncate(ef);
            }
            for &next in &self.nodes[node].links {
                if visited.insert(next) {
                    let d = squared_euclidean(&self.nodes[next].key, query);
                    if best.len() < ef || d <= best[best.len() - 1].0 {
                        frontier.push(Candidate {
                            distance: d,
                            node: next,
                        });
                    }
                }
            }
        }
        best
    }

    /// Any live node to start searches from (the most recently inserted
    /// live node, which is well-connected).
    fn entry_point(&self) -> Option<usize> {
        self.nodes.iter().rposition(|n| !n.deleted)
    }

    fn compact(&mut self) {
        // Rebuild the graph from live nodes.
        let entries: Vec<(u64, FeatureVector)> = self
            .nodes
            .drain(..)
            .filter(|n| !n.deleted)
            .map(|n| (n.id, n.key))
            .collect();
        self.positions.clear();
        self.live = 0;
        for (id, key) in entries {
            self.insert_internal(id, key);
        }
    }

    fn insert_internal(&mut self, id: u64, key: FeatureVector) {
        let neighbors = self.beam_search(&key, self.config.ef);
        let new_index = self.nodes.len();
        let links: Vec<usize> = neighbors
            .iter()
            .take(self.config.m)
            .map(|&(_, node)| node)
            .collect();
        self.nodes.push(Node {
            id,
            key,
            links: links.clone(),
            deleted: false,
        });
        // Bidirectional links, pruning the neighbour's list to the m
        // closest when it overflows.
        for linked in links {
            self.nodes[linked].links.push(new_index);
            if self.nodes[linked].links.len() > 2 * self.config.m {
                let anchor = self.nodes[linked].key.clone();
                let mut with_d: Vec<(f64, usize)> = self.nodes[linked]
                    .links
                    .iter()
                    .map(|&l| (squared_euclidean(&self.nodes[l].key, &anchor), l))
                    .collect();
                with_d.sort_by(|a, b| a.0.total_cmp(&b.0));
                with_d.truncate(2 * self.config.m);
                self.nodes[linked].links = with_d.into_iter().map(|(_, l)| l).collect();
            }
        }
        self.positions.insert(id, new_index);
        self.live += 1;
    }
}

impl NnIndex for NswIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.live
    }

    fn insert(&mut self, id: u64, key: FeatureVector) {
        check_insert(self.dim, &key);
        if self.positions.contains_key(&id) {
            self.remove(id);
        }
        self.insert_internal(id, key);
    }

    fn remove(&mut self, id: u64) -> bool {
        let Some(index) = self.positions.remove(&id) else {
            return false;
        };
        debug_assert!(!self.nodes[index].deleted);
        self.nodes[index].deleted = true;
        self.live -= 1;
        if self.live * 2 < self.nodes.len() {
            self.compact();
        }
        true
    }

    fn nearest(&self, query: &FeatureVector, k: usize) -> Vec<Neighbor> {
        check_query(self.dim, query, k);
        self.beam_search(query, self.config.ef.max(k))
            .into_iter()
            .take(k)
            .map(|(distance, node)| Neighbor {
                id: self.nodes[node].id,
                distance: distance.sqrt(),
            })
            .collect()
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.positions.clear();
        self.live = 0;
    }

    fn kind(&self) -> &'static str {
        "nsw"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use features::projection::random_vectors;
    use simcore::SimRng;

    fn index_with(keys: &[FeatureVector]) -> NswIndex {
        let mut index = NswIndex::new(keys[0].dim(), NswConfig::default());
        for (i, key) in keys.iter().enumerate() {
            index.insert(i as u64, key.clone());
        }
        index
    }

    #[test]
    fn finds_exact_duplicates() {
        let mut rng = SimRng::seed(1);
        let keys = random_vectors(400, 16, &mut rng);
        let index = index_with(&keys);
        for (i, key) in keys.iter().enumerate().step_by(13) {
            let hits = index.nearest(key, 1);
            assert_eq!(hits[0].id, i as u64);
            assert!(hits[0].distance < 1e-6);
        }
    }

    #[test]
    fn recall_against_linear_scan() {
        let mut rng = SimRng::seed(2);
        let keys = random_vectors(500, 16, &mut rng);
        let nsw = index_with(&keys);
        let mut linear = LinearScan::new(16);
        for (i, key) in keys.iter().enumerate() {
            linear.insert(i as u64, key.clone());
        }
        let queries = random_vectors(100, 16, &mut rng);
        let mut top1_agree = 0;
        let mut top5_recall = 0usize;
        for q in &queries {
            let approx = nsw.nearest(q, 5);
            let exact = linear.nearest(q, 5);
            if approx.first().map(|n| n.id) == exact.first().map(|n| n.id) {
                top1_agree += 1;
            }
            let approx_ids: HashSet<u64> = approx.iter().map(|n| n.id).collect();
            top5_recall += exact.iter().filter(|n| approx_ids.contains(&n.id)).count();
        }
        assert!(top1_agree >= 90, "top-1 agreement {top1_agree}/100");
        assert!(top5_recall >= 420, "top-5 recall {top5_recall}/500");
    }

    #[test]
    fn results_are_sorted_with_exact_distances() {
        let mut rng = SimRng::seed(3);
        let keys = random_vectors(200, 8, &mut rng);
        let index = index_with(&keys);
        let q = &random_vectors(1, 8, &mut rng)[0];
        let hits = index.nearest(q, 10);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        for hit in &hits {
            let true_d = features::distance::euclidean(&keys[hit.id as usize], q);
            assert!((hit.distance - true_d).abs() < 1e-9);
        }
    }

    #[test]
    fn removal_and_compaction_keep_queries_correct() {
        let mut rng = SimRng::seed(4);
        let keys = random_vectors(300, 8, &mut rng);
        let mut index = index_with(&keys);
        for i in 0..300u64 {
            if i % 3 != 0 {
                assert!(index.remove(i));
            }
        }
        assert_eq!(index.len(), 100);
        // Every surviving key is still findable.
        for i in (0..300).step_by(3) {
            let hits = index.nearest(&keys[i], 1);
            assert_eq!(hits[0].id, i as u64, "survivor {i} lost after compaction");
        }
        // Deleted keys never surface.
        let all_ids: HashSet<u64> = (0..300)
            .step_by(3)
            .flat_map(|i| index.nearest(&keys[i], 5))
            .map(|n| n.id)
            .collect();
        assert!(all_ids.iter().all(|id| id % 3 == 0));
    }

    #[test]
    fn update_replaces_key() {
        let mut index = NswIndex::new(2, NswConfig::default());
        let a = FeatureVector::from_vec(vec![0.0, 0.0]).unwrap();
        let b = FeatureVector::from_vec(vec![9.0, 9.0]).unwrap();
        index.insert(1, a);
        index.insert(1, b.clone());
        assert_eq!(index.len(), 1);
        let hits = index.nearest(&b, 1);
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn empty_and_clear() {
        let mut index = NswIndex::new(4, NswConfig::default());
        assert!(index.nearest(&FeatureVector::zeros(4), 3).is_empty());
        index.insert(1, FeatureVector::zeros(4));
        index.clear();
        assert!(index.is_empty());
        assert_eq!(index.kind(), "nsw");
        assert!(!index.remove(1));
    }

    #[test]
    #[should_panic(expected = "ef must be at least m")]
    fn config_validates() {
        NswIndex::new(4, NswConfig { m: 16, ef: 8 });
    }
}
