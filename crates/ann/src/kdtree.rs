//! An exact k-d tree with tombstone deletion and automatic rebalancing.

use std::collections::HashMap;

use features::{distance::squared_euclidean, FeatureVector};

use crate::index::{check_insert, check_query, Neighbor, NnIndex};

/// Exact nearest-neighbour search via a k-d tree.
///
/// Insertion walks to a leaf (no rebalancing); deletion tombstones the
/// node. When tombstones exceed half the nodes, or the tree becomes deeper
/// than `4·log₂(n)`, the tree is rebuilt balanced by median splits. In low
/// dimension queries are logarithmic; in the 64-dimensional key space the
/// branch-and-bound bound rarely prunes and performance approaches the
/// linear scan — which is precisely the behaviour the index-comparison
/// benchmark (`R-11`) demonstrates.
#[derive(Debug, Clone)]
pub struct KdTree {
    dim: usize,
    nodes: Vec<Node>,
    root: Option<usize>,
    positions: HashMap<u64, usize>,
    live: usize,
    max_depth_seen: usize,
}

#[derive(Debug, Clone)]
struct Node {
    id: u64,
    key: FeatureVector,
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
    deleted: bool,
}

impl KdTree {
    /// Creates an empty tree for keys of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> KdTree {
        assert!(dim > 0, "KdTree: dim must be positive");
        KdTree {
            dim,
            nodes: Vec::new(),
            root: None,
            positions: HashMap::new(),
            live: 0,
            max_depth_seen: 0,
        }
    }

    /// Fraction of nodes that are tombstones.
    pub fn tombstone_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            1.0 - self.live as f64 / self.nodes.len() as f64
        }
    }

    fn insert_node(&mut self, id: u64, key: FeatureVector) {
        let mut depth = 0usize;
        let mut slot = self.root;
        let mut parent: Option<(usize, bool)> = None; // (index, go_right)
        while let Some(idx) = slot {
            let axis = self.nodes[idx].axis;
            let go_right = key[axis] >= self.nodes[idx].key[axis];
            parent = Some((idx, go_right));
            slot = if go_right {
                self.nodes[idx].right
            } else {
                self.nodes[idx].left
            };
            depth += 1;
        }
        let new_index = self.nodes.len();
        self.nodes.push(Node {
            id,
            key,
            axis: depth % self.dim,
            left: None,
            right: None,
            deleted: false,
        });
        match parent {
            None => self.root = Some(new_index),
            Some((p, true)) => self.nodes[p].right = Some(new_index),
            Some((p, false)) => self.nodes[p].left = Some(new_index),
        }
        self.positions.insert(id, new_index);
        self.live += 1;
        self.max_depth_seen = self.max_depth_seen.max(depth + 1);
    }

    fn needs_rebuild(&self) -> bool {
        if self.live == 0 {
            return !self.nodes.is_empty();
        }
        let deep = self.max_depth_seen > 8 + 4 * (usize::BITS - self.live.leading_zeros()) as usize;
        self.tombstone_fraction() > 0.5 || deep
    }

    fn rebuild(&mut self) {
        let mut entries: Vec<(u64, FeatureVector)> = self
            .nodes
            .drain(..)
            .filter(|n| !n.deleted)
            .map(|n| (n.id, n.key))
            .collect();
        self.positions.clear();
        self.root = None;
        self.live = 0;
        self.max_depth_seen = 0;
        self.root = self.build_balanced(&mut entries, 0);
    }

    fn build_balanced(
        &mut self,
        entries: &mut [(u64, FeatureVector)],
        depth: usize,
    ) -> Option<usize> {
        if entries.is_empty() {
            return None;
        }
        let axis = depth % self.dim;
        entries.sort_by(|a, b| a.1[axis].total_cmp(&b.1[axis]));
        let mid = entries.len() / 2;
        let (id, key) = entries[mid].clone();
        let node_index = self.nodes.len();
        self.nodes.push(Node {
            id,
            key,
            axis,
            left: None,
            right: None,
            deleted: false,
        });
        self.positions.insert(id, node_index);
        self.live += 1;
        self.max_depth_seen = self.max_depth_seen.max(depth + 1);
        let (left_half, rest) = entries.split_at_mut(mid);
        let right_half = &mut rest[1..];
        let left = self.build_balanced(left_half, depth + 1);
        let right = self.build_balanced(right_half, depth + 1);
        self.nodes[node_index].left = left;
        self.nodes[node_index].right = right;
        Some(node_index)
    }

    fn search(
        &self,
        node: Option<usize>,
        query: &FeatureVector,
        k: usize,
        best: &mut Vec<Neighbor>,
    ) {
        let Some(idx) = node else { return };
        let n = &self.nodes[idx];
        if !n.deleted {
            let d2 = squared_euclidean(&n.key, query);
            if best.len() < k {
                best.push(Neighbor {
                    id: n.id,
                    distance: d2,
                });
                best.sort_by(|a, b| a.distance.total_cmp(&b.distance));
            } else if d2 < best[k - 1].distance {
                best[k - 1] = Neighbor {
                    id: n.id,
                    distance: d2,
                };
                best.sort_by(|a, b| a.distance.total_cmp(&b.distance));
            }
        }
        let diff = query[n.axis] as f64 - n.key[n.axis] as f64;
        let (near, far) = if diff < 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.search(near, query, k, best);
        // Prune the far side only if the splitting plane is farther than
        // the current k-th best.
        let worst = best.last().map_or(f64::INFINITY, |b| b.distance);
        if best.len() < k || diff * diff < worst {
            self.search(far, query, k, best);
        }
    }
}

impl NnIndex for KdTree {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.live
    }

    fn insert(&mut self, id: u64, key: FeatureVector) {
        check_insert(self.dim, &key);
        if self.positions.contains_key(&id) {
            self.remove(id);
        }
        self.insert_node(id, key);
        if self.needs_rebuild() {
            self.rebuild();
        }
    }

    fn remove(&mut self, id: u64) -> bool {
        let Some(idx) = self.positions.remove(&id) else {
            return false;
        };
        debug_assert!(!self.nodes[idx].deleted);
        self.nodes[idx].deleted = true;
        self.live -= 1;
        if self.needs_rebuild() {
            self.rebuild();
        }
        true
    }

    fn nearest(&self, query: &FeatureVector, k: usize) -> Vec<Neighbor> {
        check_query(self.dim, query, k);
        let mut best = Vec::with_capacity(k.min(self.live) + 1);
        self.search(self.root, query, k, &mut best);
        for n in &mut best {
            n.distance = n.distance.sqrt();
        }
        best
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.positions.clear();
        self.root = None;
        self.live = 0;
        self.max_depth_seen = 0;
    }

    fn kind(&self) -> &'static str {
        "kdtree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use features::projection::random_vectors;
    use simcore::SimRng;

    fn fv(components: &[f32]) -> FeatureVector {
        FeatureVector::from_vec(components.to_vec()).unwrap()
    }

    #[test]
    fn matches_linear_scan_exactly() {
        let mut rng = SimRng::seed(1);
        let keys = random_vectors(300, 8, &mut rng);
        let mut tree = KdTree::new(8);
        let mut linear = LinearScan::new(8);
        for (i, key) in keys.iter().enumerate() {
            tree.insert(i as u64, key.clone());
            linear.insert(i as u64, key.clone());
        }
        let queries = random_vectors(50, 8, &mut rng);
        for q in &queries {
            let a = tree.nearest(q, 5);
            let b = linear.nearest(q, 5);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "tree and linear disagree");
                assert!((x.distance - y.distance).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matches_linear_after_heavy_deletion() {
        let mut rng = SimRng::seed(2);
        let keys = random_vectors(200, 4, &mut rng);
        let mut tree = KdTree::new(4);
        let mut linear = LinearScan::new(4);
        for (i, key) in keys.iter().enumerate() {
            tree.insert(i as u64, key.clone());
            linear.insert(i as u64, key.clone());
        }
        // Delete two thirds (forces at least one rebuild).
        for i in 0..200u64 {
            if i % 3 != 0 {
                assert!(tree.remove(i));
                assert!(linear.remove(i));
            }
        }
        assert_eq!(tree.len(), linear.len());
        assert!(tree.tombstone_fraction() <= 0.5);
        let queries = random_vectors(30, 4, &mut rng);
        for q in &queries {
            let a = tree.nearest(q, 3);
            let b = linear.nearest(q, 3);
            let ids_a: Vec<u64> = a.iter().map(|n| n.id).collect();
            let ids_b: Vec<u64> = b.iter().map(|n| n.id).collect();
            assert_eq!(ids_a, ids_b);
        }
    }

    #[test]
    fn update_via_reinsert() {
        let mut tree = KdTree::new(2);
        tree.insert(1, fv(&[0.0, 0.0]));
        tree.insert(1, fv(&[9.0, 9.0]));
        assert_eq!(tree.len(), 1);
        let hits = tree.nearest(&fv(&[9.0, 9.0]), 1);
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn empty_tree_behaviour() {
        let tree = KdTree::new(3);
        assert!(tree.nearest(&fv(&[0.0, 0.0, 0.0]), 4).is_empty());
        assert!(tree.is_empty());
        assert_eq!(tree.kind(), "kdtree");
    }

    #[test]
    fn clear_resets() {
        let mut tree = KdTree::new(1);
        tree.insert(1, fv(&[1.0]));
        tree.clear();
        assert!(tree.is_empty());
        tree.insert(2, fv(&[2.0]));
        assert_eq!(tree.nearest(&fv(&[2.0]), 1)[0].id, 2);
    }

    #[test]
    fn sorted_insertion_triggers_rebalance_and_stays_correct() {
        // Monotone keys create a degenerate spine; the depth-based rebuild
        // must keep the structure queryable and exact.
        let mut tree = KdTree::new(1);
        for i in 0..500u64 {
            tree.insert(i, fv(&[i as f32]));
        }
        assert_eq!(tree.len(), 500);
        let hits = tree.nearest(&fv(&[250.2]), 3);
        assert_eq!(hits[0].id, 250);
        assert_eq!(hits[1].id, 251);
        assert_eq!(hits[2].id, 249);
    }

    #[test]
    fn remove_missing_id_is_noop() {
        let mut tree = KdTree::new(1);
        assert!(!tree.remove(42));
    }
}
