//! An exact k-d tree with tombstone deletion and automatic rebalancing.

use std::collections::HashMap;

use features::{distance::squared_euclidean_flat_within, FeatureVector};

use crate::flat::push_bounded;
use crate::index::{check_insert, check_query, IndexScratch, Neighbor, NnIndex};

/// Exact nearest-neighbour search via a k-d tree.
///
/// Insertion walks to a leaf (no rebalancing); deletion tombstones the
/// node. When tombstones exceed half the nodes, or the tree becomes deeper
/// than `4·log₂(n)`, the tree is rebuilt balanced by median splits — both
/// triggers are checked on every insert *and* remove, so a long-running
/// sim can never degrade to scanning mostly-dead nodes. In low
/// dimension queries are logarithmic; in the 64-dimensional key space the
/// branch-and-bound bound rarely prunes and performance approaches the
/// linear scan — which is precisely the behaviour the index-comparison
/// benchmark (`R-11`) demonstrates.
///
/// Keys live in one contiguous row-major `f32` buffer parallel to the
/// node table (tombstoned rows stay until a rebuild, keeping node
/// indexes stable), and the recursion scores rows with the chunked flat
/// kernel, bounded by the current k-th best so most visited nodes abort
/// the kernel early. Selection shares `push_bounded` with the other
/// indexes, so distance ties break by id exactly like a linear scan.
#[derive(Debug, Clone)]
pub struct KdTree {
    dim: usize,
    nodes: Vec<Node>,
    /// Keys, row-major, parallel to `nodes`: node `n`'s key occupies
    /// `keys[n*dim .. (n+1)*dim]`.
    keys: Vec<f32>,
    root: Option<usize>,
    positions: HashMap<u64, usize>,
    live: usize,
    max_depth_seen: usize,
}

#[derive(Debug, Clone)]
struct Node {
    id: u64,
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
    deleted: bool,
}

impl KdTree {
    /// Internal constructor behind [`crate::build`].
    pub(crate) fn with_dim(dim: usize) -> KdTree {
        assert!(dim > 0, "KdTree: dim must be positive");
        KdTree {
            dim,
            nodes: Vec::new(),
            keys: Vec::new(),
            root: None,
            positions: HashMap::new(),
            live: 0,
            max_depth_seen: 0,
        }
    }

    /// Fraction of nodes that are tombstones.
    pub fn tombstone_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            1.0 - self.live as f64 / self.nodes.len() as f64
        }
    }

    /// Node `n`'s key row.
    fn key_row(&self, n: usize) -> &[f32] {
        &self.keys[n * self.dim..(n + 1) * self.dim]
    }

    fn insert_node(&mut self, id: u64, key: &[f32]) {
        let mut depth = 0usize;
        let mut slot = self.root;
        let mut parent: Option<(usize, bool)> = None; // (index, go_right)
        while let Some(idx) = slot {
            let axis = self.nodes[idx].axis;
            let go_right = key[axis] >= self.keys[idx * self.dim + axis];
            parent = Some((idx, go_right));
            slot = if go_right {
                self.nodes[idx].right
            } else {
                self.nodes[idx].left
            };
            depth += 1;
        }
        let new_index = self.nodes.len();
        self.nodes.push(Node {
            id,
            axis: depth % self.dim,
            left: None,
            right: None,
            deleted: false,
        });
        self.keys.extend_from_slice(key);
        match parent {
            None => self.root = Some(new_index),
            Some((p, true)) => self.nodes[p].right = Some(new_index),
            Some((p, false)) => self.nodes[p].left = Some(new_index),
        }
        self.positions.insert(id, new_index);
        self.live += 1;
        self.max_depth_seen = self.max_depth_seen.max(depth + 1);
    }

    fn needs_rebuild(&self) -> bool {
        if self.live == 0 {
            return !self.nodes.is_empty();
        }
        let deep = self.max_depth_seen > 8 + 4 * (usize::BITS - self.live.leading_zeros()) as usize;
        self.tombstone_fraction() > 0.5 || deep
    }

    fn rebuild(&mut self) {
        let dim = self.dim;
        let mut entries: Vec<(u64, Vec<f32>)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.deleted)
            .map(|(i, n)| (n.id, self.keys[i * dim..(i + 1) * dim].to_vec()))
            .collect();
        self.nodes.clear();
        self.keys.clear();
        self.positions.clear();
        self.root = None;
        self.live = 0;
        self.max_depth_seen = 0;
        self.root = self.build_balanced(&mut entries, 0);
    }

    fn build_balanced(&mut self, entries: &mut [(u64, Vec<f32>)], depth: usize) -> Option<usize> {
        if entries.is_empty() {
            return None;
        }
        let axis = depth % self.dim;
        entries.sort_by(|a, b| a.1[axis].total_cmp(&b.1[axis]));
        let mid = entries.len() / 2;
        let node_index = self.nodes.len();
        let id = entries[mid].0;
        self.nodes.push(Node {
            id,
            axis,
            left: None,
            right: None,
            deleted: false,
        });
        self.keys.extend_from_slice(&entries[mid].1);
        self.positions.insert(id, node_index);
        self.live += 1;
        self.max_depth_seen = self.max_depth_seen.max(depth + 1);
        let (left_half, rest) = entries.split_at_mut(mid);
        let right_half = &mut rest[1..];
        let left = self.build_balanced(left_half, depth + 1);
        let right = self.build_balanced(right_half, depth + 1);
        self.nodes[node_index].left = left;
        self.nodes[node_index].right = right;
        Some(node_index)
    }

    /// Branch-and-bound recursion: keeps the k nearest (squared
    /// distances) in `out` via the shared `push_bounded`, bounding the
    /// distance kernel by the current k-th best so dominated rows abort
    /// mid-kernel.
    fn search_into(&self, node: Option<usize>, query: &[f32], k: usize, out: &mut Vec<Neighbor>) {
        let Some(idx) = node else { return };
        let n = &self.nodes[idx];
        if !n.deleted {
            let bound = match out.last() {
                Some(worst) if out.len() == k => worst.distance,
                _ => f64::INFINITY,
            };
            if let Some(d2) = squared_euclidean_flat_within(self.key_row(idx), query, bound) {
                push_bounded(
                    out,
                    k,
                    Neighbor {
                        id: n.id,
                        distance: d2,
                    },
                );
            }
        }
        let diff = query[n.axis] as f64 - self.keys[idx * self.dim + n.axis] as f64;
        let (near, far) = if diff < 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.search_into(near, query, k, out);
        // Prune the far side only if the splitting plane is farther than
        // the current k-th best.
        let worst = out.last().map_or(f64::INFINITY, |b| b.distance);
        if out.len() < k || diff * diff < worst {
            self.search_into(far, query, k, out);
        }
    }
}

impl NnIndex for KdTree {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.live
    }

    fn insert(&mut self, id: u64, key: FeatureVector) {
        check_insert(self.dim, &key);
        if self.positions.contains_key(&id) {
            self.remove(id);
        }
        self.insert_node(id, key.as_slice());
        if self.needs_rebuild() {
            self.rebuild();
        }
    }

    fn remove(&mut self, id: u64) -> bool {
        let Some(idx) = self.positions.remove(&id) else {
            return false;
        };
        debug_assert!(!self.nodes[idx].deleted);
        self.nodes[idx].deleted = true;
        self.live -= 1;
        if self.needs_rebuild() {
            self.rebuild();
        }
        true
    }

    fn nearest_into(
        &self,
        query: &FeatureVector,
        k: usize,
        scratch: &mut IndexScratch,
        out: &mut Vec<Neighbor>,
    ) {
        check_query(self.dim, query, k);
        // The recursion's working set is `out` itself; no scratch needed.
        let _ = scratch;
        out.clear();
        self.search_into(self.root, query.as_slice(), k, out);
        for n in out.iter_mut() {
            n.distance = n.distance.sqrt();
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.keys.clear();
        self.positions.clear();
        self.root = None;
        self.live = 0;
        self.max_depth_seen = 0;
    }

    fn kind(&self) -> &'static str {
        "kdtree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use features::projection::random_vectors;
    use simcore::SimRng;

    fn fv(components: &[f32]) -> FeatureVector {
        FeatureVector::from_vec(components.to_vec()).unwrap()
    }

    #[test]
    fn matches_linear_scan_exactly() {
        let mut rng = SimRng::seed(1);
        let keys = random_vectors(300, 8, &mut rng);
        let mut tree = KdTree::with_dim(8);
        let mut linear = LinearScan::with_dim(8);
        for (i, key) in keys.iter().enumerate() {
            tree.insert(i as u64, key.clone());
            linear.insert(i as u64, key.clone());
        }
        let queries = random_vectors(50, 8, &mut rng);
        for q in &queries {
            let a = tree.nearest(q, 5);
            let b = linear.nearest(q, 5);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "tree and linear disagree");
                assert_eq!(
                    x.distance.to_bits(),
                    y.distance.to_bits(),
                    "same kernel, same selection — distances must be bit-equal"
                );
            }
        }
    }

    #[test]
    fn matches_linear_after_heavy_deletion() {
        let mut rng = SimRng::seed(2);
        let keys = random_vectors(200, 4, &mut rng);
        let mut tree = KdTree::with_dim(4);
        let mut linear = LinearScan::with_dim(4);
        for (i, key) in keys.iter().enumerate() {
            tree.insert(i as u64, key.clone());
            linear.insert(i as u64, key.clone());
        }
        // Delete two thirds (forces at least one rebuild).
        for i in 0..200u64 {
            if i % 3 != 0 {
                assert!(tree.remove(i));
                assert!(linear.remove(i));
            }
        }
        assert_eq!(tree.len(), linear.len());
        assert!(tree.tombstone_fraction() <= 0.5);
        let queries = random_vectors(30, 4, &mut rng);
        for q in &queries {
            let a = tree.nearest(q, 3);
            let b = linear.nearest(q, 3);
            let ids_a: Vec<u64> = a.iter().map(|n| n.id).collect();
            let ids_b: Vec<u64> = b.iter().map(|n| n.id).collect();
            assert_eq!(ids_a, ids_b);
        }
    }

    #[test]
    fn tombstone_fraction_stays_bounded_under_churn() {
        // The rebuild triggers run on both insert and remove, so the dead
        // fraction can never sit above one half no matter the workload.
        let mut rng = SimRng::seed(7);
        let keys = random_vectors(600, 4, &mut rng);
        let mut tree = KdTree::with_dim(4);
        for (i, key) in keys.iter().enumerate() {
            tree.insert(i as u64, key.clone());
            if i >= 3 && i % 2 == 0 {
                let victim = (i as u64) / 2;
                if tree.remove(victim) {
                    assert!(
                        tree.tombstone_fraction() <= 0.5,
                        "tombstones {:.2} after removing {victim}",
                        tree.tombstone_fraction()
                    );
                }
            }
            assert!(tree.tombstone_fraction() <= 0.5);
        }
    }

    #[test]
    fn update_via_reinsert() {
        let mut tree = KdTree::with_dim(2);
        tree.insert(1, fv(&[0.0, 0.0]));
        tree.insert(1, fv(&[9.0, 9.0]));
        assert_eq!(tree.len(), 1);
        let hits = tree.nearest(&fv(&[9.0, 9.0]), 1);
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn empty_tree_behaviour() {
        let tree = KdTree::with_dim(3);
        assert!(tree.nearest(&fv(&[0.0, 0.0, 0.0]), 4).is_empty());
        assert!(tree.is_empty());
        assert_eq!(tree.kind(), "kdtree");
    }

    #[test]
    fn clear_resets() {
        let mut tree = KdTree::with_dim(1);
        tree.insert(1, fv(&[1.0]));
        tree.clear();
        assert!(tree.is_empty());
        tree.insert(2, fv(&[2.0]));
        assert_eq!(tree.nearest(&fv(&[2.0]), 1)[0].id, 2);
    }

    #[test]
    fn sorted_insertion_triggers_rebalance_and_stays_correct() {
        // Monotone keys create a degenerate spine; the depth-based rebuild
        // must keep the structure queryable and exact.
        let mut tree = KdTree::with_dim(1);
        for i in 0..500u64 {
            tree.insert(i, fv(&[i as f32]));
        }
        assert_eq!(tree.len(), 500);
        let hits = tree.nearest(&fv(&[250.2]), 3);
        assert_eq!(hits[0].id, 250);
        assert_eq!(hits[1].id, 251);
        assert_eq!(hits[2].id, 249);
    }

    #[test]
    fn remove_missing_id_is_noop() {
        let mut tree = KdTree::with_dim(1);
        assert!(!tree.remove(42));
    }
}
