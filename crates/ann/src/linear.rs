//! Exact brute-force search.

use std::collections::HashMap;

use features::{distance::squared_euclidean, FeatureVector};

use crate::index::{check_insert, check_query, Neighbor, NnIndex};

/// The exact reference index: a flat array scanned per query.
///
/// `O(n)` per lookup but with an excellent constant — below a few hundred
/// entries (the common regime for a per-app mobile cache) nothing beats
/// it, which is why it is the cache's default index.
///
/// # Example
///
/// ```
/// use ann::{LinearScan, NnIndex};
/// use features::FeatureVector;
///
/// let mut index = LinearScan::new(3);
/// index.insert(10, FeatureVector::from_vec(vec![1.0, 0.0, 0.0]).unwrap());
/// assert_eq!(index.len(), 1);
/// assert!(index.remove(10));
/// assert!(index.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinearScan {
    dim: usize,
    entries: Vec<(u64, FeatureVector)>,
    /// id → position in `entries` (swap-remove keeps this dense).
    positions: HashMap<u64, usize>,
}

impl LinearScan {
    /// Creates an empty index for keys of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> LinearScan {
        assert!(dim > 0, "LinearScan: dim must be positive");
        LinearScan {
            dim,
            entries: Vec::new(),
            positions: HashMap::new(),
        }
    }
}

impl NnIndex for LinearScan {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn insert(&mut self, id: u64, key: FeatureVector) {
        check_insert(self.dim, &key);
        match self.positions.get(&id) {
            Some(&pos) => self.entries[pos].1 = key,
            None => {
                self.positions.insert(id, self.entries.len());
                self.entries.push((id, key));
            }
        }
    }

    fn remove(&mut self, id: u64) -> bool {
        let Some(pos) = self.positions.remove(&id) else {
            return false;
        };
        self.entries.swap_remove(pos);
        if pos < self.entries.len() {
            let moved_id = self.entries[pos].0;
            self.positions.insert(moved_id, pos);
        }
        true
    }

    fn nearest(&self, query: &FeatureVector, k: usize) -> Vec<Neighbor> {
        check_query(self.dim, query, k);
        let mut all: Vec<Neighbor> = self
            .entries
            .iter()
            .map(|(id, key)| Neighbor {
                id: *id,
                distance: squared_euclidean(key, query),
            })
            .collect();
        // Partial sort: select the k smallest, then order them.
        let k = k.min(all.len());
        if k == 0 {
            return Vec::new();
        }
        all.select_nth_unstable_by(k - 1, |a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("finite distances")
        });
        all.truncate(k);
        all.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("finite distances")
        });
        for n in &mut all {
            n.distance = n.distance.sqrt();
        }
        all
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.positions.clear();
    }

    fn kind(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(components: &[f32]) -> FeatureVector {
        FeatureVector::from_vec(components.to_vec()).unwrap()
    }

    #[test]
    fn nearest_returns_sorted_exact_results() {
        let mut index = LinearScan::new(1);
        for (id, x) in [(1u64, 10.0f32), (2, 0.0), (3, 5.0), (4, -2.5)] {
            index.insert(id, fv(&[x]));
        }
        let hits = index.nearest(&fv(&[1.0]), 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id, 2);
        assert!((hits[0].distance - 1.0).abs() < 1e-6);
        assert_eq!(hits[1].id, 4);
        assert_eq!(hits[2].id, 3);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let mut index = LinearScan::new(1);
        index.insert(1, fv(&[0.0]));
        let hits = index.nearest(&fv(&[0.0]), 10);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let index = LinearScan::new(2);
        assert!(index.nearest(&fv(&[0.0, 0.0]), 5).is_empty());
        assert!(index.is_empty());
    }

    #[test]
    fn insert_same_id_replaces() {
        let mut index = LinearScan::new(1);
        index.insert(1, fv(&[0.0]));
        index.insert(1, fv(&[100.0]));
        assert_eq!(index.len(), 1);
        let hits = index.nearest(&fv(&[100.0]), 1);
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn remove_swaps_correctly() {
        let mut index = LinearScan::new(1);
        for id in 0..5u64 {
            index.insert(id, fv(&[id as f32]));
        }
        assert!(index.remove(0));
        assert!(!index.remove(0));
        assert_eq!(index.len(), 4);
        // The remaining ids must all still be findable at their keys.
        for id in 1..5u64 {
            let hits = index.nearest(&fv(&[id as f32]), 1);
            assert_eq!(hits[0].id, id);
        }
    }

    #[test]
    fn clear_empties() {
        let mut index = LinearScan::new(1);
        index.insert(1, fv(&[1.0]));
        index.clear();
        assert!(index.is_empty());
        assert_eq!(index.kind(), "linear");
        assert_eq!(index.dim(), 1);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_rejected() {
        LinearScan::new(0);
    }
}
