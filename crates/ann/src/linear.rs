//! Exact brute-force search.

use std::collections::HashMap;

use features::distance::squared_euclidean_ref;
use features::FeatureVector;

use crate::flat::FlatBuffer;
use crate::index::{check_insert, check_query, IndexScratch, Neighbor, NnIndex};

/// The exact reference index: a flat array scanned per query.
///
/// `O(n)` per lookup but with an excellent constant — below a few hundred
/// entries (the common regime for a per-app mobile cache) nothing beats
/// it, which is why it is the cache's default index.
///
/// Keys live in a [`FlatBuffer`] (structure-of-arrays, row-major, kept
/// dense by swap-remove) so a scan walks memory linearly and the chunked
/// distance kernel auto-vectorizes; candidates go through a bounded
/// selection buffer instead of scoring every entry into a fresh `Vec`.
/// See DESIGN.md "Performance model & hot path".
///
/// # Example
///
/// ```
/// use ann::{IndexConfig, NnIndex};
/// use features::FeatureVector;
///
/// let mut index = ann::build(3, &IndexConfig::Linear);
/// index.insert(10, FeatureVector::from_vec(vec![1.0, 0.0, 0.0]).unwrap());
/// assert_eq!(index.len(), 1);
/// assert!(index.remove(10));
/// assert!(index.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinearScan {
    flat: FlatBuffer,
}

impl LinearScan {
    /// The constructor behind [`crate::build`].
    pub(crate) fn with_dim(dim: usize) -> LinearScan {
        assert!(dim > 0, "LinearScan: dim must be positive");
        LinearScan {
            flat: FlatBuffer::new(dim),
        }
    }
}

impl NnIndex for LinearScan {
    fn dim(&self) -> usize {
        self.flat.dim()
    }

    fn len(&self) -> usize {
        self.flat.len()
    }

    fn insert(&mut self, id: u64, key: FeatureVector) {
        check_insert(self.flat.dim(), &key);
        self.flat.insert(id, key.as_slice());
    }

    fn remove(&mut self, id: u64) -> bool {
        self.flat.remove(id)
    }

    fn nearest_into(
        &self,
        query: &FeatureVector,
        k: usize,
        scratch: &mut IndexScratch,
        out: &mut Vec<Neighbor>,
    ) {
        check_query(self.flat.dim(), query, k);
        let _ = scratch; // an exact scan needs no working memory
                         // Re-ranking every row *is* the exact bounded scan (early-exit
                         // kernel + bounded (distance, id) selection).
        self.flat
            .rerank_rows_into(0..self.flat.len(), query.as_slice(), k, out);
        for n in out {
            n.distance = n.distance.sqrt();
        }
    }

    fn clear(&mut self) {
        self.flat.clear();
    }

    fn kind(&self) -> &'static str {
        "linear"
    }
}

/// The pre-optimisation linear scan: one `(id, FeatureVector)` pair per
/// entry, every query scoring all entries into a fresh `Vec` and
/// partial-sorting it. Kept as the equivalence oracle for [`LinearScan`]
/// (the proptests below pin them to identical results) and as the
/// baseline the `perf_smoke` binary measures the flat-buffer scan
/// against.
#[doc(hidden)]
#[derive(Debug, Clone, Default)]
pub struct ReferenceLinearScan {
    dim: usize,
    entries: Vec<(u64, FeatureVector)>,
    /// id → position in `entries` (swap-remove keeps this dense).
    positions: HashMap<u64, usize>,
}

impl ReferenceLinearScan {
    /// Creates an empty index for keys of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> ReferenceLinearScan {
        assert!(dim > 0, "ReferenceLinearScan: dim must be positive");
        ReferenceLinearScan {
            dim,
            entries: Vec::new(),
            positions: HashMap::new(),
        }
    }
}

impl NnIndex for ReferenceLinearScan {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn insert(&mut self, id: u64, key: FeatureVector) {
        check_insert(self.dim, &key);
        match self.positions.get(&id) {
            Some(&pos) => self.entries[pos].1 = key,
            None => {
                self.positions.insert(id, self.entries.len());
                self.entries.push((id, key));
            }
        }
    }

    fn remove(&mut self, id: u64) -> bool {
        let Some(pos) = self.positions.remove(&id) else {
            return false;
        };
        self.entries.swap_remove(pos);
        if pos < self.entries.len() {
            let moved_id = self.entries[pos].0;
            self.positions.insert(moved_id, pos);
        }
        true
    }

    fn nearest_into(
        &self,
        query: &FeatureVector,
        k: usize,
        scratch: &mut IndexScratch,
        out: &mut Vec<Neighbor>,
    ) {
        // The oracle keeps its pre-optimisation shape: per-entry scoring
        // into a fresh Vec and a partial sort. It is never on a hot path
        // (rule A's ban applies to the fn *name*, so the delegation body
        // here stays token-clean and the allocations live in `nearest`).
        let _ = scratch;
        out.clear();
        out.extend(self.nearest(query, k));
    }

    fn nearest(&self, query: &FeatureVector, k: usize) -> Vec<Neighbor> {
        check_query(self.dim, query, k);
        let mut all: Vec<Neighbor> = self
            .entries
            .iter()
            .map(|(id, key)| Neighbor {
                id: *id,
                // The scalar kernel, deliberately: this scan is the
                // pre-optimisation path, so it must not borrow the
                // chunked kernel's speed (bit-equality between the two
                // kernels is pinned in features::distance).
                distance: squared_euclidean_ref(key.as_slice(), query.as_slice()),
            })
            .collect();
        // Partial sort: select the k smallest, then order them. Ties are
        // broken by id so the reference agrees with the bounded scan.
        let k = k.min(all.len());
        if k == 0 {
            return Vec::new();
        }
        all.select_nth_unstable_by(k - 1, |a, b| {
            a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id))
        });
        all.truncate(k);
        all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        for n in &mut all {
            n.distance = n.distance.sqrt();
        }
        all
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.positions.clear();
    }

    fn kind(&self) -> &'static str {
        "linear-reference"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(components: &[f32]) -> FeatureVector {
        FeatureVector::from_vec(components.to_vec()).unwrap()
    }

    #[test]
    fn nearest_returns_sorted_exact_results() {
        let mut index = LinearScan::with_dim(1);
        for (id, x) in [(1u64, 10.0f32), (2, 0.0), (3, 5.0), (4, -2.5)] {
            index.insert(id, fv(&[x]));
        }
        let hits = index.nearest(&fv(&[1.0]), 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id, 2);
        assert!((hits[0].distance - 1.0).abs() < 1e-6);
        assert_eq!(hits[1].id, 4);
        assert_eq!(hits[2].id, 3);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let mut index = LinearScan::with_dim(1);
        index.insert(1, fv(&[0.0]));
        let hits = index.nearest(&fv(&[0.0]), 10);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let index = LinearScan::with_dim(2);
        assert!(index.nearest(&fv(&[0.0, 0.0]), 5).is_empty());
        assert!(index.is_empty());
    }

    #[test]
    fn insert_same_id_replaces() {
        let mut index = LinearScan::with_dim(1);
        index.insert(1, fv(&[0.0]));
        index.insert(1, fv(&[100.0]));
        assert_eq!(index.len(), 1);
        let hits = index.nearest(&fv(&[100.0]), 1);
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn remove_swaps_correctly() {
        let mut index = LinearScan::with_dim(1);
        for id in 0..5u64 {
            index.insert(id, fv(&[id as f32]));
        }
        assert!(index.remove(0));
        assert!(!index.remove(0));
        assert_eq!(index.len(), 4);
        // The remaining ids must all still be findable at their keys.
        for id in 1..5u64 {
            let hits = index.nearest(&fv(&[id as f32]), 1);
            assert_eq!(hits[0].id, id);
        }
    }

    #[test]
    fn remove_keeps_flat_buffer_dense() {
        let mut index = LinearScan::with_dim(2);
        for id in 0..6u64 {
            index.insert(id, fv(&[id as f32, -(id as f32)]));
        }
        // Remove from the middle, the front and the back.
        for id in [2u64, 0, 5] {
            assert!(index.remove(id));
        }
        assert_eq!(index.len(), 3);
        for id in [1u64, 3, 4] {
            let hits = index.nearest(&fv(&[id as f32, -(id as f32)]), 1);
            assert_eq!(hits[0].id, id);
            assert!(hits[0].distance < 1e-6);
        }
    }

    #[test]
    fn equal_distances_break_ties_by_id() {
        let mut index = LinearScan::with_dim(1);
        for id in [9u64, 3, 7] {
            index.insert(id, fv(&[1.0]));
        }
        let hits = index.nearest(&fv(&[0.0]), 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 3);
        assert_eq!(hits[1].id, 7);
    }

    #[test]
    fn nearest_into_reuses_the_buffer() {
        let mut index = LinearScan::with_dim(1);
        for id in 0..8u64 {
            index.insert(id, fv(&[id as f32]));
        }
        let mut scratch = IndexScratch::new();
        let mut out = Vec::new();
        index.nearest_into(&fv(&[0.0]), 3, &mut scratch, &mut out);
        assert_eq!(out.len(), 3);
        let capacity = out.capacity();
        // A second query must not grow the buffer.
        index.nearest_into(&fv(&[7.0]), 3, &mut scratch, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].id, 7);
        assert_eq!(out.capacity(), capacity);
    }

    #[test]
    fn clear_empties() {
        let mut index = LinearScan::with_dim(1);
        index.insert(1, fv(&[1.0]));
        index.clear();
        assert!(index.is_empty());
        assert_eq!(index.kind(), "linear");
        assert_eq!(index.dim(), 1);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_rejected() {
        LinearScan::with_dim(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const DIM: usize = 3;

    #[derive(Debug, Clone)]
    enum Op {
        Insert { id: u64, key: Vec<f32> },
        Remove { id: u64 },
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..32, proptest::collection::vec(-10.0f32..10.0, DIM))
                .prop_map(|(id, key)| Op::Insert { id, key }),
            (0u64..32, proptest::collection::vec(-10.0f32..10.0, DIM))
                .prop_map(|(id, key)| Op::Insert { id, key }),
            (0u64..32, proptest::collection::vec(-10.0f32..10.0, DIM))
                .prop_map(|(id, key)| Op::Insert { id, key }),
            (0u64..32).prop_map(|id| Op::Remove { id }),
        ]
    }

    proptest! {
        /// Under random insert/remove interleavings the flat-buffer scan
        /// and the pre-optimisation reference return *identical* results
        /// (same ids, bit-equal distances, same order) — and
        /// `nearest_into` agrees with `nearest`.
        #[test]
        fn flat_scan_matches_reference(
            ops in proptest::collection::vec(op(), 1..60),
            query in proptest::collection::vec(-10.0f32..10.0, DIM),
            k in 1usize..6,
        ) {
            let mut fast = LinearScan::with_dim(DIM);
            let mut reference = ReferenceLinearScan::new(DIM);
            for op in ops {
                match op {
                    Op::Insert { id, key } => {
                        let key = FeatureVector::from_vec(key).unwrap();
                        fast.insert(id, key.clone());
                        reference.insert(id, key);
                    }
                    Op::Remove { id } => {
                        prop_assert_eq!(fast.remove(id), reference.remove(id));
                    }
                }
                prop_assert_eq!(fast.len(), reference.len());
            }
            let query = FeatureVector::from_vec(query).unwrap();
            let a = fast.nearest(&query, k);
            let b = reference.nearest(&query, k);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.id, y.id);
                prop_assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
            let mut scratch = IndexScratch::new();
            let mut reused = Vec::new();
            fast.nearest_into(&query, k, &mut scratch, &mut reused);
            prop_assert_eq!(reused, a);
        }
    }
}
