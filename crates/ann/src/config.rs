//! Index selection as data: one serde-able enum, one factory.
//!
//! Every index used to have its own constructor shape
//! (`LinearScan::new(dim)`, `LshIndex::new(dim, LshConfig)`, …), which
//! meant anything that wanted a *configurable* index — the cache, the
//! pipeline, the benchmarks — had to re-invent this enum privately.
//! [`IndexConfig`] is that enum, once, in the crate that owns the
//! indexes; [`build`] is the only way to construct one.

use serde::{Deserialize, Serialize};

use crate::kdtree::KdTree;
use crate::linear::LinearScan;
use crate::lsh::{LshConfig, LshIndex};
use crate::nsw::{NswConfig, NswIndex};
use crate::NnIndex;

/// Which nearest-neighbour index backs a cache, plus its tuning.
///
/// Serializes with externally-tagged variant names (`"Linear"`,
/// `"KdTree"`, `"Lsh"`, `"Nsw"`) so experiment configs can pin the
/// backend in JSON.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum IndexConfig {
    /// Exact linear scan over the flat buffer — the correctness
    /// reference, and the fastest index below a few hundred entries.
    #[default]
    Linear,
    /// Exact k-d tree; helps in low dimension, converges to the scan in
    /// high dimension.
    KdTree,
    /// Sign-random-projection LSH with the given tuning.
    Lsh(LshConfig),
    /// Navigable-small-world graph with the given tuning.
    Nsw(NswConfig),
}

impl IndexConfig {
    /// Validates the nested tuning (the dimension is checked at
    /// [`build`] time).
    ///
    /// # Panics
    ///
    /// Panics if the nested config is invalid.
    pub fn validate(&self) {
        match self {
            IndexConfig::Linear | IndexConfig::KdTree => {}
            IndexConfig::Lsh(config) => config.validate(),
            IndexConfig::Nsw(config) => config.validate(),
        }
    }

    /// The `kind()` string of the index this config builds.
    pub fn name(&self) -> &'static str {
        match self {
            IndexConfig::Linear => "linear",
            IndexConfig::KdTree => "kdtree",
            IndexConfig::Lsh(_) => "lsh",
            IndexConfig::Nsw(_) => "nsw",
        }
    }
}

/// Builds an empty index for keys of dimension `dim` per `config` — the
/// single constructor every call site goes through.
///
/// # Panics
///
/// Panics if `dim == 0` or the nested tuning is invalid.
pub fn build(dim: usize, config: &IndexConfig) -> Box<dyn NnIndex> {
    match config {
        IndexConfig::Linear => Box::new(LinearScan::with_dim(dim)),
        IndexConfig::KdTree => Box::new(KdTree::with_dim(dim)),
        IndexConfig::Lsh(lsh) => Box::new(LshIndex::with_config(dim, *lsh)),
        IndexConfig::Nsw(nsw) => Box::new(NswIndex::with_config(dim, *nsw)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use features::FeatureVector;

    #[test]
    fn builds_every_backend_with_matching_kind() {
        let configs = [
            IndexConfig::Linear,
            IndexConfig::KdTree,
            IndexConfig::Lsh(LshConfig::default()),
            IndexConfig::Nsw(NswConfig::default()),
        ];
        for config in configs {
            config.validate();
            let mut index = build(4, &config);
            assert_eq!(index.kind(), config.name());
            assert_eq!(index.dim(), 4);
            index.insert(9, FeatureVector::zeros(4));
            let hits = index.nearest(&FeatureVector::zeros(4), 1);
            assert_eq!(hits[0].id, 9);
        }
    }

    #[test]
    fn default_is_linear() {
        assert_eq!(IndexConfig::default(), IndexConfig::Linear);
    }

    #[test]
    fn round_trips_through_json() {
        let config = IndexConfig::Lsh(LshConfig {
            tables: 4,
            bits: 10,
            seed: 7,
            probe_radius: 1,
        });
        let json = serde_json::to_string(&config).unwrap();
        let back: IndexConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        // Unit variants serialize as bare strings — stable config keys.
        assert_eq!(
            serde_json::to_string(&IndexConfig::Linear).unwrap(),
            "\"Linear\""
        );
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_rejected() {
        build(0, &IndexConfig::Linear);
    }

    #[test]
    #[should_panic(expected = "ef must be at least m")]
    fn nested_tuning_validated() {
        IndexConfig::Nsw(NswConfig { m: 8, ef: 2 }).validate();
    }
}
