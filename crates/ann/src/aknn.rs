//! The homogenized adaptive k-NN hit test.
//!
//! Raw nearest-neighbour results are not enough to decide reuse: a query
//! sitting *between* two cached clusters may have a near neighbour of the
//! wrong class. Following FoggyCache's A-kNN, a lookup counts as a hit
//! only when (i) the nearest neighbour is within a distance threshold and
//! (ii) the labels of the in-threshold neighbours are sufficiently
//! *homogeneous* — a dominant label holds at least a configured fraction.
//! Queries near class boundaries then fall through to full inference
//! instead of being answered with a coin-flip label.

use serde::{Deserialize, Serialize};

/// Parameters of the hit test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AknnConfig {
    /// Neighbours to consider.
    pub k: usize,
    /// Maximum distance for the nearest neighbour to count as a hit, and
    /// for any neighbour to participate in the homogeneity vote.
    pub distance_threshold: f64,
    /// Minimum fraction of in-threshold neighbours that must share the
    /// dominant label (`0.5` = simple majority, `1.0` = unanimous).
    pub homogeneity: f64,
    /// Minimum number of in-threshold neighbours required before the vote
    /// is trusted. `1` accepts single-neighbour hits.
    pub min_support: usize,
}

impl Default for AknnConfig {
    fn default() -> Self {
        AknnConfig {
            k: 4,
            distance_threshold: 1.0,
            homogeneity: 0.75,
            min_support: 1,
        }
    }
}

impl AknnConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `min_support == 0`, the threshold is not
    /// positive/finite, or homogeneity is outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(self.k > 0, "AknnConfig: k must be positive");
        assert!(
            self.min_support > 0,
            "AknnConfig: min_support must be positive"
        );
        assert!(
            self.distance_threshold > 0.0 && self.distance_threshold.is_finite(),
            "AknnConfig: distance_threshold must be positive and finite"
        );
        assert!(
            self.homogeneity > 0.0 && self.homogeneity <= 1.0,
            "AknnConfig: homogeneity must be in (0, 1]"
        );
    }
}

/// Why a lookup did not hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissReason {
    /// The index returned no neighbours at all.
    EmptyIndex,
    /// The nearest neighbour was farther than the threshold.
    TooFar,
    /// Enough neighbours were close, but no label dominated strongly
    /// enough.
    NotHomogeneous,
    /// Fewer than `min_support` neighbours were within the threshold.
    InsufficientSupport,
}

impl std::fmt::Display for MissReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MissReason::EmptyIndex => "empty-index",
            MissReason::TooFar => "too-far",
            MissReason::NotHomogeneous => "not-homogeneous",
            MissReason::InsufficientSupport => "insufficient-support",
        };
        f.write_str(s)
    }
}

/// The hit test's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AknnOutcome<L> {
    /// Reuse `label`.
    Hit {
        /// The dominant label among in-threshold neighbours.
        label: L,
        /// Distance of the nearest neighbour.
        nearest_distance: f64,
        /// Number of in-threshold neighbours voting for `label`.
        support: usize,
        /// The dominant label's vote fraction.
        homogeneity: f64,
    },
    /// Fall through to the next tier.
    Miss(MissReason),
}

impl<L> AknnOutcome<L> {
    /// True for the `Hit` variant.
    pub fn is_hit(&self) -> bool {
        matches!(self, AknnOutcome::Hit { .. })
    }

    /// The reused label, if any.
    pub fn label(&self) -> Option<&L> {
        match self {
            AknnOutcome::Hit { label, .. } => Some(label),
            AknnOutcome::Miss(_) => None,
        }
    }
}

/// Reusable buffers for [`decide_in`], so a steady-state caller (one
/// hit test per frame) performs no allocation once the buffers reach
/// their working size.
#[derive(Debug, Clone)]
pub struct DecideScratch<L> {
    /// Candidate `(distance, label)` pairs, sorted ascending in place.
    sorted: Vec<(f64, L)>,
    /// Per-label vote tallies in first-seen order. A linear scan beats a
    /// `HashMap` at hit-test sizes (k ≤ a dozen) and is deterministic.
    counts: Vec<(L, usize)>,
}

impl<L> Default for DecideScratch<L> {
    fn default() -> Self {
        DecideScratch {
            sorted: Vec::new(),
            counts: Vec::new(),
        }
    }
}

impl<L> DecideScratch<L> {
    /// Empty scratch buffers.
    pub fn new() -> DecideScratch<L> {
        DecideScratch::default()
    }
}

/// Runs the hit test over `(distance, label)` pairs sorted or unsorted.
///
/// Convenience wrapper over [`decide_in`] that allocates its own
/// scratch; per-frame callers should hold a [`DecideScratch`] and call
/// [`decide_in`] directly.
///
/// # Panics
///
/// Panics if `config` is invalid or any distance is negative/non-finite.
pub fn decide<L: Eq + std::hash::Hash + Copy>(
    neighbors: &[(f64, L)],
    config: &AknnConfig,
) -> AknnOutcome<L> {
    decide_in(neighbors.iter().copied(), config, &mut DecideScratch::new())
}

/// The hit test proper, writing all intermediate state into `scratch`.
///
/// # Panics
///
/// Panics if `config` is invalid or any distance is negative/non-finite.
pub fn decide_in<L: Eq + Copy>(
    neighbors: impl IntoIterator<Item = (f64, L)>,
    config: &AknnConfig,
    scratch: &mut DecideScratch<L>,
) -> AknnOutcome<L> {
    config.validate();
    let sorted = &mut scratch.sorted;
    sorted.clear();
    sorted.extend(neighbors);
    assert!(
        sorted.iter().all(|(d, _)| d.is_finite() && *d >= 0.0),
        "decide: distances must be finite and non-negative"
    );
    if sorted.is_empty() {
        return AknnOutcome::Miss(MissReason::EmptyIndex);
    }
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    sorted.truncate(config.k);

    let nearest_distance = sorted[0].0;
    if nearest_distance > config.distance_threshold {
        return AknnOutcome::Miss(MissReason::TooFar);
    }
    // Zero-distance neighbours are exact duplicates of the query: the
    // query *is* a cached key, so a merely-nearby neighbour of another
    // label must not veto reuse through the homogeneity vote. The
    // duplicates are authoritative when they agree among themselves (and
    // clear min_support); disagreeing duplicates are genuinely ambiguous
    // and fall through to the ordinary vote below.
    let exact_len = sorted.iter().take_while(|(d, _)| *d == 0.0).count();
    if exact_len >= config.min_support {
        let first = sorted[0].1;
        if sorted[..exact_len].iter().all(|&(_, label)| label == first) {
            return AknnOutcome::Hit {
                label: first,
                nearest_distance,
                support: exact_len,
                homogeneity: 1.0,
            };
        }
    }
    // `sorted` is ascending, so the in-threshold neighbours are exactly
    // the prefix the threshold partitions off.
    let in_threshold = sorted.partition_point(|(d, _)| *d <= config.distance_threshold);
    if in_threshold < config.min_support {
        return AknnOutcome::Miss(MissReason::InsufficientSupport);
    }
    let counts = &mut scratch.counts;
    counts.clear();
    for &(_, label) in &sorted[..in_threshold] {
        match counts.iter_mut().find(|(seen, _)| *seen == label) {
            Some((_, count)) => *count += 1,
            None => counts.push((label, 1)),
        }
    }
    let mut dominant = sorted[0].1;
    let mut count = 0usize;
    for &(label, votes) in counts.iter() {
        if votes > count {
            dominant = label;
            count = votes;
        }
    }
    let fraction = count as f64 / in_threshold as f64;
    if fraction < config.homogeneity {
        return AknnOutcome::Miss(MissReason::NotHomogeneous);
    }
    // Tie-break: if another label has the same count, the vote is not
    // decisive — treat as non-homogeneous unless the dominant strictly wins.
    let tied = counts.iter().filter(|&&(_, c)| c == count).count() > 1;
    if tied && fraction < 1.0 {
        return AknnOutcome::Miss(MissReason::NotHomogeneous);
    }
    AknnOutcome::Hit {
        label: dominant,
        nearest_distance,
        support: count,
        homogeneity: fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AknnConfig {
        AknnConfig {
            k: 4,
            distance_threshold: 1.0,
            homogeneity: 0.75,
            min_support: 1,
        }
    }

    #[test]
    fn empty_neighbours_miss() {
        let out: AknnOutcome<u32> = decide(&[], &config());
        assert_eq!(out, AknnOutcome::Miss(MissReason::EmptyIndex));
        assert!(!out.is_hit());
        assert_eq!(out.label(), None);
    }

    #[test]
    // Exact comparison is intentional: a unanimous vote is exactly 1.0.
    #[allow(clippy::float_cmp)]
    fn close_unanimous_neighbours_hit() {
        let out = decide(&[(0.1, 7u32), (0.2, 7), (0.3, 7)], &config());
        match out {
            AknnOutcome::Hit {
                label,
                nearest_distance,
                support,
                homogeneity,
            } => {
                assert_eq!(label, 7);
                assert!((nearest_distance - 0.1).abs() < 1e-12);
                assert_eq!(support, 3);
                assert_eq!(homogeneity, 1.0);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(out.label(), Some(&7));
    }

    #[test]
    fn far_nearest_misses() {
        let out = decide(&[(1.5, 7u32), (1.6, 7)], &config());
        assert_eq!(out, AknnOutcome::Miss(MissReason::TooFar));
    }

    #[test]
    fn boundary_query_misses_on_homogeneity() {
        // Two labels split 2-2: no 75% dominant.
        let out = decide(&[(0.1, 1u32), (0.2, 2), (0.3, 1), (0.4, 2)], &config());
        assert_eq!(out, AknnOutcome::Miss(MissReason::NotHomogeneous));
    }

    #[test]
    fn dominant_label_with_spoiler_hits_at_threshold() {
        // 3-of-4 = 75% exactly meets the homogeneity bar.
        let out = decide(&[(0.1, 1u32), (0.2, 1), (0.3, 1), (0.4, 2)], &config());
        assert!(out.is_hit());
        assert_eq!(out.label(), Some(&1));
    }

    #[test]
    fn only_in_threshold_neighbours_vote() {
        // The far wrong-label neighbours are beyond the threshold and must
        // not dilute the vote.
        let out = decide(&[(0.1, 1u32), (5.0, 2), (6.0, 2), (7.0, 2)], &config());
        assert!(out.is_hit());
        assert_eq!(out.label(), Some(&1));
    }

    #[test]
    fn min_support_enforced() {
        let strict = AknnConfig {
            min_support: 2,
            ..config()
        };
        let out = decide(&[(0.1, 1u32)], &strict);
        assert_eq!(out, AknnOutcome::Miss(MissReason::InsufficientSupport));
        let out = decide(&[(0.1, 1u32), (0.2, 1)], &strict);
        assert!(out.is_hit());
    }

    #[test]
    fn k_truncates_before_voting() {
        let narrow = AknnConfig { k: 2, ..config() };
        // With k=2 only the two nearest (label 1) vote; label 2 never seen.
        let out = decide(
            &[(0.1, 1u32), (0.2, 1), (0.3, 2), (0.4, 2), (0.5, 2)],
            &narrow,
        );
        assert!(out.is_hit());
        assert_eq!(out.label(), Some(&1));
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let out = decide(&[(0.9, 2u32), (0.1, 1), (0.2, 1), (0.3, 1)], &config());
        assert!(out.is_hit());
        assert_eq!(out.label(), Some(&1));
    }

    #[test]
    // Exact comparison is intentional: the duplicate's distance is exactly 0.0.
    #[allow(clippy::float_cmp)]
    fn zero_distance_duplicate_is_authoritative() {
        // The recorded proptest regression (proptest-regressions/aknn.txt):
        // an exact duplicate of a cached key must hit even when an
        // in-threshold neighbour of a different label would otherwise
        // spoil the homogeneity vote.
        let out = decide(
            &[(0.0, 0u8), (0.932_397_294_373_532_9, 1)],
            &AknnConfig::default(),
        );
        match out {
            AknnOutcome::Hit {
                label,
                nearest_distance,
                support,
                homogeneity,
            } => {
                assert_eq!(label, 0);
                assert_eq!(nearest_distance, 0.0);
                assert_eq!(support, 1);
                assert_eq!(homogeneity, 1.0);
            }
            other => panic!("exact duplicate must hit, got {other:?}"),
        }
    }

    #[test]
    fn near_zero_distance_still_faces_the_vote() {
        // Boundary contrast to the authoritative-duplicate rule: nudge
        // the duplicate off zero and it is just a (very) near neighbour,
        // so the 1-1 tie with the other label rejects as usual.
        let out = decide(&[(1e-9, 0u8), (0.93, 1)], &AknnConfig::default());
        assert_eq!(out, AknnOutcome::Miss(MissReason::NotHomogeneous));
    }

    #[test]
    fn disagreeing_duplicates_fall_back_to_the_vote() {
        // Two identical keys with different labels carry no authority;
        // the ordinary (tied) vote rejects.
        let out = decide(&[(0.0, 0u8), (0.0, 1)], &AknnConfig::default());
        assert_eq!(out, AknnOutcome::Miss(MissReason::NotHomogeneous));
    }

    #[test]
    fn duplicates_respect_min_support() {
        // A lone duplicate does not bypass a stricter support floor; two
        // agreeing duplicates clear it.
        let strict = AknnConfig {
            min_support: 2,
            ..config()
        };
        let out = decide(&[(0.0, 0u8)], &strict);
        assert_eq!(out, AknnOutcome::Miss(MissReason::InsufficientSupport));
        let out = decide(&[(0.0, 0u8), (0.0, 0)], &strict);
        assert!(out.is_hit());
        assert_eq!(out.label(), Some(&0));
    }

    #[test]
    fn exact_tie_between_labels_is_rejected() {
        let lax = AknnConfig {
            homogeneity: 0.5,
            ..config()
        };
        let out = decide(&[(0.1, 1u32), (0.2, 2)], &lax);
        assert_eq!(out, AknnOutcome::Miss(MissReason::NotHomogeneous));
    }

    #[test]
    #[should_panic(expected = "distances must be finite")]
    fn rejects_negative_distance() {
        decide(&[(-0.1, 1u32)], &config());
    }

    #[test]
    #[should_panic(expected = "homogeneity must be in (0, 1]")]
    fn rejects_bad_homogeneity() {
        decide(
            &[(0.1, 1u32)],
            &AknnConfig {
                homogeneity: 0.0,
                ..config()
            },
        );
    }

    #[test]
    fn miss_reason_display() {
        assert_eq!(MissReason::TooFar.to_string(), "too-far");
        assert_eq!(MissReason::EmptyIndex.to_string(), "empty-index");
        assert_eq!(MissReason::NotHomogeneous.to_string(), "not-homogeneous");
        assert_eq!(
            MissReason::InsufficientSupport.to_string(),
            "insufficient-support"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn neighbors() -> impl Strategy<Value = Vec<(f64, u8)>> {
        proptest::collection::vec((0.0f64..3.0, 0u8..4), 0..12)
    }

    proptest! {
        /// A hit's label always has in-threshold support ≥ ceil(h·n) and
        /// the nearest distance is within the threshold.
        #[test]
        fn hit_invariants(ns in neighbors()) {
            let config = AknnConfig::default();
            if let AknnOutcome::Hit { nearest_distance, support, homogeneity, .. } =
                decide(&ns, &config)
            {
                prop_assert!(nearest_distance <= config.distance_threshold);
                prop_assert!(homogeneity >= config.homogeneity);
                prop_assert!(support >= config.min_support);
            }
        }

        /// A query whose nearest neighbour is beyond the lax threshold is
        /// `TooFar` under any tighter threshold as well. (Full
        /// hit-monotonicity does NOT hold: tightening the threshold can
        /// turn a homogeneity miss into a hit by excluding far wrong-label
        /// voters — that behaviour is intended.)
        #[test]
        fn too_far_is_monotone_under_tightening(ns in neighbors()) {
            let lax = AknnConfig { distance_threshold: 2.0, ..AknnConfig::default() };
            let tight = AknnConfig { distance_threshold: 0.5, ..AknnConfig::default() };
            if decide(&ns, &lax) == AknnOutcome::Miss(MissReason::TooFar) {
                prop_assert_eq!(decide(&ns, &tight), AknnOutcome::Miss(MissReason::TooFar));
            }
        }

        /// Raising the homogeneity bar never turns a miss into a hit.
        #[test]
        fn stricter_homogeneity_is_monotone(ns in neighbors()) {
            let lax = AknnConfig { homogeneity: 0.5, ..AknnConfig::default() };
            let strict = AknnConfig { homogeneity: 1.0, ..AknnConfig::default() };
            let lax_hit = decide(&ns, &lax).is_hit();
            let strict_hit = decide(&ns, &strict).is_hit();
            prop_assert!(!strict_hit || lax_hit);
        }

        /// `decide_in` with a scratch reused across hit tests is
        /// indistinguishable from the allocating wrapper, regardless of
        /// what ran through the scratch before.
        #[test]
        fn scratch_reuse_matches_fresh(batches in proptest::collection::vec(neighbors(), 1..6)) {
            let config = AknnConfig::default();
            let mut scratch = DecideScratch::new();
            for ns in &batches {
                let fresh = decide(ns, &config);
                let reused = decide_in(ns.iter().copied(), &config, &mut scratch);
                prop_assert_eq!(fresh, reused);
            }
        }
    }
}
