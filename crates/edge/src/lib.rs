//! The edge cache tier.
//!
//! The poster's system is infrastructure-less, but its lineage
//! (FoggyCache before it, FluxShard and the GAN edge-cache work after)
//! adds a third tier between a device's local cache and its P2P
//! neighbourhood: a shared cache one WAN hop away. This crate is that
//! tier, split into two halves sharing one protocol core:
//!
//! - **Protocol + model half** (deterministic, sim-grade):
//!   [`protocol`] defines the batched lookup/insert/gossip wire format
//!   with varint+XOR-delta key coding; [`compress`] the LZ77 snapshot
//!   compressor; [`cache`] the [`EdgeCache`] wrapping
//!   [`reuse::SharedCache`] behind batched operations with
//!   bounded-queue backpressure ([`Overloaded`], never blocking). The
//!   simulation drives these types directly — same code, virtual time.
//! - **Service half** (runtime): [`server`] is a hand-rolled threaded
//!   HTTP/1.1 server over `std::net::TcpListener` with a fixed worker
//!   pool, per-connection timeouts and `503` on backpressure;
//!   [`client`] the matching blocking client. The `edge-server` /
//!   `edge-client` binaries put the exact same `EdgeCache` + codec on
//!   real TCP — the production deployment story for the sim's
//!   `EdgeTier`.

pub mod cache;
pub mod client;
pub mod compress;
pub mod protocol;
pub mod server;

pub use cache::{EdgeCache, EdgeCacheConfig, EdgeCounters, Overloaded};
pub use client::{ClientError, EdgeClient};
pub use compress::{compress, decompress, CompressError};
pub use protocol::{BatchRequest, BatchResponse, DecodeError, EdgeHit, Frame, Reply};
pub use server::{EdgeServer, ServerConfig};
